"""The LLM-agnosticism claim (Table 3): one PAS model, any target.

These tests plug the same trained PAS into models *outside* the paper's six
(extra open-model profiles) and into custom capability profiles, and check
the augmentation still helps — the claim is about the mechanism, not about
a fixed model list.
"""

import numpy as np
import pytest

from repro.core.plug import PasEnhancedLLM
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import CapabilityProfile
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response

EXTRA_MODELS = ("mixtral-8x7b-instruct", "gemma-7b-it")


class TestModelAgnosticism:
    @pytest.mark.parametrize("model", EXTRA_MODELS)
    def test_pas_plugs_into_extra_models(self, trained_pas, model):
        enhanced = PasEnhancedLLM(pas=trained_pas, target=SimulatedLLM(model))
        factory = PromptFactory(rng=np.random.default_rng(30))
        gains = []
        for _ in range(40):
            prompt = factory.make_prompt(cue_rate=1.0)
            plain = assess_response(prompt, enhanced.ask_plain(prompt.text)).score
            augmented = assess_response(prompt, enhanced.ask(prompt.text)).score
            gains.append(augmented - plain)
        assert float(np.mean(gains)) > 0.1

    def test_pas_plugs_into_custom_profile(self, trained_pas):
        custom = CapabilityProfile(
            "in-house-model", cue_sensitivity=0.5, instruction_following=0.85,
            error_rate=0.15, verbosity=0.9,
        )
        enhanced = PasEnhancedLLM(pas=trained_pas, target=SimulatedLLM(custom))
        factory = PromptFactory(rng=np.random.default_rng(31))
        prompt = factory.make_prompt()
        assert enhanced.ask(prompt.text)

    def test_same_complement_regardless_of_target(self, trained_pas, factory):
        """The complement is a pure function of the prompt — the defining
        property that makes one trained PAS serve every model."""
        prompt = factory.make_prompt()
        assert trained_pas.augment(prompt.text) == trained_pas.augment(prompt.text)
        # No target-model parameter exists on augment(); the API enforces it.
        # The prompt text is the only *required* input — anything else
        # (e.g. the embedding memo cache) is an optional accelerator that
        # cannot change the output.
        import inspect

        parameters = inspect.signature(trained_pas.augment).parameters
        required = [
            name for name, p in parameters.items()
            if p.default is inspect.Parameter.empty
        ]
        assert required == ["prompt_text"]
        assert not any("model" in name or "target" in name for name in parameters)
