"""Observability across the serving path: traces, metrics, events.

Three properties are pinned here, and CI's ``obs`` job re-runs the module
under several ``PAS_CHAOS_SEED`` offsets:

1. **Transparency** — responses, gateway stats, and cache state are
   bit-identical with observability on or off (spans, counters, and
   events are read-only observers of the request path).
2. **Determinism** — two runs of the same chaos workload at the same
   seed export byte-identical trace and event JSONL files.
3. **Attribution** — every ``failed``/``degraded`` response has a trace
   whose spans record the failing stage, attempt counts, and the
   breaker/fault context.
"""

import json
import os
import warnings

import numpy as np
import pytest

from repro.ann.sharded import ShardedHnswIndex
from repro.obs import EventLog, MetricsRegistry, Observability, Tracer, TraceStore
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy
from repro.serve.gateway import (
    STAGES,
    GatewayConfig,
    PasGateway,
    derive_stage_timings,
)
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.io import dump_jsonl, load_jsonl

#: CI's obs job exports PAS_CHAOS_SEED to shift the chaos seed.
CHAOS_SEED = 11 + int(os.environ.get("PAS_CHAOS_SEED", "0"))

PROMPTS = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
    "how do i write unit tests for async code? walk me through it.",
    "how do i pickle a numpy array safely? be concise.",
]


def chaos_config(seed=CHAOS_SEED):
    """A fresh heavily-faulted config (fresh FaultPlan: observers attach)."""
    return GatewayConfig(
        cache_size=16,
        embed_cache_size=16,
        fault_plan=FaultPlan(
            seed=seed,
            completion_failure_rate=0.35,
            augment_failure_rate=0.2,
            latency_spike_rate=0.2,
            latency_spike_ticks=2,
            outages=(OutageWindow("gpt-4-0613", 9, 14),),
        ),
        retry_policy=RetryPolicy(
            max_retries=2, base_backoff=1.0, max_backoff=4.0, jitter=0.25, seed=seed
        ),
        breaker_threshold=2,
        breaker_recovery_ticks=6,
    )


def chaos_requests():
    """A workload that exercises repeats, two models, and a bad route."""
    requests = [
        ServeRequest(prompt=p, model="gpt-4-0613", request_id=f"r{i}")
        for i, p in enumerate(PROMPTS + PROMPTS[:4])
    ]
    requests.append(
        ServeRequest(prompt=PROMPTS[0], model="qwen2-72b-chat", request_id="alt")
    )
    requests.append(
        ServeRequest(prompt=PROMPTS[1], model="no-such-model", request_id="bad")
    )
    return requests


def run_chaos(trained_pas, obs, seed=CHAOS_SEED):
    gateway = PasGateway(pas=trained_pas, config=chaos_config(seed), obs=obs)
    responses = [gateway.ask(request) for request in chaos_requests()]
    return gateway, responses


class TestTransparency:
    """Observability never perturbs results."""

    def test_responses_and_stats_identical_on_or_off(self, trained_pas):
        _, plain = run_chaos(trained_pas, Observability())
        observed_gw, observed = run_chaos(trained_pas, Observability.enabled())
        assert observed == plain
        replay_gw, _ = run_chaos(trained_pas, Observability())
        assert observed_gw.stats == replay_gw.stats
        assert observed_gw.stats.as_dict() == replay_gw.stats.as_dict()
        assert observed_gw.cache_hit_rate == replay_gw.cache_hit_rate
        assert observed_gw.embed_cache_hit_rate == replay_gw.embed_cache_hit_rate

    def test_batch_parity_holds_with_tracing_on(self, trained_pas):
        requests = chaos_requests()
        scalar_gw = PasGateway(
            pas=trained_pas, config=chaos_config(), obs=Observability.enabled()
        )
        batched_gw = PasGateway(
            pas=trained_pas, config=chaos_config(), obs=Observability.enabled()
        )
        scalar = [scalar_gw.ask(r) for r in requests]
        batched = batched_gw.ask_batch(requests)
        assert batched == scalar
        assert batched_gw.stats == scalar_gw.stats
        # the per-request gateway.ask traces have the same outcome sequence
        scalar_asks = scalar_gw.obs.tracer.store.by_root("gateway.ask")
        batched_asks = batched_gw.obs.tracer.store.by_root("gateway.ask")
        assert [t.status for t in batched_asks] == [t.status for t in scalar_asks]
        # the batch path adds exactly one planning trace
        assert len(batched_gw.obs.tracer.store.by_root("gateway.plan")) == 1


class TestDeterminism:
    def test_trace_and_event_exports_are_byte_identical(self, trained_pas, tmp_path):
        paths = []
        for run in ("a", "b"):
            obs = Observability.enabled(trace_capacity=512)
            run_chaos(trained_pas, obs)
            trace_path = tmp_path / f"traces_{run}.jsonl"
            event_path = tmp_path / f"events_{run}.jsonl"
            assert obs.tracer.store.export_jsonl(trace_path) > 0
            assert obs.events.export_jsonl(event_path) > 0
            paths.append((trace_path, event_path))
        (trace_a, event_a), (trace_b, event_b) = paths
        assert trace_a.read_bytes() == trace_b.read_bytes()
        assert event_a.read_bytes() == event_b.read_bytes()

    def test_different_seeds_change_the_stream(self, trained_pas):
        obs_a = Observability.enabled(trace_capacity=512)
        obs_b = Observability.enabled(trace_capacity=512)
        run_chaos(trained_pas, obs_a, seed=CHAOS_SEED)
        run_chaos(trained_pas, obs_b, seed=CHAOS_SEED + 1)
        assert obs_a.tracer.store.as_dicts() != obs_b.tracer.store.as_dicts()

    def test_timestamps_are_logical_ticks(self, trained_pas):
        obs = Observability.enabled(trace_capacity=512)
        gateway, _ = run_chaos(trained_pas, obs)
        ticks = [t.start_tick for t in obs.tracer.store.by_root("gateway.ask")]
        assert ticks == list(range(1, gateway.clock + 1))
        assert all(0 < e.tick <= gateway.clock for e in obs.events)


class TestFailureAttribution:
    """Every no-answer (and degraded) outcome is explained by its trace."""

    @pytest.fixture()
    def run(self, trained_pas):
        obs = Observability.enabled(trace_capacity=512)
        gateway, responses = run_chaos(trained_pas, obs)
        traces = obs.tracer.store.by_root("gateway.ask")
        assert len(traces) == len(responses)
        return gateway, responses, traces, obs

    def test_chaos_produces_every_outcome(self, run):
        _, responses, _, _ = run
        statuses = {r.status for r in responses}
        assert statuses == {"ok", "degraded", "failed"}

    def test_failed_traces_record_stage_error_attempts(self, run):
        _, responses, traces, _ = run
        for response, trace in zip(responses, traces):
            if not response.failed:
                continue
            root = trace.root
            assert trace.status == "failed"
            assert root.attrs["stage"] in {"route", "breaker", "augment", "complete"}
            assert root.attrs["error"] == response.error
            assert root.attrs["attempts"] == response.attempts
            assert root.attrs["model"] == response.model

    def test_degraded_traces_point_at_augment(self, run):
        _, responses, traces, _ = run
        degraded = [
            (r, t) for r, t in zip(responses, traces) if r.status == "degraded"
        ]
        assert degraded
        for response, trace in degraded:
            assert trace.status == "degraded"
            assert trace.root.attrs["stage"] == "augment"
            assert trace.root.attrs["error"] == response.error
            augment = trace.first("augment")
            assert augment is not None and augment.status == "error"

    def test_breaker_rejections_are_marked(self, run):
        _, responses, traces, _ = run
        breaker_failures = [
            t
            for r, t in zip(responses, traces)
            if r.failed and "CircuitOpenError" in (r.error or "")
        ]
        assert breaker_failures  # the outage + threshold=2 guarantees trips
        for trace in breaker_failures:
            assert trace.root.attrs["stage"] == "breaker"
            assert trace.root.attrs["breaker"] == "open"
            assert trace.root.attrs["attempts"] == 0

    def test_retry_spans_carry_cause_and_backoff(self, run):
        _, responses, traces, _ = run
        saw_retry = False
        for response, trace in zip(responses, traces):
            complete = trace.first("complete")
            if complete is None:  # breaker/route/strict-augment failures
                continue
            retries = [s for s in trace.spans if s.name.startswith("retry[")]
            if response.ok:
                assert len(retries) == response.attempts - 1
            for span in retries:
                saw_retry = True
                assert span.status == "error"
                assert span.attrs["cause"] in {"outage", "injected", "random"}
                assert span.attrs["backoff_ticks"] >= 0.0
                assert span.parent_id == complete.span_id
        assert saw_retry

    def test_ok_traces_have_the_canonical_span_shape(self, run):
        _, responses, traces, _ = run
        ok = [(r, t) for r, t in zip(responses, traces) if r.status == "ok"]
        assert ok
        for response, trace in ok:
            root = trace.root
            assert root.attrs["attempts"] == response.attempts
            assert root.attrs["cached"] == response.complement_cached
            assert root.attrs["breaker"] == "closed"
            assert root.attrs["request_id"] == response.request_id
            if response.augmented:
                augment = trace.first("augment")
                assert augment is not None
                assert augment.attrs["cached"] == response.complement_cached
            assert trace.first("cache").attrs["tier"] == "complement"
            assert trace.first("complete").attrs["model"] == response.model

    def test_store_query_helpers_cover_the_run(self, run):
        _, responses, _, obs = run
        store = obs.tracer.store
        by_status = {
            status: len(store.by_status(status))
            for status in ("ok", "degraded", "failed")
        }
        want = {
            status: sum(r.status == status for r in responses)
            for status in ("ok", "degraded", "failed")
        }
        assert by_status == want
        slowest = store.slowest(3)
        assert len(slowest) == 3
        assert slowest[0].duration_ticks >= slowest[-1].duration_ticks
        assert "#" in slowest[0].waterfall()


class TestEventsAndMetrics:
    @pytest.fixture()
    def run(self, trained_pas):
        obs = Observability.enabled(trace_capacity=512)
        gateway, responses = run_chaos(trained_pas, obs)
        return gateway, responses, obs

    def test_fault_injections_are_logged(self, run, trained_pas):
        _, _, obs = run
        faults = obs.events.by_kind("fault.injected")
        assert faults
        stages = {e.attrs["stage"] for e in faults}
        assert stages <= {"completion", "augment", "latency", "outage"}
        assert "completion" in stages and "augment" in stages
        counter = obs.metrics.counter("pas_faults_total")
        assert counter.total() == len(faults)

    def test_breaker_transitions_are_logged(self, run):
        gateway, _, obs = run
        transitions = obs.events.by_kind("breaker.transition")
        assert transitions
        states = [e.attrs["state"] for e in transitions]
        assert "open" in states
        counter = obs.metrics.counter("pas_breaker_transitions_total")
        assert counter.total() == len(transitions)
        assert counter.value(model="gpt-4-0613", state="open") == gateway.stats.breaker_trips[
            "gpt-4-0613"
        ]

    def test_serve_outcome_events_match_responses(self, run):
        _, responses, obs = run
        failed = obs.events.by_kind("serve.failed")
        degraded = obs.events.by_kind("serve.degraded")
        assert len(failed) == sum(r.failed for r in responses)
        # serve.degraded records the *incident* (augmentation fell back), so
        # a request that degrades and then fails at completion emits one too:
        # count augment spans that errored, not final statuses.
        traces = obs.tracer.store.by_root("gateway.ask")
        incidents = sum(
            1
            for trace in traces
            if (span := trace.first("augment")) is not None and span.status == "error"
        )
        assert len(degraded) == incidents
        assert incidents >= sum(r.status == "degraded" for r in responses)
        for event in failed:
            assert event.attrs["stage"] in {"route", "breaker", "augment", "complete"}
            assert event.attrs["error"]

    def test_outcome_counters_match_stats(self, run):
        gateway, responses, obs = run
        requests_total = obs.metrics.counter("pas_requests_total")
        assert requests_total.total() == len(responses)
        assert (
            requests_total.value(model="gpt-4-0613", status="failed")
            == gateway.stats.failures_per_model.get("gpt-4-0613", 0)
        )
        attempts = obs.metrics.histogram("pas_attempts")
        assert attempts.count(model="gpt-4-0613") == sum(
            r.ok for r in responses if r.model == "gpt-4-0613"
        )
        completions = obs.metrics.counter("pas_completions_total")
        assert completions.value(model="gpt-4-0613", outcome="ok") > 0
        retries = obs.metrics.counter("pas_completion_retries_total")
        assert retries.total() == gateway.stats.retries

    def test_cache_ops_and_evictions(self, trained_pas):
        obs = Observability.enabled()
        config = GatewayConfig(cache_size=2, embed_cache_size=2)
        gateway = PasGateway(pas=trained_pas, config=config, obs=obs)
        for prompt in PROMPTS[:5] + PROMPTS[:2]:
            gateway.ask_text(prompt, "gpt-4-0613")
        ops = obs.metrics.counter("pas_cache_ops_total")
        assert ops.value(tier="complement", op="miss") == 7  # 5 unique + 2 evicted
        assert ops.value(tier="complement", op="evict") > 0
        evictions = obs.events.by_kind("cache.evict")
        assert len(evictions) == ops.value(tier="complement", op="evict") + ops.value(
            tier="embed", op="evict"
        )
        assert {e.attrs["tier"] for e in evictions} == {"complement", "embed"}

    def test_prometheus_exposition_renders_the_run(self, run):
        _, _, obs = run
        text = obs.metrics.render_prometheus()
        for family in (
            "pas_requests_total",
            "pas_tokens_total",
            "pas_attempts_bucket",
            "pas_completions_total",
            "pas_faults_total",
            "pas_breaker_transitions_total",
            "pas_cache_ops_total",
        ):
            assert family in text
        assert 'le="+Inf"' in text

    def test_shared_registry_includes_gateway_series(self, trained_pas):
        # Passing a live registry makes it the gateway's source of truth.
        obs = Observability(metrics=MetricsRegistry())
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(), obs=obs)
        gateway.ask_text(PROMPTS[0], "gpt-4-0613")
        assert obs.metrics.counter("pas_requests_total").total() == 1
        assert gateway.stats.requests == 1


class TestSchedulerObservability:
    def test_batch_drain_events_and_histograms(self, trained_pas):
        obs = Observability.enabled()
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(), obs=obs)
        batcher = MicroBatcher(gateway.ask_batch, max_batch=3, max_wait=5, obs=obs)
        responses = batcher.run_arrivals(
            (i, ServeRequest(prompt=p, model="gpt-4-0613"))
            for i, p in enumerate(PROMPTS[:7], start=1)
        )
        assert len(responses) == 7
        drains = obs.events.by_kind("batch.drain")
        assert len(drains) == len(batcher.records) == 3
        for event, record in zip(drains, batcher.records):
            assert event.attrs["tick"] == record.tick
            assert event.attrs["size"] == record.size
            assert event.attrs["trigger"] == record.trigger
            assert event.attrs["n_ok"] == record.n_ok
        assert batcher.stats.triggers == {"size": 2, "flush": 1}
        size_hist = obs.metrics.histogram("pas_batch_size")
        assert size_hist.count() == 3
        assert size_hist.sum() == 7
        wait_hist = obs.metrics.histogram("pas_batch_wait_ticks")
        assert wait_hist.count() == 7

    def test_scheduler_never_rebinds_a_shared_event_clock(self, trained_pas):
        obs = Observability.enabled()
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(), obs=obs)
        batcher = MicroBatcher(gateway.ask_batch, max_batch=2, obs=obs)
        batcher.run_arrivals(
            (i, ServeRequest(prompt=p, model="gpt-4-0613"))
            for i, p in enumerate(PROMPTS[:2], start=1)
        )
        (drain,) = obs.events.by_kind("batch.drain")
        # event ticks come from the *gateway* clock; the batcher's own tick
        # rides in the attributes.
        assert drain.tick == gateway.clock
        assert drain.attrs["tick"] == batcher.clock


class TestAnnObservability:
    def test_search_spans_and_counter(self):
        obs = Observability.enabled()
        index = ShardedHnswIndex(dim=8, n_shards=2, seed=0, obs=obs)
        rng = np.random.default_rng(0)
        index.add_batch(rng.normal(size=(24, 8)))
        index.search(rng.normal(size=8), k=3)
        index.search_batch(rng.normal(size=(4, 8)), k=3)
        searches = obs.metrics.counter("pas_ann_searches_total")
        assert searches.value(mode="scalar") == 1
        assert searches.value(mode="batch") == 1
        roots = obs.tracer.store.by_root("ann.search")
        assert len(roots) == 2
        scalar, batch = roots
        assert scalar.root.attrs["mode"] == "scalar"
        assert batch.root.attrs == {
            "mode": "batch", "k": 3, "n_queries": 4, "n_shards": 2,
        }


class TestStageTimings:
    def test_wall_tracer_drives_derive(self, trained_pas):
        obs = Observability.enabled(wall=True)
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(), obs=obs)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation anywhere
            gateway.ask_text(PROMPTS[0], "gpt-4-0613")
            timings = derive_stage_timings(obs.tracer)
        assert set(timings) == set(STAGES)
        assert timings["completion"] > 0.0
        assert timings["augment"] > 0.0

    def test_derive_without_wall_timer_is_all_zero(self):
        tracer = Tracer(store=TraceStore())
        assert derive_stage_timings(tracer) == {stage: 0.0 for stage in STAGES}


class TestJsonRoundTrips:
    def test_serve_response_round_trip(self, trained_pas, tmp_path):
        _, responses = run_chaos(trained_pas, Observability())
        path = tmp_path / "responses.jsonl"
        dump_jsonl([r.as_dict() for r in responses], path)
        loaded = [ServeResponse.from_dict(d) for d in load_jsonl(path)]
        assert loaded == responses

    def test_gateway_stats_round_trip(self, trained_pas, tmp_path):
        gateway, _ = run_chaos(trained_pas, Observability.enabled())
        path = tmp_path / "stats.jsonl"
        dump_jsonl([gateway.stats.as_dict()], path)
        (loaded,) = load_jsonl(path)
        assert loaded == gateway.stats.as_dict()

    def test_registry_snapshot_round_trip(self, trained_pas, tmp_path):
        obs = Observability.enabled()
        run_chaos(trained_pas, obs)
        path = tmp_path / "metrics.jsonl"
        dump_jsonl([obs.metrics.as_dict()], path)
        (loaded,) = load_jsonl(path)
        assert loaded == obs.metrics.as_dict()

    def test_stats_as_dict_is_json_native(self, trained_pas):
        gateway, _ = run_chaos(trained_pas, Observability.enabled())
        payload = gateway.stats.as_dict()
        assert payload == json.loads(json.dumps(payload))
