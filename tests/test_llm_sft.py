"""Tests for the SFT directive predictor."""

import numpy as np
import pytest

from repro.core.golden import render_complement
from repro.errors import EmptyDatasetError, NotFittedError
from repro.llm.profiles import CapabilityProfile
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.world.prompts import PromptFactory

_PERFECT_BASE = CapabilityProfile(
    "perfect-base", cue_sensitivity=1.0, instruction_following=1.0,
    error_rate=0.0, verbosity=1.0,
)


def _clean_pairs(n=120, seed=0):
    """Perfectly labelled training pairs (complement == true needs)."""
    factory = PromptFactory(rng=np.random.default_rng(seed))
    pairs = []
    prompts = []
    for i in range(n):
        p = factory.make_prompt(cue_rate=1.0, misleading_cue_rate=0.0)
        pairs.append((p.text, render_complement(set(p.needs), salt=str(i))))
        prompts.append(p)
    return pairs, prompts


class TestConfig:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SftConfig(k_neighbors=0).validate()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SftConfig(vote_threshold=0.0).validate()


class TestFit:
    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            SftDirectivePredictor().fit([])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SftDirectivePredictor().predict_aspects("anything")

    def test_n_examples(self):
        pairs, _ = _clean_pairs(20)
        predictor = SftDirectivePredictor().fit(pairs)
        assert predictor.n_examples == 20
        assert predictor.is_fitted


class TestPrediction:
    def test_learns_from_clean_data(self):
        pairs, _ = _clean_pairs(150, seed=1)
        predictor = SftDirectivePredictor(base_model=_PERFECT_BASE).fit(pairs)
        factory = PromptFactory(rng=np.random.default_rng(2))
        test = [(p.text, p.needs) for p in (factory.make_prompt(cue_rate=1.0) for _ in range(60))]
        acc = predictor.label_accuracy([(t, frozenset(n)) for t, n in test])
        assert acc > 0.45  # far above the ~0.1 chance level

    def test_memorises_training_prompt(self):
        pairs, prompts = _clean_pairs(100, seed=3)
        predictor = SftDirectivePredictor(base_model=_PERFECT_BASE).fit(pairs)
        hits = 0
        for (text, _), prompt in zip(pairs[:20], prompts[:20]):
            predicted = predictor.predict_aspects(text)
            hits += bool(predicted & prompt.needs)
        assert hits >= 15

    def test_deterministic(self):
        pairs, _ = _clean_pairs(50, seed=4)
        a = SftDirectivePredictor(seed=1).fit(pairs)
        b = SftDirectivePredictor(seed=1).fit(pairs)
        text = "how do i implement rate limiting in redis?"
        assert a.predict_aspects(text) == b.predict_aspects(text)

    def test_weak_base_noisier_than_strong(self):
        pairs, _ = _clean_pairs(150, seed=5)
        strong = SftDirectivePredictor(base_model="qwen2-7b-chat", seed=0).fit(pairs)
        weak = SftDirectivePredictor(base_model="llama-2-7b-instruct", seed=0).fit(pairs)
        factory = PromptFactory(rng=np.random.default_rng(6))
        test = [(p.text, frozenset(p.needs)) for p in (factory.make_prompt(cue_rate=1.0) for _ in range(80))]
        assert strong.label_accuracy(test) > weak.label_accuracy(test)

    def test_label_accuracy_empty(self):
        pairs, _ = _clean_pairs(10)
        predictor = SftDirectivePredictor().fit(pairs)
        assert predictor.label_accuracy([]) == 0.0

    def test_out_of_domain_prompt_yields_few_aspects(self):
        pairs, _ = _clean_pairs(50, seed=7)
        predictor = SftDirectivePredictor(base_model=_PERFECT_BASE).fit(pairs)
        predicted = predictor.predict_aspects("zzz qqq completely alien gibberish xxyy")
        assert len(predicted) <= 2
