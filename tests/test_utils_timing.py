"""Tests for the timing harness and the bench regression gate."""

import json
import sys
from pathlib import Path

import pytest

from repro.utils.timing import TimingResult, speedup, time_call, time_pair

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
from check_bench_regression import collect_speedups, main  # noqa: E402


class TestTimeCall:
    def test_counts_calls(self):
        calls = []
        time_call(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_result_fields(self):
        result = time_call(lambda: None, label="noop", n_items=10, repeats=2)
        assert result.label == "noop"
        assert result.repeats == 2
        assert result.best_s <= result.mean_s
        assert result.items_per_s > 0.0
        assert set(result.to_dict()) == {
            "label", "n_items", "repeats", "best_s", "mean_s", "items_per_s",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_call(lambda: None, warmup=-1)


class TestTimePair:
    def test_interleaves_calls(self):
        order = []
        time_pair(
            lambda: order.append("a"),
            lambda: order.append("b"),
            repeats=3,
            warmup=1,
        )
        assert order == ["a", "b"] * 4  # warmup round + 3 measured rounds

    def test_labels_and_shapes(self):
        base, cont = time_pair(
            lambda: None, lambda: None,
            labels=("x", "y"), n_items=5, repeats=2,
        )
        assert (base.label, cont.label) == ("x", "y")
        assert base.n_items == cont.n_items == 5
        assert speedup(base, cont) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_pair(lambda: None, lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_pair(lambda: None, lambda: None, warmup=-1)


class TestSpeedup:
    def test_per_item_normalised(self):
        slow = TimingResult(label="s", n_items=10, repeats=1, best_s=2.0, mean_s=2.0)
        fast = TimingResult(label="f", n_items=20, repeats=1, best_s=1.0, mean_s=1.0)
        assert speedup(slow, fast) == pytest.approx(4.0)


class TestBenchRegressionGate:
    PAYLOAD = {
        "embed": {"speedup": 2.5},
        "augment": {"speedup": 1.2, "unique_only_speedup": 1.9},
        "sharded": {
            "build": {"speedup": 2.0},
            "search": {"throughput_ratio_vs_single": 0.5},  # not gated
        },
        "scale": {"n_items": 100},
    }

    def test_collects_only_speedup_named_keys(self):
        found = dict(collect_speedups(self.PAYLOAD))
        assert found == {
            "embed.speedup": 2.5,
            "augment.speedup": 1.2,
            "augment.unique_only_speedup": 1.9,
            "sharded.build.speedup": 2.0,
        }

    def test_passes_when_all_above_threshold(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main([str(path)]) == 0
        assert "all 4 speedups" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        bad = {"gateway": {"speedup": 0.9}, "embed": {"speedup": 3.0}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bad))
        assert main([str(path)]) == 1
        captured = capsys.readouterr()
        assert "gateway.speedup" in captured.err

    def test_rejects_missing_file_and_empty_payload(self, tmp_path):
        assert main([str(tmp_path / "absent.json")]) == 2
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert main([str(empty)]) == 2
        assert main([]) == 2

    def test_current_bench_json_passes(self):
        bench = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
        if not bench.is_file():
            pytest.skip("BENCH_serving.json not generated yet")
        assert main([str(bench)]) == 0
