"""Tests for the timing harness and the bench regression gate."""

import json
import sys
from pathlib import Path

import pytest

from repro.utils.timing import StageTimer, TimingResult, speedup, time_call, time_pair

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
from check_bench_regression import collect_overheads, collect_speedups, main  # noqa: E402


class ManualClock:
    """Deterministic seconds counter; advance() stands in for elapsed time."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestStageTimer:
    def test_three_level_nesting_attribution(self):
        """Regression: the flat lap clock either lost or double-counted a
        nested stage's time; the stack-based timer charges each level its
        own exclusive share while inclusive keeps the caller's view."""
        clock = ManualClock()
        timer = StageTimer(clock=clock)
        with timer.section("ask"):
            clock.advance(1.0)  # gateway bookkeeping
            with timer.section("augment"):
                clock.advance(2.0)  # PAS forward pass
                with timer.section("embed"):
                    clock.advance(4.0)  # the innermost cost
                clock.advance(0.5)  # augment epilogue
            clock.advance(0.25)  # response assembly
        assert timer.inclusive_s == {
            "ask": pytest.approx(7.75),
            "augment": pytest.approx(6.5),
            "embed": pytest.approx(4.0),
        }
        assert timer.exclusive_s == {
            "ask": pytest.approx(1.25),
            "augment": pytest.approx(2.5),
            "embed": pytest.approx(4.0),
        }
        # exclusive times always sum to the root's inclusive time
        assert sum(timer.exclusive_s.values()) == pytest.approx(
            timer.inclusive_s["ask"]
        )

    def test_reentrant_sections_accumulate(self):
        clock = ManualClock()
        timer = StageTimer(clock=clock)
        for _ in range(3):
            with timer.section("stage"):
                clock.advance(1.0)
        assert timer.calls == {"stage": 3}
        assert timer.inclusive_s["stage"] == pytest.approx(3.0)
        assert timer.exclusive_s["stage"] == pytest.approx(3.0)

    def test_siblings_both_charged_to_parent(self):
        clock = ManualClock()
        timer = StageTimer(clock=clock)
        with timer.section("parent"):
            with timer.section("a"):
                clock.advance(1.0)
            with timer.section("b"):
                clock.advance(2.0)
        assert timer.exclusive_s["parent"] == pytest.approx(0.0)
        assert timer.inclusive_s["parent"] == pytest.approx(3.0)

    def test_exception_still_records(self):
        clock = ManualClock()
        timer = StageTimer(clock=clock)
        with pytest.raises(ValueError):
            with timer.section("stage"):
                clock.advance(1.0)
                raise ValueError("boom")
        assert timer.depth == 0
        assert timer.inclusive_s["stage"] == pytest.approx(1.0)

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            StageTimer().pop()

    def test_as_dict_sorted(self):
        clock = ManualClock()
        timer = StageTimer(clock=clock)
        with timer.section("zebra"):
            with timer.section("apple"):
                clock.advance(1.0)
        d = timer.as_dict()
        assert list(d) == ["apple", "zebra"]
        assert d["apple"] == {"calls": 1, "inclusive_s": 1.0, "exclusive_s": 1.0}


class TestTimeCall:
    def test_counts_calls(self):
        calls = []
        time_call(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_result_fields(self):
        result = time_call(lambda: None, label="noop", n_items=10, repeats=2)
        assert result.label == "noop"
        assert result.repeats == 2
        assert result.best_s <= result.mean_s
        assert result.items_per_s > 0.0
        assert set(result.to_dict()) == {
            "label", "n_items", "repeats", "best_s", "mean_s", "items_per_s",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_call(lambda: None, warmup=-1)


class TestTimePair:
    def test_interleaves_calls(self):
        order = []
        time_pair(
            lambda: order.append("a"),
            lambda: order.append("b"),
            repeats=3,
            warmup=1,
        )
        assert order == ["a", "b"] * 4  # warmup round + 3 measured rounds

    def test_labels_and_shapes(self):
        base, cont = time_pair(
            lambda: None, lambda: None,
            labels=("x", "y"), n_items=5, repeats=2,
        )
        assert (base.label, cont.label) == ("x", "y")
        assert base.n_items == cont.n_items == 5
        assert speedup(base, cont) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_pair(lambda: None, lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_pair(lambda: None, lambda: None, warmup=-1)


class TestSpeedup:
    def test_per_item_normalised(self):
        slow = TimingResult(label="s", n_items=10, repeats=1, best_s=2.0, mean_s=2.0)
        fast = TimingResult(label="f", n_items=20, repeats=1, best_s=1.0, mean_s=1.0)
        assert speedup(slow, fast) == pytest.approx(4.0)


class TestBenchRegressionGate:
    PAYLOAD = {
        "embed": {"speedup": 2.5},
        "augment": {"speedup": 1.2, "unique_only_speedup": 1.9},
        "sharded": {
            "build": {"speedup": 2.0},
            "search": {"throughput_ratio_vs_single": 0.5},  # not gated
        },
        "scale": {"n_items": 100},
    }

    def test_collects_only_speedup_named_keys(self):
        found = dict(collect_speedups(self.PAYLOAD))
        assert found == {
            "embed.speedup": 2.5,
            "augment.speedup": 1.2,
            "augment.unique_only_speedup": 1.9,
            "sharded.build.speedup": 2.0,
        }

    def test_passes_when_all_above_threshold(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main([str(path)]) == 0
        assert "all 4 speedups" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        bad = {"gateway": {"speedup": 0.9}, "embed": {"speedup": 3.0}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bad))
        assert main([str(path)]) == 1
        captured = capsys.readouterr()
        assert "gateway.speedup" in captured.err

    def test_collects_overhead_named_keys(self):
        payload = {
            "obs": {"obs_off_overhead": 1.01, "tracing_on_slowdown": 1.4},
            "embed": {"speedup": 2.5},
        }
        assert dict(collect_overheads(payload)) == {"obs.obs_off_overhead": 1.01}

    def test_passes_when_overhead_at_ceiling(self, tmp_path, capsys):
        payload = {"embed": {"speedup": 2.0}, "obs": {"obs_off_overhead": 1.05}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert main([str(path)]) == 0
        assert "overheads <= 1.05" in capsys.readouterr().out

    def test_fails_on_overhead_above_ceiling(self, tmp_path, capsys):
        payload = {"embed": {"speedup": 2.0}, "obs": {"obs_off_overhead": 1.2}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert main([str(path)]) == 1
        assert "obs.obs_off_overhead" in capsys.readouterr().err

    def test_rejects_missing_file_and_empty_payload(self, tmp_path):
        assert main([str(tmp_path / "absent.json")]) == 2
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert main([str(empty)]) == 2
        assert main([]) == 2

    def test_current_bench_json_passes(self):
        bench = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
        if not bench.is_file():
            pytest.skip("BENCH_serving.json not generated yet")
        assert main([str(bench)]) == 0
