"""Tests for the aspect taxonomy and its phrase banks."""

import pytest

from repro.world.aspects import (
    ASPECTS,
    aspect_names,
    find_cues,
    find_markers,
    parse_directives,
    render_directive,
)


class TestRegistry:
    def test_fourteen_aspects(self):
        assert len(aspect_names()) == 14

    def test_names_unique(self):
        names = aspect_names()
        assert len(names) == len(set(names))

    def test_every_aspect_has_all_banks(self):
        for aspect in ASPECTS.values():
            assert aspect.cue_phrases
            assert aspect.directive_templates
            assert aspect.marker_phrases

    def test_weights_positive(self):
        assert all(a.weight > 0 for a in ASPECTS.values())


class TestDirectiveRoundtrip:
    @pytest.mark.parametrize("name", aspect_names())
    def test_render_parses_back_to_exactly_one_aspect(self, name):
        for variant in range(len(ASPECTS[name].directive_templates)):
            text = render_directive(name, variant)
            assert parse_directives(text) == {name}

    def test_variant_wraps_around(self):
        name = aspect_names()[0]
        n = len(ASPECTS[name].directive_templates)
        assert render_directive(name, 0) == render_directive(name, n)

    def test_combined_directives_parse_to_union(self):
        text = render_directive("depth") + " " + render_directive("examples")
        assert parse_directives(text) == {"depth", "examples"}

    def test_parse_none(self):
        assert parse_directives(None) == set()
        assert parse_directives("") == set()
        assert parse_directives("plain text with no directives") == set()

    def test_parse_insensitive_to_punctuation(self):
        text = render_directive("logic_trap", 2)  # contains "Re-read"
        assert parse_directives(text.replace("-", " ")) == {"logic_trap"}


class TestFindCues:
    @pytest.mark.parametrize("name", aspect_names())
    def test_every_cue_phrase_detected(self, name):
        for cue in ASPECTS[name].cue_phrases:
            hits = find_cues(f"something {cue} something")
            assert name in hits

    def test_no_cues_in_neutral_text(self):
        assert find_cues("the weather is nice today") == {}

    def test_returns_matched_phrase(self):
        hits = find_cues("please explain it in detail")
        assert hits["depth"] == "in detail"

    def test_word_boundary_respected(self):
        # "in detailing" should not match the cue "in detail".
        assert "depth" not in find_cues("we are in detailing mode")


class TestFindMarkers:
    @pytest.mark.parametrize("name", aspect_names())
    def test_every_marker_detected(self, name):
        for marker in ASPECTS[name].marker_phrases:
            assert name in find_markers(f"response text {marker} more text")

    def test_neutral_text_has_no_markers(self):
        assert find_markers("plain unremarkable sentence") == set()


class TestBankSeparation:
    """Directive fragments must be unique across aspects (parse integrity)."""

    def test_directive_fragments_unique(self):
        from repro.world.aspects import _distinctive_fragment

        seen = {}
        for aspect in ASPECTS.values():
            for template in aspect.directive_templates:
                frag = _distinctive_fragment(template)
                assert frag not in seen or seen[frag] == aspect.name, (
                    f"fragment {frag!r} collides between {seen.get(frag)} and {aspect.name}"
                )
                seen[frag] = aspect.name
