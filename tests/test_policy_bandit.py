"""Deterministic contextual bandit: selection, learning, serialization.

The bandit is the policy layer's decision core, and its contract is the
serving stack's: every ``select`` is a pure function of ``(seed, context,
tick)``, reward accounting is exact (integer pulls, Fraction sums), and a
JSON round trip of its state resumes it bit-identically.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.errors import ConfigError
from repro.policy import BANDIT_ALGORITHMS, ContextualBandit

ARMS = ("static", "salted", "subset", "none")
CTX = ("code_generation", "acme")


def _reward(arm: str, tick: int) -> float:
    """A planted deterministic reward stream: ``salted`` is the best arm."""
    base = {"static": 3.0, "salted": 3.8, "subset": 2.0, "none": 1.0}[arm]
    return base + 0.3 * ((tick * 2654435761) % 7 - 3) / 3.0


def _drive(bandit: ContextualBandit, n: int, start: int = 0) -> list[str]:
    picks = []
    for tick in range(start, start + n):
        arm = bandit.select(CTX, tick)
        bandit.observe(CTX, arm, _reward(arm, tick))
        picks.append(arm)
    return picks


# --------------------------------------------------------------------- #
# selection semantics
# --------------------------------------------------------------------- #


def test_initialisation_round_pulls_every_arm_lowest_index_first():
    bandit = ContextualBandit(ARMS, epsilon=0.0)
    picks = []
    for tick in range(len(ARMS)):
        arm = bandit.select(CTX, tick)
        bandit.observe(CTX, arm, 1.0)
        picks.append(arm)
    assert picks == list(ARMS)


def test_select_is_read_only():
    bandit = ContextualBandit(ARMS, epsilon=0.3)
    for tick in range(50):
        bandit.select(CTX, tick)
    assert bandit.total_pulls == 0
    assert bandit.pulls(CTX) == {arm: 0 for arm in ARMS}


def test_select_pure_in_seed_context_tick():
    a = ContextualBandit(ARMS, epsilon=0.3, seed=5)
    b = ContextualBandit(ARMS, epsilon=0.3, seed=5)
    _drive(a, 200)
    _drive(b, 200)
    assert [a.select(CTX, t) for t in range(500)] == [
        b.select(CTX, t) for t in range(500)
    ]
    # A different seed explores differently somewhere in 500 ticks.
    c = ContextualBandit(ARMS, epsilon=0.3, seed=6)
    _drive(c, 200)
    assert [a.select(CTX, t) for t in range(500)] != [
        c.select(CTX, t) for t in range(500)
    ]


def test_epsilon_greedy_converges_to_planted_best_arm():
    bandit = ContextualBandit(ARMS, epsilon=0.2, seed=0)
    _drive(bandit, 400)
    assert bandit.best_arm(CTX) == "salted"
    assert bandit.pulls(CTX)["salted"] > max(
        n for arm, n in bandit.pulls(CTX).items() if arm != "salted"
    )


def test_ucb1_converges_and_ignores_epsilon():
    bandit = ContextualBandit(ARMS, algorithm="ucb1", epsilon=1.0, seed=0)
    _drive(bandit, 400)
    assert bandit.best_arm(CTX) == "salted"


def test_epsilon_zero_never_explores():
    bandit = ContextualBandit(ARMS, epsilon=0.0, seed=0)
    picks = _drive(bandit, 300)
    # After the initialisation round, pure exploitation on exact means.
    replay = ContextualBandit.from_dict(bandit.as_dict())
    assert set(picks[len(ARMS) :]) == {"salted"}
    assert replay.best_arm(CTX) == "salted"


def test_epsilon_one_always_explores():
    bandit = ContextualBandit(ARMS, epsilon=1.0, seed=0)
    picks = _drive(bandit, 600)
    counts = {arm: picks.count(arm) for arm in ARMS}
    # Uniform hash-modulo exploration touches every arm substantially.
    assert min(counts.values()) > 600 / len(ARMS) / 2


def test_explore_false_forces_exploitation():
    bandit = ContextualBandit(ARMS, epsilon=1.0, seed=0)
    _drive(bandit, 100)
    assert all(
        bandit.select(CTX, tick, explore=False) == bandit.best_arm(CTX)
        for tick in range(100, 200)
    )


def test_exploit_argmax_breaks_ties_on_lowest_arm_index():
    bandit = ContextualBandit(ARMS, epsilon=0.0)
    for arm in ARMS:
        bandit.observe(CTX, arm, 2.5)  # all means exactly equal
    assert bandit.select(CTX, 99) == ARMS[0]
    assert bandit.best_arm(CTX) == ARMS[0]


def test_exact_means_are_order_independent():
    a = ContextualBandit(ARMS, epsilon=0.0)
    b = ContextualBandit(ARMS, epsilon=0.0)
    rewards = [0.1, 0.7, 0.3, 0.30000000000000004, 2.2]
    for r in rewards:
        a.observe(CTX, "static", r)
    for r in reversed(rewards):
        b.observe(CTX, "static", r)
    assert a.mean_reward(CTX, "static") == b.mean_reward(CTX, "static")
    assert a.as_dict() == b.as_dict()


def test_contexts_learn_independently():
    bandit = ContextualBandit(ARMS, epsilon=0.0)
    other = ("casual_chat", "acme")
    for arm in ARMS:
        bandit.observe(CTX, arm, 5.0 if arm == "none" else 1.0)
        bandit.observe(other, arm, 5.0 if arm == "subset" else 1.0)
    assert bandit.best_arm(CTX) == "none"
    assert bandit.best_arm(other) == "subset"
    assert bandit.contexts == sorted([CTX, other])


def test_best_arm_on_unseen_or_partial_context_is_deterministic():
    bandit = ContextualBandit(ARMS)
    assert bandit.best_arm(("never", "seen")) == ARMS[0]
    bandit.observe(CTX, "static", 5.0)
    # Not every arm has data: fall back to initialisation order.
    assert bandit.best_arm(CTX) == "salted"


# --------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------- #


def test_json_round_trip_resumes_bit_identically():
    bandit = ContextualBandit(ARMS, epsilon=0.25, seed=9)
    _drive(bandit, 150)
    blob = json.dumps(bandit.as_dict(), sort_keys=True)
    resumed = ContextualBandit.from_dict(json.loads(blob))
    assert resumed.as_dict() == bandit.as_dict()
    # Both continue identically: same decisions, same state, forever.
    assert _drive(bandit, 150, start=150) == _drive(resumed, 150, start=150)
    assert resumed.as_dict() == bandit.as_dict()


def test_round_trip_preserves_exact_fractions():
    bandit = ContextualBandit(ARMS, epsilon=0.1)
    bandit.observe(CTX, "static", 0.1)  # Fraction(0.1) is not 1/10
    data = bandit.as_dict()
    num, den = data["contexts"][f"{CTX[0]}␞{CTX[1]}"]["rewards"][0]
    assert Fraction(num, den) == Fraction(0.1)
    assert ContextualBandit.from_dict(data).as_dict() == data


def test_from_dict_rejects_mismatched_arm_counts():
    data = ContextualBandit(ARMS).as_dict()
    data["contexts"]["code_generation␞acme"] = {"pulls": [1, 2], "rewards": [[1, 1], [1, 1]]}
    with pytest.raises(ConfigError, match="does not match"):
        ContextualBandit.from_dict(data)


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def test_constructor_validation():
    with pytest.raises(ConfigError, match="at least one arm"):
        ContextualBandit(())
    with pytest.raises(ConfigError, match="duplicate arms"):
        ContextualBandit(("static", "static"))
    with pytest.raises(ConfigError, match="unknown bandit algorithm"):
        ContextualBandit(ARMS, algorithm="thompson")
    with pytest.raises(ConfigError, match="epsilon"):
        ContextualBandit(ARMS, epsilon=1.5)
    with pytest.raises(ConfigError, match="ucb_c"):
        ContextualBandit(ARMS, ucb_c=-1.0)
    with pytest.raises(ConfigError, match="unknown arm"):
        ContextualBandit(ARMS).observe(CTX, "rewrite", 1.0)
    assert set(BANDIT_ALGORITHMS) == {"epsilon_greedy", "ucb1"}
