"""Tests for the exact brute-force index."""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.errors import IndexError_


class TestBruteForce:
    def test_empty(self):
        assert BruteForceIndex(dim=3).search(np.zeros(3), 5) == []

    def test_nearest_first(self):
        index = BruteForceIndex(dim=2, metric="l2")
        index.add(np.array([0.0, 0.0]), key=0)
        index.add(np.array([1.0, 1.0]), key=1)
        hits = index.search(np.array([0.1, 0.1]), 2)
        assert [k for k, _ in hits] == [0, 1]

    def test_l2_distance_value(self):
        index = BruteForceIndex(dim=2, metric="l2")
        index.add(np.array([3.0, 4.0]), key=0)
        _, dist = index.search(np.zeros(2), 1)[0]
        assert dist == pytest.approx(25.0)

    def test_cosine_distance_value(self):
        index = BruteForceIndex(dim=2, metric="cosine")
        index.add(np.array([0.0, 1.0]), key=0)
        _, dist = index.search(np.array([1.0, 0.0]), 1)[0]
        assert dist == pytest.approx(1.0)

    def test_invalid_metric(self):
        with pytest.raises(IndexError_):
            BruteForceIndex(dim=2, metric="manhattan")

    def test_invalid_dim(self):
        with pytest.raises(IndexError_):
            BruteForceIndex(dim=-1)

    def test_dim_mismatch(self):
        index = BruteForceIndex(dim=2)
        with pytest.raises(IndexError_):
            index.add(np.zeros(3), key=0)
        index.add(np.zeros(2), key=0)
        with pytest.raises(IndexError_):
            index.search(np.zeros(3), 1)

    def test_len(self):
        index = BruteForceIndex(dim=2)
        index.add(np.zeros(2), key=0)
        assert len(index) == 1

    def test_stable_ordering_for_ties(self):
        index = BruteForceIndex(dim=2, metric="l2")
        index.add(np.array([1.0, 0.0]), key=5)
        index.add(np.array([1.0, 0.0]), key=9)
        hits = index.search(np.array([1.0, 0.0]), 2)
        assert [k for k, _ in hits] == [5, 9]
