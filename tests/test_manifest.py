"""Tests for run manifests."""

import pytest

from repro.experiments.context import ExperimentContext, ScaleConfig
from repro.manifest import RunManifest, build_manifest, fingerprint

_TINY = ScaleConfig(
    n_corpus_prompts=120, arena_suite_size=10, alpaca_suite_size=10,
    human_eval_per_scenario=2,
)


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint({"a": 1}) == fingerprint({"a": 1})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_handles_dataclasses_and_sets(self):
        from repro.utils.stats import Summary

        fp = fingerprint({"s": Summary(1, 2.0, 0.0, 2.0, 2.0), "t": frozenset({"x"})})
        assert len(fp) == 16


class TestManifest:
    @pytest.fixture(scope="class")
    def manifest(self):
        return build_manifest(ExperimentContext(scale=_TINY, seed=5))

    def test_same_config_matches(self, manifest):
        again = build_manifest(ExperimentContext(scale=_TINY, seed=5))
        assert manifest.matches(again)
        assert manifest.dataset_fingerprint == again.dataset_fingerprint

    def test_different_seed_differs(self, manifest):
        other = build_manifest(ExperimentContext(scale=_TINY, seed=6))
        assert not manifest.matches(other)

    def test_dataset_size_recorded(self, manifest):
        assert manifest.dataset_size > 0

    def test_save_load_roundtrip(self, manifest, tmp_path):
        path = manifest.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.matches(manifest)
