"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.embedding.hashing import hash_features
from repro.embedding.model import EmbeddingModel
from repro.utils import textproc
from repro.utils.rng import stable_hash
from repro.utils.stats import length_controlled_win_rate, win_rate
from repro.utils.unionfind import UnionFind
from repro.world.aspects import aspect_names, parse_directives
from repro.core.golden import MAX_DIRECTIVES, render_complement

_text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF), max_size=200)


class TestTextProperties:
    @given(_text)
    @settings(max_examples=80)
    def test_normalize_idempotent(self, text):
        once = textproc.normalize(text)
        assert textproc.normalize(once) == once

    @given(_text)
    @settings(max_examples=80)
    def test_words_are_lowercase_tokens(self, text):
        for word in textproc.words(text):
            assert word == word.lower()
            assert word.strip()

    @given(_text)
    @settings(max_examples=50)
    def test_wordstream_matches_words(self, text):
        assert textproc.wordstream(text).split(" ") == textproc.words(text) or (
            textproc.wordstream(text) == "" and textproc.words(text) == []
        )

    @given(_text, st.integers(min_value=0, max_value=30))
    @settings(max_examples=50)
    def test_truncate_words_never_longer(self, text, limit):
        truncated = textproc.truncate_words(text, limit)
        assert len(truncated.split()) <= max(limit, 0)

    @given(st.lists(st.text(max_size=5)), st.lists(st.text(max_size=5)))
    @settings(max_examples=50)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        value = textproc.jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == textproc.jaccard(b, a)


class TestHashProperties:
    @given(_text)
    @settings(max_examples=80)
    def test_stable_hash_range(self, text):
        assert 0 <= stable_hash(text) < (1 << 64)

    @given(st.lists(st.text(min_size=1, max_size=10), max_size=30), st.integers(1, 64))
    @settings(max_examples=50)
    def test_hash_features_linear_in_duplicates(self, feats, dim):
        once = hash_features(feats, dim)
        twice = hash_features(feats + feats, dim)
        assert np.allclose(twice, 2 * once)


class TestEmbeddingProperties:
    @given(_text)
    @settings(max_examples=50)
    def test_norm_at_most_one(self, text):
        vec = EmbeddingModel(dim=64).embed(text)
        norm = float(np.linalg.norm(vec))
        assert norm <= 1.0 + 1e-9
        assert norm == 0.0 or abs(norm - 1.0) < 1e-9


class TestUnionFindProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
    )
    @settings(max_examples=60)
    def test_components_consistent_with_groups(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            if a < n and b < n:
                uf.union(a, b)
        groups = uf.groups()
        assert len(groups) == uf.components
        assert sorted(m for g in groups.values() for m in g) == list(range(n))

    @given(
        st.integers(min_value=2, max_value=30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    @settings(max_examples=60)
    def test_connectivity_is_equivalence(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            if a < n and b < n:
                uf.union(a, b)
        for a, b in unions:
            if a < n and b < n:
                assert uf.connected(a, b)


class TestAnnProperties:
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_hnsw_agrees_with_bruteforce_top1(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        points = rng.normal(size=(n, 6))
        hnsw = HnswIndex(dim=6, ef_search=64, seed=0)
        brute = BruteForceIndex(dim=6)
        for i, p in enumerate(points):
            hnsw.add(p, key=i)
            brute.add(p, key=i)
        query = rng.normal(size=6)
        top_hnsw = hnsw.search(query, min(k, n))
        top_brute = brute.search(query, min(k, n))
        # The single nearest neighbour should virtually always agree.
        assert top_hnsw[0][0] == top_brute[0][0]

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_hnsw_distances_sorted(self, n):
        rng = np.random.default_rng(n)
        index = HnswIndex(dim=4, seed=1)
        for i in range(n):
            index.add(rng.normal(size=4), key=i)
        hits = index.search(rng.normal(size=4), min(10, n))
        dists = [d for _, d in hits]
        assert dists == sorted(dists)


class TestStatsProperties:
    @given(st.lists(st.sampled_from([0.0, 0.5, 1.0]), max_size=100))
    @settings(max_examples=60)
    def test_win_rate_bounds(self, outcomes):
        assert 0.0 <= win_rate(outcomes) <= 100.0

    @given(
        st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=3, max_size=60),
    )
    @settings(max_examples=40)
    def test_lc_win_rate_bounds(self, outcomes):
        rng = np.random.default_rng(len(outcomes))
        deltas = list(rng.normal(0, 1, len(outcomes)))
        assert 0.0 <= length_controlled_win_rate(outcomes, deltas) <= 100.0


class TestDirectiveProperties:
    @given(st.sets(st.sampled_from(aspect_names()), max_size=6), _text)
    @settings(max_examples=80)
    def test_render_complement_roundtrip_under_cap(self, aspects, salt):
        text = render_complement(aspects, salt=salt)
        parsed = parse_directives(text)
        assert parsed <= aspects
        assert len(parsed) == min(len(aspects), MAX_DIRECTIVES)

    @given(st.sets(st.sampled_from(aspect_names()), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_small_sets_roundtrip_exactly(self, aspects):
        assert parse_directives(render_complement(aspects)) == aspects
