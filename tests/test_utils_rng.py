"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_rng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_range_respects_bits(self):
        for bits in (8, 16, 32):
            value = stable_hash("x", bits=bits)
            assert 0 <= value < (1 << bits)

    def test_unicode_input(self):
        assert stable_hash("héllo␞") == stable_hash("héllo␞")

    def test_empty_string_is_valid(self):
        assert isinstance(stable_hash(""), int)

    def test_distribution_not_degenerate(self):
        values = {stable_hash(str(i)) % 100 for i in range(1000)}
        assert len(values) > 80  # hashing spreads across buckets


class TestDeriveRng:
    def test_same_seed_and_name_reproduce(self):
        a = derive_rng(1, "x").integers(0, 1000, 10)
        b = derive_rng(1, "x").integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        a = derive_rng(1, "x").integers(0, 1000, 10)
        b = derive_rng(1, "y").integers(0, 1000, 10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").integers(0, 1000, 10)
        b = derive_rng(2, "x").integers(0, 1000, 10)
        assert not (a == b).all()

    def test_returns_numpy_generator(self):
        assert isinstance(derive_rng(0, "z"), np.random.Generator)


class TestRngFactory:
    def test_get_is_reproducible(self):
        f = RngFactory(seed=7)
        a = f.get("comp").random(5)
        b = RngFactory(seed=7).get("comp").random(5)
        assert (a == b).all()

    def test_repeated_get_returns_fresh_state(self):
        f = RngFactory(seed=7)
        a = f.get("comp").random(3)
        b = f.get("comp").random(3)
        assert (a == b).all()

    def test_child_differs_from_parent(self):
        f = RngFactory(seed=7)
        a = f.get("comp").random(3)
        b = f.child("stage").get("comp").random(3)
        assert not (a == b).all()

    def test_child_is_deterministic(self):
        a = RngFactory(7).child("s").get("c").random(3)
        b = RngFactory(7).child("s").get("c").random(3)
        assert (a == b).all()

    def test_seed_property(self):
        assert RngFactory(seed=5).seed == 5

    @pytest.mark.parametrize("seed", [0, 1, 2**40, -1])
    def test_various_seeds_accepted(self, seed):
        RngFactory(seed=seed).get("x").random()
