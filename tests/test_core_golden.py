"""Tests for golden exemplars and complement rendering."""

import pytest

from repro.core.golden import MAX_DIRECTIVES, GoldenData, build_golden_data, render_complement
from repro.world.aspects import ASPECTS, find_cues, parse_directives
from repro.world.categories import category_names


class TestRenderComplement:
    def test_roundtrip(self):
        assert parse_directives(render_complement({"depth", "format"})) == {
            "depth",
            "format",
        }

    def test_empty(self):
        assert render_complement(set()) == ""

    def test_cap_respected(self):
        text = render_complement({"depth", "format", "examples", "structure", "style"})
        assert len(parse_directives(text)) == MAX_DIRECTIVES

    def test_cap_keeps_heaviest(self):
        aspects = {"logic_trap", "brevity", "style", "examples"}
        kept = parse_directives(render_complement(aspects))
        # weights: logic_trap 1.4 > examples 0.9 > brevity == style 0.8,
        # name-order tiebreak keeps brevity.
        assert kept == {"logic_trap", "examples", "brevity"}
        assert ASPECTS["logic_trap"].weight > ASPECTS["style"].weight

    def test_salt_changes_wording_not_aspects(self):
        a = render_complement({"depth"}, salt="1")
        b = render_complement({"depth"}, salt="2")
        assert parse_directives(a) == parse_directives(b) == {"depth"}


class TestGoldenData:
    @pytest.fixture(scope="class")
    def golden(self):
        return build_golden_data(seed=2, per_category=5)

    def test_covers_all_categories(self, golden):
        assert golden.categories() == sorted(category_names())

    def test_per_category_count(self, golden):
        for category in golden.categories():
            assert len(golden.exemplars(category)) == 5

    def test_total_size(self, golden):
        assert len(golden) == 5 * 14

    def test_complements_match_needs_exactly_up_to_cap(self, golden):
        for pair in golden.all_pairs():
            labelled = parse_directives(pair.complement)
            assert labelled <= pair.prompt.needs
            assert len(labelled) == min(len(pair.prompt.needs), MAX_DIRECTIVES)

    def test_golden_prompts_fully_cued(self, golden):
        for pair in golden.all_pairs():
            assert pair.prompt.needs <= set(find_cues(pair.prompt.text))

    def test_unknown_category_returns_empty(self, golden):
        assert golden.exemplars("not-a-category") == []

    def test_empty_golden_rejected(self):
        with pytest.raises(ValueError):
            GoldenData({})

    def test_invalid_per_category(self):
        with pytest.raises(ValueError):
            build_golden_data(per_category=0)

    def test_deterministic(self):
        a = build_golden_data(seed=9)
        b = build_golden_data(seed=9)
        assert [p.complement for p in a.all_pairs()] == [p.complement for p in b.all_pairs()]
