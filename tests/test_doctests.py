"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.obs.metrics
import repro.serve
import repro.serve.cache
import repro.utils.rng
import repro.utils.textproc
import repro.utils.unionfind
import repro.text.tokenizer

_MODULES = [
    repro.utils.rng,
    repro.utils.textproc,
    repro.utils.unionfind,
    repro.text.tokenizer,
    repro.serve,
    repro.serve.cache,
    repro.obs.metrics,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert attempted > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
