"""Unit tests for the metrics registry: instruments, exports, null objects."""

import json

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.utils.io import dump_jsonl, load_jsonl


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.total() == 3

    def test_labels_are_independent_series(self):
        c = Counter("requests_total")
        c.inc(model="a")
        c.inc(model="a")
        c.inc(model="b")
        assert c.value(model="a") == 2
        assert c.value(model="b") == 1
        assert c.value(model="never") == 0
        assert c.total() == 3

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2
        assert len(c.series()) == 1

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_int_increments_stay_ints(self):
        # Matters for the JSON round trip: json.loads never turns 3 into 3.0.
        c = Counter("x")
        c.inc(2, kind="prompt")
        assert isinstance(c.value(kind="prompt"), int)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        assert g.value() == 5
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_labels(self):
        g = Gauge("depth")
        g.set(1, queue="a")
        g.set(2, queue="b")
        assert g.value(queue="a") == 1
        assert g.value(queue="b") == 2


class TestHistogram:
    def test_bucket_assignment_le_semantics(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 9.0):
            h.observe(value)
        d = h.as_dict()
        (series,) = d["series"]
        # 0.5 and 1.0 land in le=1, 1.5 in le=2, 4.0 in le=4, 9.0 overflows.
        assert series["counts"] == [2, 1, 1]
        assert series["overflow"] == 1
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(16.0)

    def test_count_and_sum_per_labels(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5, model="a")
        h.observe(0.5, model="a")
        assert h.count(model="a") == 2
        assert h.sum(model="a") == pytest.approx(1.0)
        assert h.count(model="b") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_render_is_cumulative_with_inf(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        lines = h.render()
        assert 'lat_bucket{le="1.0"} 1' in lines
        assert 'lat_bucket{le="2.0"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines

    def test_as_dict_stays_finite(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(9.0)
        payload = json.dumps(h.as_dict())  # must not hit Infinity
        assert "Infinity" not in payload


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", buckets=(1.0,)) is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a", buckets=(1.0,))

    def test_contains_len_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_as_dict_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc(model="m")
        reg.gauge("depth").set(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert list(d["counters"]) == ["z_total"]
        assert d["counters"]["z_total"] == [{"labels": {"model": "m"}, "value": 1}]
        assert d["gauges"]["depth"] == [{"labels": {}, "value": 3}]
        assert d["histograms"]["lat"]["buckets"] == [1.0]

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        reg.counter("a").inc()
        assert snap["counters"]["a"][0]["value"] == 1
        assert reg.as_dict()["counters"]["a"][0]["value"] == 2

    def test_render_prometheus_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total", help="B.").inc(model="x")
            reg.counter("a_total").inc(5, model="y")
            reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5, model="x")
            return reg

        text = build().render_prometheus()
        assert text == build().render_prometheus()
        # families sorted by name; HELP/TYPE headers present
        assert text.index("a_total") < text.index("b_total")
        assert "# HELP b_total B." in text
        assert "# TYPE lat histogram" in text
        assert 'a_total{model="y"} 5' in text

    def test_empty_render_is_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_json_round_trip_through_io(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("pas_requests_total").inc(model="gpt-4-0613", status="ok")
        reg.counter("pas_tokens_total").inc(12, kind="prompt")
        reg.gauge("queue_depth").set(2, queue="main")
        reg.histogram("pas_attempts", buckets=(1.0, 2.0, 4.0)).observe(2, model="m")
        path = tmp_path / "metrics.jsonl"
        dump_jsonl([reg.as_dict()], path)
        (loaded,) = load_jsonl(path)
        assert loaded == reg.as_dict()

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert len(reg) == 0


class TestNullRegistry:
    def test_surface_is_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        c = reg.counter("a")
        c.inc(5, model="m")
        assert c.value(model="m") == 0
        assert c.total() == 0
        reg.gauge("g").set(3)
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(2.0)
        assert h.count() == 0 and h.sum() == 0
        assert "a" not in reg
        assert len(reg) == 0
        assert reg.names() == []
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.render_prometheus() == ""
        reg.clear()

    def test_singleton_exists(self):
        assert not NULL_REGISTRY.enabled
