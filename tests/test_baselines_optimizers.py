"""Tests for the per-task optimizer baselines (OPRO, ProTeGi)."""

import numpy as np
import pytest

from repro.baselines.opro import OproOptimizer
from repro.baselines.protegi import ProtegiOptimizer
from repro.errors import NotFittedError
from repro.world.aspects import parse_directives
from repro.world.prompts import PromptFactory


def _train_prompts(n=15, seed=0, category="math"):
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt(category=category, cue_rate=1.0) for _ in range(n)]


class TestOpro:
    def test_use_before_optimize_raises(self):
        with pytest.raises(NotFittedError):
            OproOptimizer().transform("x")

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            OproOptimizer().optimize([])

    def test_optimize_returns_instruction(self):
        opt = OproOptimizer(n_restarts=1, seed=1)
        instruction = opt.optimize(_train_prompts(10, seed=1))
        assert instruction == opt.instruction
        # On a math training set the optimizer should discover useful
        # directives (step-by-step / trap awareness have the highest gain).
        assert parse_directives(instruction)

    def test_objective_improves_over_empty_instruction(self):
        opt = OproOptimizer(n_restarts=2, seed=2)
        train = _train_prompts(12, seed=2)
        opt.optimize(train)
        history = dict()
        for aspects, score in opt.history:
            history[aspects] = score
        assert max(history.values()) >= history[frozenset()]

    def test_transform_supplements(self):
        opt = OproOptimizer(n_restarts=1, seed=3)
        opt.optimize(_train_prompts(8, seed=3))
        prompt, supplement = opt.transform("compute something about a number sequence")
        assert prompt == "compute something about a number sequence"
        assert supplement is None or parse_directives(supplement)

    def test_flexibility_row(self):
        flex = OproOptimizer().flexibility
        assert flex.needs_human_labor
        assert not flex.llm_agnostic
        assert not flex.task_agnostic
        assert flex.training_examples is None  # excluded from Figure 7

    def test_deterministic(self):
        a = OproOptimizer(n_restarts=1, seed=4).optimize(_train_prompts(8, seed=4))
        b = OproOptimizer(n_restarts=1, seed=4).optimize(_train_prompts(8, seed=4))
        assert a == b


class TestProtegi:
    def test_use_before_optimize_raises(self):
        with pytest.raises(NotFittedError):
            ProtegiOptimizer().transform("x")

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            ProtegiOptimizer().optimize([])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProtegiOptimizer(beam_width=0)
        with pytest.raises(ValueError):
            ProtegiOptimizer(n_steps=0)

    def test_gradient_targets_missed_needs(self):
        opt = ProtegiOptimizer(beam_width=2, n_steps=2, seed=5)
        instruction = opt.optimize(_train_prompts(12, seed=5, category="reasoning"))
        found = parse_directives(instruction)
        # Reasoning prompts are trap-heavy; the gradient should find that.
        assert found, instruction
        assert found & {"logic_trap", "step_by_step", "verification", "depth"}

    def test_instruction_capped(self):
        opt = ProtegiOptimizer(beam_width=2, n_steps=4, max_directives=2, seed=6)
        instruction = opt.optimize(_train_prompts(10, seed=6))
        assert len(parse_directives(instruction)) <= 2

    def test_flexibility_row(self):
        flex = ProtegiOptimizer().flexibility
        assert not flex.task_agnostic
        assert not flex.llm_agnostic
