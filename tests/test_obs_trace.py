"""Unit tests for spans, traces, the tracer, and the trace store."""

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Trace,
    Tracer,
    TraceStore,
    render_waterfall,
)
from repro.utils.io import load_jsonl


class FakeClock:
    """A manually advanced logical clock."""

    def __init__(self):
        self.tick = 0

    def __call__(self):
        return self.tick


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(store=TraceStore(), clock=clock)


class TestTracer:
    def test_nested_spans_build_one_trace(self, tracer, clock):
        with tracer.span("gateway.ask", model="m") as root:
            clock.tick = 1
            with tracer.span("augment") as child:
                with tracer.span("embed") as grandchild:
                    pass
            clock.tick = 2
        (trace,) = tracer.store.traces
        assert [s.name for s in trace.spans] == ["gateway.ask", "augment", "embed"]
        assert [s.span_id for s in trace.spans] == [0, 1, 2]
        assert root.parent_id is None
        assert child.parent_id == 0
        assert grandchild.parent_id == 1
        assert trace.depth_of(root) == 0
        assert trace.depth_of(grandchild) == 2
        assert root.start_tick == 0 and root.end_tick == 2
        assert trace.duration_ticks == 2
        assert root.attrs == {"model": "m"}

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (trace,) = tracer.store.traces
        a, b = trace.find("a")[0], trace.find("b")[0]
        assert a.parent_id == b.parent_id == 0

    def test_trace_ids_are_sequential(self, tracer):
        for _ in range(3):
            with tracer.span("r"):
                pass
        assert [t.trace_id for t in tracer.store] == [0, 1, 2]

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current is None
        with tracer.span("root"):
            assert tracer.current.name == "root"
            with tracer.span("child"):
                assert tracer.current.name == "child"
            assert tracer.current.name == "root"
        assert tracer.current is None

    def test_exception_marks_span_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("augment"):
                    raise ValueError("boom")
        (trace,) = tracer.store.traces  # trace still finishes and lands
        augment = trace.first("augment")
        assert augment.status == "error"
        assert augment.attrs["error"] == "ValueError"
        # the root caught the same in-flight exception on the way out
        assert trace.status == "error"

    def test_explicit_status_wins_over_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root") as root:
                root.status = "failed"
                root.set(error="already recorded")
                raise RuntimeError("x")
        (trace,) = tracer.store.traces
        assert trace.status == "failed"
        assert trace.root.attrs["error"] == "already recorded"

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_bind_clock(self, tracer):
        tracer.bind_clock(lambda: 11)
        with tracer.span("r"):
            pass
        assert tracer.store.traces[0].start_tick == 11

    def test_wall_mirrors_into_stage_timer(self):
        tracer = Tracer(wall=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer.timer.calls == {"root": 1, "child": 1}
        assert tracer.timer.inclusive_s["root"] >= tracer.timer.inclusive_s["child"]

    def test_span_set_chains(self, tracer):
        with tracer.span("r") as span:
            assert span.set(a=1).set(b=2) is span
        assert tracer.store.traces[0].root.attrs == {"a": 1, "b": 2}


class TestTraceQueries:
    def _make(self, tracer, clock, duration):
        start = clock.tick
        with tracer.span("gateway.ask"):
            clock.tick = start + duration

    def test_find_first_missing(self, tracer):
        with tracer.span("r"):
            pass
        (trace,) = tracer.store.traces
        assert trace.find("absent") == []
        assert trace.first("absent") is None

    def test_slowest_orders_by_duration_then_id(self, tracer, clock):
        for duration in (1, 3, 3, 0):
            self._make(tracer, clock, duration)
        slowest = tracer.store.slowest(3)
        assert [(t.duration_ticks, t.trace_id) for t in slowest] == [
            (3, 1),
            (3, 2),
            (1, 0),
        ]

    def test_by_status_and_by_root(self, tracer):
        with tracer.span("gateway.ask") as root:
            root.status = "failed"
        with tracer.span("gateway.plan"):
            pass
        assert [t.root.name for t in tracer.store.by_status("failed")] == ["gateway.ask"]
        assert len(tracer.store.by_root("gateway.plan")) == 1

    def test_ring_capacity(self, tracer):
        tracer.store = store = TraceStore(capacity=2)
        for _ in range(4):
            with tracer.span("r"):
                pass
        assert len(store) == 2
        assert store.added == 4
        assert [t.trace_id for t in store] == [2, 3]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestExports:
    def test_as_dict_shape(self, tracer, clock):
        with tracer.span("root", zebra=1, apple=2):
            clock.tick = 1
        d = tracer.store.traces[0].as_dict()
        assert set(d) == {"trace_id", "status", "start_tick", "duration_ticks", "spans"}
        (span,) = d["spans"]
        assert list(span["attrs"]) == ["apple", "zebra"]

    def test_export_jsonl_round_trip(self, tracer, clock, tmp_path):
        with tracer.span("gateway.ask", model="m") as root:
            clock.tick = 1
            with tracer.span("complete"):
                pass
            root.status = "degraded"
        path = tmp_path / "traces.jsonl"
        assert tracer.store.export_jsonl(path) == 1
        assert list(load_jsonl(path)) == tracer.store.as_dicts()

    def test_waterfall_render(self, tracer, clock):
        with tracer.span("gateway.ask", model="m"):
            with tracer.span("augment", cached=False):
                clock.tick = 2
            with tracer.span("complete"):
                clock.tick = 4
        (trace,) = tracer.store.traces
        text = trace.waterfall(width=8)
        lines = text.splitlines()
        assert lines[0] == "trace 0 · status=ok · ticks 0..4"
        assert len(lines) == 4
        assert "gateway.ask" in lines[1] and "model=m" in lines[1]
        assert "    augment" in lines[2] and "cached=False" in lines[2]
        assert all("#" in line for line in lines[1:])

    def test_waterfall_empty_trace(self):
        assert "empty" in render_waterfall(Trace(5))


class TestNullTracer:
    def test_span_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        assert tracer.current is None
        tracer.bind_clock(lambda: 3)
        with tracer.span("anything", a=1) as span:
            assert span is NULL_SPAN
            span.status = "failed"  # absorbed
            assert span.status == "ok"
            assert span.set(x=1) is span
            assert span.attrs == {}
        assert len(tracer.store) == 0

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("boom")
