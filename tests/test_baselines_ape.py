"""Tests for the APE instruction-induction baseline (Zhou et al.)."""

import pytest

from repro.baselines.ape_zhou import ApeInduction
from repro.core.golden import build_golden_data
from repro.errors import NotFittedError
from repro.world.aspects import parse_directives


@pytest.fixture(scope="module")
def induced():
    method = ApeInduction(golden=build_golden_data(seed=13, per_category=4), seed=13)
    method.induce()
    return method


class TestApeInduction:
    def test_use_before_induce_raises(self):
        with pytest.raises(NotFittedError):
            ApeInduction().transform("x")
        with pytest.raises(NotFittedError):
            _ = ApeInduction().instructions

    def test_instruction_per_category(self, induced):
        instructions = induced.instructions
        assert len(instructions) == 14
        non_empty = [i for i in instructions.values() if i]
        assert len(non_empty) >= 10

    def test_instructions_are_directives(self, induced):
        for instruction in induced.instructions.values():
            if instruction:
                assert parse_directives(instruction)

    def test_instruction_size_capped(self, induced):
        for instruction in induced.instructions.values():
            assert len(parse_directives(instruction)) <= induced.max_directives

    def test_transform_routes_by_category(self, induced):
        prompt, supplement = induced.transform(
            "How do I implement a binary search tree in python?"
        )
        assert prompt.startswith("How do I implement")
        coding_instruction = induced.instructions.get("coding", "")
        if coding_instruction:
            assert supplement == coding_instruction

    def test_flexibility_row(self, induced):
        flex = induced.flexibility
        assert flex.needs_human_labor
        assert not flex.llm_agnostic
        assert not flex.task_agnostic

    def test_deterministic(self):
        a = ApeInduction(golden=build_golden_data(seed=14, per_category=3), seed=14).induce()
        b = ApeInduction(golden=build_golden_data(seed=14, per_category=3), seed=14).induce()
        assert a == b
