"""The unified Serializable protocol (ISSUE 10).

One registry, one envelope: every config/state class that round-trips
through dicts registers under a versioned ``"schema"`` key, and
:func:`repro.utils.serialize.serialize` /
:func:`repro.utils.serialize.deserialize` dispatch on it.  The pinned
contracts:

* the envelope is **additive** — ``serialize(obj)`` is ``as_dict()``
  plus the schema key, so every pre-existing byte-pinned ``as_dict``
  export is untouched;
* round-trip parity holds for **every registered class** (the sample
  table below must stay complete — adding a registration without a
  sample fails the completeness check);
* unknown or missing schemas fail loudly.
"""

import json

import pytest

from repro.obs.trace import Trace, Tracer, TraceStore
from repro.pipeline.config import PipelineConfig, RunnerConfig
from repro.pipeline.collect import CollectionConfig
from repro.pipeline.generate import GenerationConfig
from repro.policy import ContextualBandit, PolicyConfig
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import (
    EngineConfig,
    FairnessPolicy,
    FleetPlan,
    GatewayConfig,
    HedgePolicy,
    ModelPool,
    RouterConfig,
    ServeResponse,
    ServingConfig,
    TenantPolicy,
    TenantProfile,
    TrafficConfig,
)
from repro.utils.serialize import (
    SCHEMA_KEY,
    Serializable,
    deserialize,
    registered_schemas,
    schema_id,
    serialize,
)


def _trace() -> Trace:
    tracer = Tracer(store=TraceStore())
    with tracer.span("gateway.ask", model="gpt-4-0613"):
        with tracer.span("augment") as span:
            span.set(cached=True)
    return tracer.store.traces[0]


def _bandit() -> ContextualBandit:
    bandit = ContextualBandit(("static", "none"), epsilon=0.25, seed=3)
    for tick, reward in enumerate((0.5, 2.75, 4.0)):
        arm = bandit.select(("coding", "acme"), tick)
        bandit.observe(("coding", "acme"), arm, reward)
    return bandit


#: One representative (non-default where it matters) instance per
#: registered schema.  The completeness test keeps this table honest.
SAMPLES = {
    "TenantPolicy/1": TenantPolicy("paid", quota=5, priority=2),
    "ModelPool/1": ModelPool("mix", (("gpt-4-0613", 3.0), ("gpt-3.5-turbo-1106", 1.0))),
    "HedgePolicy/1": HedgePolicy(percentile=95.0, min_samples=8),
    "FairnessPolicy/1": FairnessPolicy(mode="wfq", weights=(("paid", 2.0),)),
    "FleetPlan/1": FleetPlan(
        replicas=3, hedge=HedgePolicy(after_ticks=6), spike_rate=0.1, spike_ticks=8
    ),
    "RouterConfig/1": RouterConfig(
        n_replicas=2, policy="least_loaded", tenants=(TenantPolicy("t", quota=2),)
    ),
    "GatewayConfig/1": GatewayConfig(
        cache_size=16,
        seed=5,
        fault_plan=FaultPlan(seed=2, completion_failure_rate=0.1),
        retry_policy=RetryPolicy(max_retries=3),
    ),
    "EngineConfig/1": EngineConfig(max_inflight=8, shed_policy="degrade"),
    "TenantProfile/1": TenantProfile("paid", weight=2.0, priority=1),
    "TrafficConfig/1": TrafficConfig(n_requests=32, process="bursty"),
    "PolicyConfig/1": PolicyConfig(enabled=True, judge_seed=17),
    "ServingConfig/1": ServingConfig(
        router=RouterConfig(n_replicas=2),
        fleet=FleetPlan(replicas=2, hedge=HedgePolicy(after_ticks=4)),
    ),
    "PipelineConfig/1": PipelineConfig(
        collection=CollectionConfig(quality_threshold=0.5),
        generation=GenerationConfig(max_rounds=2),
        runner=RunnerConfig(checkpoint_every=8),
        seed=9,
    ),
    "ServeResponse/1": ServeResponse(
        request_id="r1",
        model="gpt-4-0613",
        response="answer",
        complement="context",
        complement_cached=True,
        prompt_tokens=12,
        completion_tokens=20,
        status="ok",
        strategy="static",
    ),
    "ContextualBandit/1": _bandit(),
    "Trace/1": _trace(),
}


class TestRegistry:
    def test_sample_table_is_complete(self):
        assert set(SAMPLES) == set(registered_schemas())

    def test_every_registered_class_satisfies_the_protocol(self):
        for key, cls in registered_schemas().items():
            assert isinstance(SAMPLES[key], cls)
            assert isinstance(SAMPLES[key], Serializable)
            assert schema_id(cls) == key

    @pytest.mark.parametrize("key", sorted(SAMPLES))
    def test_round_trip_through_json(self, key):
        obj = SAMPLES[key]
        payload = serialize(obj)
        assert payload[SCHEMA_KEY] == key
        restored = deserialize(json.loads(json.dumps(payload)))
        assert type(restored) is type(obj)
        # Compare re-serialized envelopes: classes without __eq__ (the
        # bandit, traces) still pin lossless round-trips this way.
        assert serialize(restored) == payload

    @pytest.mark.parametrize("key", sorted(SAMPLES))
    def test_envelope_is_as_dict_plus_schema(self, key):
        obj = SAMPLES[key]
        payload = serialize(obj)
        body = dict(payload)
        del body[SCHEMA_KEY]
        assert body == obj.as_dict()  # byte-pinned exports untouched


class TestFailureModes:
    def test_missing_schema_key_raises(self):
        with pytest.raises(ValueError, match="schema"):
            deserialize({"tenant": "t"})

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="Ghost/9"):
            deserialize({SCHEMA_KEY: "Ghost/9"})

    def test_non_dict_payload_raises(self):
        with pytest.raises(ValueError):
            deserialize(["not", "a", "dict"])


class TestTraceRoundTrip:
    def test_span_tree_is_restored_exactly(self):
        trace = _trace()
        restored = Trace.from_dict(trace.as_dict())
        assert restored.as_dict() == trace.as_dict()
        assert restored.root.name == "gateway.ask"
        assert restored.spans[1].parent_id == 0
        assert restored.spans[1].attrs == {"cached": True}
        assert restored.depth_of(restored.spans[1]) == 1

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ValueError, match="at least one span"):
            Trace.from_dict({"trace_id": 0, "spans": []})

    def test_out_of_order_span_ids_are_rejected(self):
        data = _trace().as_dict()
        data["spans"][0]["span_id"] = 5
        with pytest.raises(ValueError, match="creation order"):
            Trace.from_dict(data)


class TestBanditRoundTrip:
    def test_resumed_bandit_selects_identically(self):
        bandit = _bandit()
        resumed = deserialize(json.loads(json.dumps(serialize(bandit))))
        for tick in range(10, 16):
            assert resumed.select(("coding", "acme"), tick) == bandit.select(
                ("coding", "acme"), tick
            )
