"""Shared fixtures.

Expensive artifacts (datasets, trained models, suites) are session-scoped
and built at reduced scale so the whole suite stays fast while still
exercising the real pipeline end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_default_dataset
from repro.core.pas import PasModel
from repro.experiments.context import ExperimentContext, ScaleConfig
from repro.world.prompts import CorpusConfig, PromptFactory


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def factory(rng):
    return PromptFactory(rng=rng)


@pytest.fixture(scope="session")
def small_corpus():
    factory = PromptFactory(rng=np.random.default_rng(42))
    return factory.make_corpus(CorpusConfig(n_prompts=250))


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small curated dataset produced by the full pipeline."""
    return build_default_dataset(n_prompts=250, seed=3, curate=True)


@pytest.fixture(scope="session")
def tiny_raw_dataset():
    return build_default_dataset(n_prompts=250, seed=3, curate=False)


@pytest.fixture(scope="session")
def trained_pas(tiny_dataset):
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(tiny_dataset)


@pytest.fixture(scope="session")
def quick_ctx():
    """A quick-scale experiment context shared by integration tests.

    Seed 0 matches the benchmark suite and the documented EXPERIMENTS.md
    configuration, so the shape assertions test the same artifacts the
    docs describe.
    """
    return ExperimentContext(scale=ScaleConfig.quick(), seed=0)
