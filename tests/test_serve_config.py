"""The unified ServingConfig surface: lossless round-trips, validation,
the fleet section added with the elastic-fleet redesign (ISSUE 10), and
the removal of the flat engine kwargs."""

import json

import pytest

from repro.errors import ConfigError
from repro.llm.api import LatencyModel
from repro.policy import ContextualBandit
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy
from repro.serve import (
    EngineConfig,
    FairnessPolicy,
    FleetPlan,
    GatewayConfig,
    HedgePolicy,
    ModelPool,
    PasGateway,
    PolicyConfig,
    RouterConfig,
    ServingConfig,
    ServingEngine,
    TenantPolicy,
    TenantProfile,
    TrafficConfig,
)


def _bandit_state() -> dict:
    """A non-trivial serialized bandit: exact fractions, two contexts."""
    bandit = ContextualBandit(("static", "salted", "none"), epsilon=0.25, seed=3)
    for tick, reward in enumerate((0.1, 4.3, 2.2, 3.7)):
        arm = bandit.select(("coding", "acme"), tick)
        bandit.observe(("coding", "acme"), arm, reward)
    bandit.observe(("chitchat", "anonymous"), "none", 4.9)
    return bandit.as_dict()

FULL = ServingConfig(
    router=RouterConfig(
        n_replicas=4,
        policy="least_loaded",
        hash_key="tenant",
        vnodes=32,
        cache_scope="shared",
        seed=7,
        tenants=(
            TenantPolicy("free", quota=50, quota_window_ticks=128),
            TenantPolicy("paid", rate_tokens_per_tick=0.5, burst=4, priority=3),
        ),
        pools=(
            ModelPool("mix", (("gpt-4-0613", 3.0), ("gpt-3.5-turbo-1106", 1.0))),
        ),
    ),
    gateway=GatewayConfig(
        cache_size=64,
        embed_cache_size=32,
        max_retries=2,
        seed=5,
        strict=True,
        fault_plan=FaultPlan(
            seed=11,
            completion_failure_rate=0.2,
            augment_failure_rate=0.1,
            latency_spike_rate=0.05,
            latency_spike_ticks=8,
            outages=(OutageWindow("gpt-4-0613", 10, 20),),
        ),
        retry_policy=RetryPolicy(
            max_retries=2, base_backoff=2.0, jitter=0.1, deadline_ticks=64.0
        ),
        breaker_threshold=3,
        breaker_recovery_ticks=24,
        latency_model=LatencyModel(base_ticks=3, per_token_ticks=0.02, jitter=0.1),
        max_inflight=4,
    ),
    engine=EngineConfig(
        max_inflight=8, max_batch=16, max_wait=2, shed_policy="degrade"
    ),
    traffic=TrafficConfig(
        n_requests=500,
        seed=13,
        process="diurnal",
        mean_gap_ticks=1.5,
        zipf_exponent=1.1,
        tenants=(
            TenantProfile("free", weight=3.0, priority=0, deadline_ticks=32),
            TenantProfile("paid", weight=1.0, priority=2, models=(("mix", 1.0),)),
        ),
    ),
    policy=PolicyConfig(
        enabled=True,
        strategies=("static", "salted", "none"),
        algorithm="ucb1",
        epsilon=0.25,
        ucb_c=1.5,
        salt=2,
        seed=3,
        judge_seed=17,
        quality_gate=4.25,
        max_promoted_per_category=2,
        state=_bandit_state(),
    ),
    fleet=FleetPlan(
        replicas=4,
        hedge=HedgePolicy(percentile=95.0, min_samples=8),
        fairness=FairnessPolicy(
            mode="wfq", weights=(("free", 1.0), ("paid", 3.0))
        ),
        spike_rate=0.05,
        spike_ticks=12,
    ),
)


class TestRoundTrips:
    def test_serving_config_survives_json(self):
        payload = json.dumps(FULL.as_dict())
        assert ServingConfig.from_dict(json.loads(payload)) == FULL

    def test_default_serving_config_survives_json(self):
        config = ServingConfig()
        payload = json.dumps(config.as_dict())
        assert ServingConfig.from_dict(json.loads(payload)) == config

    @pytest.mark.parametrize(
        "section", ["router", "gateway", "engine", "traffic", "policy", "fleet"]
    )
    def test_each_section_round_trips_alone(self, section):
        config = getattr(FULL, section)
        assert type(config).from_dict(json.loads(json.dumps(config.as_dict()))) == config

    def test_nested_policies_round_trip(self):
        for obj in (
            FaultPlan(seed=2, outages=(OutageWindow("gpt-4-0613", 1, 9),)),
            RetryPolicy(max_retries=4, deadline_ticks=128),
            LatencyModel(base_ticks=2, per_token_ticks=0.05, jitter=0.2),
            TenantPolicy("t", quota=9, rate_tokens_per_tick=1.5, priority=1),
            ModelPool("p", (("gpt-4-0613", 1.0),)),
            TenantProfile("t", weight=2.0, models=(("gpt-4-0613", 1.0),)),
        ):
            assert type(obj).from_dict(json.loads(json.dumps(obj.as_dict()))) == obj


class TestValidation:
    def test_unknown_policy_tenant_is_rejected(self):
        config = ServingConfig(
            router=RouterConfig(tenants=(TenantPolicy("ghost", quota=1),)),
            traffic=TrafficConfig(tenants=(TenantProfile("real"),)),
        )
        with pytest.raises(ConfigError, match="ghost"):
            config.validate()

    def test_matching_tenants_validate(self):
        FULL.validate()


class TestPolicySection:
    """The ``policy`` section added with the adaptive augmentation layer."""

    def test_bandit_state_round_trips_losslessly(self):
        # The serialized bandit carries exact Fractions as [num, den]
        # pairs; a JSON round trip must preserve them bit for bit.
        config = ServingConfig.from_dict(json.loads(json.dumps(FULL.as_dict())))
        assert config.policy == FULL.policy
        resumed = ContextualBandit.from_dict(config.policy.state)
        assert resumed.as_dict() == FULL.policy.state

    def test_unknown_keys_raise_type_error(self):
        data = FULL.policy.as_dict()
        data["explore_rate"] = 0.5
        with pytest.raises(TypeError, match="explore_rate"):
            PolicyConfig.from_dict(data)

    def test_enabled_policy_requires_judge_seed(self):
        config = ServingConfig(policy=PolicyConfig(enabled=True, judge_seed=None))
        with pytest.raises(ConfigError, match="judge_seed"):
            config.validate()
        # Disabled sections may leave the judge seed unset.
        ServingConfig(policy=PolicyConfig(enabled=False)).validate()

    def test_section_validation_at_construction(self):
        with pytest.raises(ConfigError, match="at least one strategy"):
            PolicyConfig(strategies=())
        with pytest.raises(ConfigError, match="unknown strategies"):
            PolicyConfig(strategies=("static", "rewrite"))
        with pytest.raises(ConfigError, match="epsilon"):
            PolicyConfig(epsilon=-0.1)
        with pytest.raises(ConfigError, match="epsilon"):
            PolicyConfig(epsilon=1.0001)
        with pytest.raises(ConfigError, match="quality_gate"):
            PolicyConfig(quality_gate=5.5)
        with pytest.raises(ConfigError, match="algorithm"):
            PolicyConfig(algorithm="thompson")

    def test_pre_policy_dicts_load_as_policy_off(self):
        data = ServingConfig().as_dict()
        del data["policy"]
        config = ServingConfig.from_dict(data)
        assert config.policy == PolicyConfig()
        assert not config.policy.enabled

    def test_policy_off_default_parity(self):
        # The section's existence must not change the rest of the config:
        # a default ServingConfig exports the pre-policy sections
        # byte-identically, plus one self-contained "policy" key.
        exported = ServingConfig().as_dict()
        policy = exported.pop("policy")
        fleet = exported.pop("fleet")
        assert set(exported) == {"router", "gateway", "engine", "traffic"}
        assert policy == PolicyConfig().as_dict()
        assert policy["enabled"] is False and policy["state"] is None
        assert fleet == FleetPlan().as_dict()
        assert fleet["replicas"] is None and fleet["hedge"] is None


class TestFleetSection:
    """The ``fleet`` section added with the elastic-fleet redesign."""

    def test_pre_fleet_dicts_load_as_default_plan(self):
        data = ServingConfig().as_dict()
        del data["fleet"]
        config = ServingConfig.from_dict(data)
        assert config.fleet == FleetPlan()
        assert config.fleet.replicas is None

    def test_hedge_needs_two_replicas(self):
        config = ServingConfig(fleet=FleetPlan(hedge=HedgePolicy(after_ticks=8)))
        with pytest.raises(ConfigError, match="at least 2 replicas"):
            config.validate()
        # The router section's replica count satisfies an unset plan count.
        ServingConfig(
            router=RouterConfig(n_replicas=2),
            fleet=FleetPlan(hedge=HedgePolicy(after_ticks=8)),
        ).validate()
        # An explicit plan count overrides the router section.
        ServingConfig(
            fleet=FleetPlan(replicas=3, hedge=HedgePolicy(after_ticks=8))
        ).validate()

    def test_hedge_policy_needs_exactly_one_trigger(self):
        with pytest.raises(ConfigError, match="exactly one"):
            HedgePolicy()
        with pytest.raises(ConfigError, match="exactly one"):
            HedgePolicy(after_ticks=4, percentile=95.0)
        with pytest.raises(ConfigError):
            HedgePolicy(after_ticks=0)
        with pytest.raises(ConfigError):
            HedgePolicy(percentile=0.0)

    def test_wfq_weights_must_name_traffic_tenants(self):
        config = ServingConfig(
            traffic=TrafficConfig(tenants=(TenantProfile("real"),)),
            fleet=FleetPlan(
                fairness=FairnessPolicy(mode="wfq", weights=(("ghost", 2.0),))
            ),
        )
        with pytest.raises(ConfigError, match="ghost"):
            config.validate()

    def test_wfq_weights_naming_real_tenants_validate(self):
        ServingConfig(
            traffic=TrafficConfig(
                tenants=(TenantProfile("free"), TenantProfile("paid"))
            ),
            fleet=FleetPlan(
                fairness=FairnessPolicy(
                    mode="wfq", weights=(("free", 1.0), ("paid", 3.0))
                )
            ),
        ).validate()

    def test_fairness_validation(self):
        with pytest.raises(ConfigError, match="mode"):
            FairnessPolicy(mode="lottery")
        with pytest.raises(ConfigError, match="duplicate"):
            FairnessPolicy(weights=(("t", 1.0), ("t", 2.0)))
        with pytest.raises(ConfigError):
            FairnessPolicy(weights=(("t", -1.0),))
        with pytest.raises(ConfigError):
            FairnessPolicy(default_weight=0.0)

    def test_spike_knobs_validate(self):
        with pytest.raises(ConfigError):
            FleetPlan(spike_rate=1.0)
        with pytest.raises(ConfigError):
            FleetPlan(spike_rate=0.1, spike_ticks=0)
        with pytest.raises(ConfigError):
            FleetPlan(replicas=0)


class TestEngineConfigSurface:
    def test_engine_accepts_serving_config(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        config = ServingConfig(engine=EngineConfig(max_inflight=8, max_queue=32))
        engine = ServingEngine(gateway, config)
        assert engine.config == config.engine

    def test_flat_kwargs_raise_naming_field(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        with pytest.raises(TypeError, match="max_inflight") as excinfo:
            ServingEngine(gateway, max_inflight=8, shed_policy="degrade")
        assert "EngineConfig" in str(excinfo.value)

    def test_flat_kwargs_rejected_even_with_config(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        with pytest.raises(TypeError, match="no longer accepts flat kwargs"):
            ServingEngine(gateway, EngineConfig(max_inflight=2), max_inflight=16)

    def test_unknown_kwargs_raise(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        with pytest.raises(TypeError, match="max_velocity"):
            ServingEngine(gateway, max_velocity=3)
