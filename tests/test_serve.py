"""Tests for the serving layer (gateway, cache, request types)."""

import pytest

from repro.errors import UnknownModelError
from repro.llm.api import TransientApiError
from repro.serve.cache import LruCache
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest


class TestLruCache:
    def test_basic_roundtrip(self):
        cache = LruCache(capacity=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_miss_returns_default(self):
        cache = LruCache(capacity=2)
        assert cache.get("missing", "dflt") == "dflt"

    def test_eviction_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_rate(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("x")
        assert cache.hit_rate == 0.5
        assert LruCache(capacity=1).hit_rate == 0.0

    def test_len_and_clear(self):
        cache = LruCache(capacity=3)
        cache.put("a", 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

    def test_peek_does_not_count_or_refresh(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.peek("missing", -1) == -1
        assert cache.hits == cache.misses == 0
        cache.put("c", 3)  # peek("a") must NOT have refreshed a
        assert "a" not in cache
        assert "b" in cache


class TestServeTypes:
    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            ServeRequest(prompt="   ", model="gpt-4-0613")

    def test_augmented_property(self, trained_pas):
        gateway = PasGateway(pas=trained_pas)
        response = gateway.ask(
            ServeRequest(prompt="how do i sort a csv? walk me through it.", model="gpt-4-0613")
        )
        assert response.augmented == bool(response.complement)


class TestGateway:
    @pytest.fixture()
    def gateway(self, trained_pas):
        return PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))

    def test_ask_text(self, gateway):
        assert gateway.ask_text("how do i parse csv files? show me how.", "gpt-4-0613")

    def test_unknown_model_rejected_strict(self, gateway):
        with pytest.raises(UnknownModelError):
            gateway.ask(
                ServeRequest(prompt="hello there friend", model="gpt-99"), strict=True
            )

    def test_unknown_model_fails_non_strict(self, gateway):
        response = gateway.ask(ServeRequest(prompt="hello there friend", model="gpt-99"))
        assert response.failed
        assert response.error.startswith("UnknownModelError")
        assert gateway.stats.failures == 1

    def test_complement_cache_hits_on_repeat(self, gateway):
        request = ServeRequest(prompt="how do i bake bread? walk me through it.", model="gpt-4-0613")
        first = gateway.ask(request)
        second = gateway.ask(request)
        assert not first.complement_cached
        assert second.complement_cached
        assert first.response == second.response
        assert gateway.cache_hit_rate > 0.0

    def test_stats_accumulate(self, gateway):
        gateway.ask_text("question one about gardens, please explain it in detail.", "gpt-4-0613")
        gateway.ask_text("question two about trains. walk me through it.", "gpt-3.5-turbo-1106")
        stats = gateway.stats
        assert stats.requests == 2
        assert stats.per_model == {"gpt-4-0613": 1, "gpt-3.5-turbo-1106": 1}
        assert stats.prompt_tokens > 0
        assert stats.completion_tokens > 0

    def test_augment_flag_off(self, gateway):
        response = gateway.ask(
            ServeRequest(
                prompt="how do i bake bread? please explain it in detail.",
                model="gpt-4-0613",
                augment=False,
            )
        )
        assert response.complement == ""
        assert not response.augmented

    def test_clients_created_lazily(self, gateway):
        assert gateway.registered_models == []
        gateway.ask_text("first request about boats, be concise.", "qwen2-72b-chat")
        assert gateway.registered_models == ["qwen2-72b-chat"]

    def test_augmentation_rate(self, gateway):
        gateway.ask(
            ServeRequest(prompt="how do i fix my code? it fails under load.", model="gpt-4-0613", augment=False)
        )
        assert gateway.stats.augmentation_rate == 0.0


class TestGatewayFailureAccounting:
    def test_exhausted_retries_still_recorded_strict(self, trained_pas, monkeypatch):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8, strict=True))
        client = gateway.client_for("gpt-4-0613")

        def exploding_complete(messages):
            raise TransientApiError("gpt-4-0613: all attempts failed transiently")

        monkeypatch.setattr(client, "complete", exploding_complete)
        request = ServeRequest(
            prompt="how do i bake bread? walk me through it.", model="gpt-4-0613"
        )
        with pytest.raises(TransientApiError):
            gateway.ask(request)
        assert gateway.stats.requests == 1
        assert gateway.stats.failures == 1
        assert gateway.stats.per_model == {"gpt-4-0613": 1}
        assert gateway.stats.failures_per_model == {"gpt-4-0613": 1}
        # the failed completion contributes no served-side accounting
        assert gateway.stats.augmented == 0
        assert gateway.stats.prompt_tokens == 0

    def test_exhausted_retries_yield_failed_response(self, trained_pas, monkeypatch):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        client = gateway.client_for("gpt-4-0613")

        def exploding_complete(messages):
            raise TransientApiError("gpt-4-0613: all attempts failed transiently")

        monkeypatch.setattr(client, "complete", exploding_complete)
        response = gateway.ask(
            ServeRequest(prompt="how do i bake bread? walk me through it.", model="gpt-4-0613")
        )
        assert response.failed
        assert not response.ok
        assert response.response == ""
        assert response.error == (
            "TransientApiError: gpt-4-0613: all attempts failed transiently"
        )
        assert gateway.stats.failures == 1
        assert gateway.stats.served == 0

    def test_failures_default_zero(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        gateway.ask_text("how do i parse csv files? show me how.", "gpt-4-0613")
        assert gateway.stats.failures == 0
        assert gateway.stats.failures_per_model == {}

    def test_per_model_mixes_served_and_failed(self, trained_pas, monkeypatch):
        """``per_model`` counts attempts; ``failures_per_model`` isolates
        the failed ones, so served-per-model is their difference."""
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8, strict=True))
        gateway.ask_text("how do i bake bread? walk me through it.", "gpt-4-0613")
        client = gateway.client_for("gpt-4-0613")

        def exploding_complete(messages):
            raise TransientApiError("gpt-4-0613: all attempts failed transiently")

        monkeypatch.setattr(client, "complete", exploding_complete)
        with pytest.raises(TransientApiError):
            gateway.ask_text("why does my regex backtrack so much? be concise.", "gpt-4-0613")
        assert gateway.stats.per_model == {"gpt-4-0613": 2}
        assert gateway.stats.failures_per_model == {"gpt-4-0613": 1}
        served = {
            model: count - gateway.stats.failures_per_model.get(model, 0)
            for model, count in gateway.stats.per_model.items()
        }
        assert served == {"gpt-4-0613": 1}


class TestRemovedFlatKwargs:
    def test_flat_kwargs_raise_naming_field(self, trained_pas):
        with pytest.raises(TypeError, match="cache_size") as excinfo:
            PasGateway(pas=trained_pas, cache_size=8, seed=4)
        assert "GatewayConfig" in str(excinfo.value)

    def test_flat_kwargs_rejected_even_with_config(self, trained_pas):
        with pytest.raises(TypeError, match="no longer accepts flat kwargs"):
            PasGateway(
                pas=trained_pas,
                config=GatewayConfig(cache_size=4, failure_rate=0.1),
                cache_size=16,
            )

    def test_unknown_kwargs_rejected(self, trained_pas):
        with pytest.raises(TypeError, match="cache_sze"):
            PasGateway(pas=trained_pas, cache_sze=8)

    def test_config_only_path_does_not_warn(self, trained_pas, recwarn):
        PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]


class TestEmbeddingCacheTier:
    """The embedding memo under the complement LRU (two-tier caching)."""

    def test_eviction_reaugment_hits_embed_tier(self, trained_pas):
        # Complement LRU of 1 thrashes between two prompts; every
        # re-augmentation after the first should reuse the embedding.
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1, embed_cache_size=16))
        prompts = [
            "how do i bake bread? walk me through it.",
            "how do i parse csv files? show me how.",
        ]
        for _ in range(3):
            for prompt in prompts:
                gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
        assert gateway.stats.embed_cache_misses == 2  # first sight of each
        assert gateway.stats.embed_cache_hits == 4  # every re-augmentation
        assert gateway.embed_cache_hit_rate == pytest.approx(4 / 6)

    def test_complement_hit_skips_embed_tier(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8, embed_cache_size=16))
        request = ServeRequest(
            prompt="how do i bake bread? walk me through it.", model="gpt-4-0613"
        )
        gateway.ask(request)
        gateway.ask(request)  # complement LRU hit: the lower tier is idle
        assert gateway.stats.embed_cache_misses == 1
        assert gateway.stats.embed_cache_hits == 0

    def test_disabled_tier(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1, embed_cache_size=0))
        for _ in range(2):
            gateway.ask_text("how do i bake bread? walk me through it.", "gpt-4-0613")
        assert gateway.embed_cache_hit_rate == 0.0
        assert gateway.stats.embed_cache_hits == 0
        assert gateway.stats.embed_cache_misses == 0

    def test_cached_embedding_changes_nothing(self, trained_pas):
        prompt = "how do i bake bread? walk me through it."
        with_tier = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1, embed_cache_size=16))
        without = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1, embed_cache_size=0))
        filler = "why does my regex backtrack so much? be concise."
        answers = []
        for gateway in (with_tier, without):
            gateway.ask_text(prompt, "gpt-4-0613")
            gateway.ask_text(filler, "gpt-4-0613")  # evicts the complement
            answers.append(gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613")))
        assert answers[0] == answers[1]


class TestGatewayBatch:
    PROMPTS = [
        "how do i parse csv files? show me how.",
        "how do i bake bread? walk me through it.",
        "how do i parse csv files? show me how.",  # duplicate of the first
        "why does my regex backtrack so much? be concise.",
    ]

    def test_empty_batch_is_noop(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        assert gateway.ask_batch([]) == []
        assert gateway.stats.requests == 0

    def test_matches_scalar_loop(self, trained_pas):
        requests = [
            ServeRequest(prompt=p, model="gpt-4-0613") for p in self.PROMPTS
        ]
        scalar = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        batched = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        inner_s = scalar._complement_cache
        inner_b = batched._complement_cache
        assert (inner_b.hits, inner_b.misses) == (inner_s.hits, inner_s.misses)

    def test_duplicate_prompts_augmented_once(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        responses = gateway.ask_batch(
            [ServeRequest(prompt=p, model="gpt-4-0613") for p in self.PROMPTS]
        )
        assert len(responses) == 4
        assert responses[0].complement == responses[2].complement
        assert responses[2].complement_cached  # second occurrence hits the cache
        assert gateway.stats.cache_hits == 1

    def test_respects_augment_flag(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        responses = gateway.ask_batch(
            [
                ServeRequest(
                    prompt="how do i bake bread? walk me through it.",
                    model="gpt-4-0613",
                    augment=False,
                )
            ]
        )
        assert responses[0].complement == ""
        assert gateway.stats.augmented == 0
