"""Tests for the serving layer (gateway, cache, request types)."""

import pytest

from repro.errors import UnknownModelError
from repro.serve.cache import LruCache
from repro.serve.gateway import PasGateway
from repro.serve.types import ServeRequest


class TestLruCache:
    def test_basic_roundtrip(self):
        cache = LruCache(capacity=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_miss_returns_default(self):
        cache = LruCache(capacity=2)
        assert cache.get("missing", "dflt") == "dflt"

    def test_eviction_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_rate(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("x")
        assert cache.hit_rate == 0.5
        assert LruCache(capacity=1).hit_rate == 0.0

    def test_len_and_clear(self):
        cache = LruCache(capacity=3)
        cache.put("a", 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)


class TestServeTypes:
    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            ServeRequest(prompt="   ", model="gpt-4-0613")

    def test_augmented_property(self, trained_pas):
        gateway = PasGateway(pas=trained_pas)
        response = gateway.ask(
            ServeRequest(prompt="how do i sort a csv? walk me through it.", model="gpt-4-0613")
        )
        assert response.augmented == bool(response.complement)


class TestGateway:
    @pytest.fixture()
    def gateway(self, trained_pas):
        return PasGateway(pas=trained_pas, cache_size=8)

    def test_ask_text(self, gateway):
        assert gateway.ask_text("how do i parse csv files? show me how.", "gpt-4-0613")

    def test_unknown_model_rejected(self, gateway):
        with pytest.raises(UnknownModelError):
            gateway.ask(ServeRequest(prompt="hello there friend", model="gpt-99"))

    def test_complement_cache_hits_on_repeat(self, gateway):
        request = ServeRequest(prompt="how do i bake bread? walk me through it.", model="gpt-4-0613")
        first = gateway.ask(request)
        second = gateway.ask(request)
        assert not first.complement_cached
        assert second.complement_cached
        assert first.response == second.response
        assert gateway.cache_hit_rate > 0.0

    def test_stats_accumulate(self, gateway):
        gateway.ask_text("question one about gardens, please explain it in detail.", "gpt-4-0613")
        gateway.ask_text("question two about trains. walk me through it.", "gpt-3.5-turbo-1106")
        stats = gateway.stats
        assert stats.requests == 2
        assert stats.per_model == {"gpt-4-0613": 1, "gpt-3.5-turbo-1106": 1}
        assert stats.prompt_tokens > 0
        assert stats.completion_tokens > 0

    def test_augment_flag_off(self, gateway):
        response = gateway.ask(
            ServeRequest(
                prompt="how do i bake bread? please explain it in detail.",
                model="gpt-4-0613",
                augment=False,
            )
        )
        assert response.complement == ""
        assert not response.augmented

    def test_clients_created_lazily(self, gateway):
        assert gateway.registered_models == []
        gateway.ask_text("first request about boats, be concise.", "qwen2-72b-chat")
        assert gateway.registered_models == ["qwen2-72b-chat"]

    def test_augmentation_rate(self, gateway):
        gateway.ask(
            ServeRequest(prompt="how do i fix my code? it fails under load.", model="gpt-4-0613", augment=False)
        )
        assert gateway.stats.augmentation_rate == 0.0
