"""Tests for the iterative-PAS extension."""

import numpy as np
import pytest

from repro.core.iterative import IterativePas
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response


@pytest.fixture(scope="module")
def iterative(trained_pas):
    return IterativePas(pas=trained_pas, max_rounds=2)


class TestIterativePas:
    def test_invalid_rounds(self, trained_pas):
        with pytest.raises(ValueError):
            IterativePas(pas=trained_pas, max_rounds=0)

    def test_single_round_equals_plain_pas(self, trained_pas, factory):
        one_shot = IterativePas(pas=trained_pas, max_rounds=1)
        engine = SimulatedLLM("gpt-4-0613")
        prompt = factory.make_prompt()
        trace = one_shot.ask(engine, prompt.text)
        assert trace.rounds == 1
        plain = engine.respond(
            prompt.text, supplement=trained_pas.augment(prompt.text) or None
        )
        assert trace.final_response == plain

    def test_trace_shapes(self, iterative, factory):
        engine = SimulatedLLM("gpt-3.5-turbo-1106")
        prompt = factory.make_prompt(cue_rate=1.0)
        trace = iterative.ask(engine, prompt.text)
        assert 1 <= trace.rounds <= 2
        assert len(trace.responses) == trace.rounds
        assert trace.final_response in trace.responses

    def test_second_round_fires_on_visible_gap(self, trained_pas):
        engine = SimulatedLLM("gpt-3.5-turbo-1106")  # misses many cues
        iterative = IterativePas(pas=trained_pas, max_rounds=3)
        factory = PromptFactory(rng=np.random.default_rng(91))
        fired = 0
        for _ in range(20):
            prompt = factory.make_prompt(cue_rate=1.0)
            trace = iterative.ask(engine, prompt.text)
            fired += trace.rounds > 1
        assert fired > 5  # a weak target leaves plenty of visible gaps

    def test_iteration_never_hurts_much_and_helps_on_average(self, trained_pas):
        target = SimulatedLLM("gpt-3.5-turbo-1106")
        one_shot = IterativePas(pas=trained_pas, max_rounds=1)
        two_round = IterativePas(pas=trained_pas, max_rounds=2)
        factory = PromptFactory(rng=np.random.default_rng(92))
        deltas = []
        for _ in range(40):
            prompt = factory.make_prompt(cue_rate=1.0)
            base = assess_response(prompt, one_shot.ask(target, prompt.text).final_response)
            improved = assess_response(prompt, two_round.ask(target, prompt.text).final_response)
            deltas.append(improved.score - base.score)
        assert float(np.mean(deltas)) > 0.0

    def test_deterministic(self, iterative, factory):
        engine = SimulatedLLM("gpt-4-0613")
        prompt = factory.make_prompt()
        a = iterative.ask(engine, prompt.text)
        b = iterative.ask(engine, prompt.text)
        assert a == b
