"""Parity, placement, tenancy, and failover tests for the Router (ISSUE 8).

The headline contract: a 1-replica consistent-hash router with no tenant
policies, no pools, and replica-scoped caches is **invisible** — the
engine driving it is bit-identical to the single-gateway engine of PR 7,
responses, stats, event/trace exports, and metrics snapshots included,
clean and under injected faults alike.  Everything the router *adds*
(placement policies, quotas/rate limits, weighted pool failover) is a
pure function of seeds and arrival ticks, so it is pinned deterministic
and chaos-offset-invariant here.

``PAS_CHAOS_SEED`` offsets every fault seed, as in the engine suite.
"""

import os
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.obs import Observability
from repro.serve import (
    EngineConfig,
    FaultPlan,
    GatewayConfig,
    ModelPool,
    OutageWindow,
    PasGateway,
    Router,
    RouterConfig,
    ServingConfig,
    ServingEngine,
    TenantPolicy,
    TenantProfile,
    TimedRequest,
    TrafficConfig,
    TrafficGenerator,
)
from repro.serve.types import ServeRequest

CHAOS_OFFSET = int(os.environ.get("PAS_CHAOS_SEED", "0"))
CHAOS_SEEDS = tuple(CHAOS_OFFSET + base for base in (0, 1))

POOL = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
    "how do i write a binary search? please explain it in detail.",
    "why is my sourdough dense? walk me through it.",
]


def _trace(n=120, seed=0, process="poisson", mean_gap=2.0, **kwargs):
    config = TrafficConfig(
        n_requests=n, seed=seed, process=process, mean_gap_ticks=mean_gap, **kwargs
    )
    return TrafficGenerator(POOL, config).trace()


def _serving_config(router=None, engine=None, **gateway_kwargs):
    return ServingConfig(
        router=router or RouterConfig(),
        gateway=GatewayConfig(seed=5, **gateway_kwargs),
        engine=engine or EngineConfig(max_inflight=4),
    )


def _timed(tick, prompt, model="gpt-4-0613", tenant="default", **kwargs):
    rid = kwargs.pop("request_id", None)
    return TimedRequest(
        tick=tick,
        request=ServeRequest(prompt=prompt, model=model, tenant=tenant, request_id=rid),
        tenant=tenant,
        **kwargs,
    )


class TestTrivialParity:
    """1 replica + hash + no tenants/pools == the bare single-gateway engine."""

    def _run(self, trained_pas, tmp_path, tag, *, routed, fault_plan=None):
        obs = Observability.enabled(trace_capacity=4096, event_capacity=65536)
        config = _serving_config(fault_plan=fault_plan, max_retries=2)
        if routed:
            target = Router(trained_pas, config, obs)
        else:
            target = PasGateway(trained_pas, config=config.gateway, obs=obs)
        result = ServingEngine(target, config).run(
            _trace(n=100, seed=3, process="diurnal")
        )
        events = tmp_path / f"events-{tag}.jsonl"
        spans = tmp_path / f"spans-{tag}.jsonl"
        obs.events.export_jsonl(events)
        obs.tracer.store.export_jsonl(spans)
        return result, events.read_bytes(), spans.read_bytes(), obs.metrics.snapshot()

    def test_clean_trace_byte_identical(self, trained_pas, tmp_path):
        bare, events_a, spans_a, metrics_a = self._run(
            trained_pas, tmp_path, "bare", routed=False
        )
        routed, events_b, spans_b, metrics_b = self._run(
            trained_pas, tmp_path, "routed", routed=True
        )
        assert routed.responses == bare.responses
        assert routed.stats.as_dict() == bare.stats.as_dict()
        assert events_a == events_b
        assert spans_a == spans_b
        assert metrics_a == metrics_b

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_trace_byte_identical(self, trained_pas, tmp_path, seed):
        plan = FaultPlan(
            seed=seed, completion_failure_rate=0.2, augment_failure_rate=0.1
        )
        bare, events_a, spans_a, metrics_a = self._run(
            trained_pas, tmp_path, f"bare-{seed}", routed=False, fault_plan=plan
        )
        routed, events_b, spans_b, metrics_b = self._run(
            trained_pas, tmp_path, f"routed-{seed}", routed=True, fault_plan=plan
        )
        assert routed.responses == bare.responses
        assert routed.stats.as_dict() == bare.stats.as_dict()
        assert events_a == events_b
        assert spans_a == spans_b
        assert metrics_a == metrics_b

    def test_engine_adopts_bare_gateway_as_trivial_router(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        engine = ServingEngine(gateway)
        assert engine.router.trivial
        assert engine.router.n_replicas == 1
        assert engine.gateway is gateway

    def test_trivial_router_registers_no_metrics(self, trained_pas):
        obs = Observability.enabled()
        router = Router(trained_pas, _serving_config(), obs)
        assert router.trivial
        assert "pas_router_routed_total" not in obs.metrics
        fleet = Router(
            trained_pas, _serving_config(router=RouterConfig(n_replicas=2)), obs
        )
        assert not fleet.trivial
        assert "pas_router_routed_total" in obs.metrics


class TestPlacement:
    def test_ring_is_pure_and_seed_salted(self):
        assert Router._build_ring(0, 4, 64) == Router._build_ring(0, 4, 64)
        assert Router._build_ring(0, 4, 64) != Router._build_ring(1, 4, 64)
        # Growing the fleet keeps every old replica's points in place.
        small = set(Router._build_ring(0, 3, 64))
        grown = set(Router._build_ring(0, 4, 64))
        assert small < grown

    def test_hash_routing_is_sticky_per_prompt(self, trained_pas):
        router = Router(
            trained_pas, _serving_config(router=RouterConfig(n_replicas=4))
        )
        placements = {}
        for tick in range(1, 4):
            for prompt in POOL:
                timed = _timed(tick, prompt)
                replica = router.route(timed.request, timed)
                assert placements.setdefault(prompt, replica) == replica
        assert len(set(placements.values())) > 1  # keys actually spread

    def test_tenant_hash_key_isolates_tenants(self, trained_pas):
        router = Router(
            trained_pas,
            _serving_config(
                router=RouterConfig(n_replicas=4, hash_key="tenant")
            ),
        )
        for tenant in ("free", "paid", "trial"):
            seen = {
                router.route(t.request, t)
                for t in (_timed(i, POOL[i % 8], tenant=tenant) for i in range(1, 9))
            }
            assert len(seen) == 1  # all of a tenant's traffic on one replica

    def test_least_loaded_balances_live_load(self, trained_pas):
        router = Router(
            trained_pas,
            _serving_config(
                router=RouterConfig(n_replicas=3, policy="least_loaded")
            ),
        )
        timed = [_timed(i, POOL[0]) for i in range(1, 7)]
        replicas = [router.route(t.request, t) for t in timed]
        assert replicas == [0, 1, 2, 0, 1, 2]  # round-robin while nothing frees
        router.release(1)
        assert router.route(timed[0].request, timed[0]) == 1  # argmin follows load
        assert router.stats.routed_total == 7

    def test_hash_affinity_beats_balance_on_cache_hits(self, trained_pas):
        trace = _trace(n=150, seed=9, zipf_exponent=1.2, mean_gap=1.0)

        def hit_rate(policy):
            config = _serving_config(
                router=RouterConfig(n_replicas=4, policy=policy),
                engine=EngineConfig(max_inflight=16),
            )
            router = Router(trained_pas, config)
            ServingEngine(router, config).run(trace)
            return router.cache_hit_rate

        assert hit_rate("hash") >= hit_rate("least_loaded")

    def test_fleet_run_is_deterministic(self, trained_pas):
        trace = _trace(n=100, seed=4, process="bursty")
        config = _serving_config(
            router=RouterConfig(n_replicas=4, policy="least_loaded")
        )

        def run():
            router = Router(trained_pas, config)
            result = ServingEngine(router, config).run(trace)
            return result.responses, result.stats.as_dict(), router.stats.as_dict()

        assert run() == run()


class TestCacheScope:
    def test_shared_scope_threads_one_cache_through_the_fleet(self, trained_pas):
        router = Router(
            trained_pas,
            _serving_config(
                router=RouterConfig(n_replicas=4, cache_scope="shared")
            ),
        )
        caches = {id(g._complement_cache) for g in router.replicas}
        embeds = {id(g._embed_cache) for g in router.replicas}
        assert len(caches) == 1 and len(embeds) == 1

    def test_replica_scope_keeps_caches_private(self, trained_pas):
        router = Router(
            trained_pas, _serving_config(router=RouterConfig(n_replicas=4))
        )
        assert len({id(g._complement_cache) for g in router.replicas}) == 4

    def test_scopes_serve_identical_responses(self, trained_pas):
        trace = _trace(n=100, seed=11, zipf_exponent=1.2)
        results = {}
        for scope in ("replica", "shared"):
            config = _serving_config(
                router=RouterConfig(
                    n_replicas=4, policy="least_loaded", cache_scope=scope
                )
            )
            router = Router(trained_pas, config)
            results[scope] = (
                ServingEngine(router, config).run(trace).responses,
                router.cache_hit_rate,
            )

        # Identical content either way: only the *cached* marker may move
        # (a repeat scattered to a cold replica hits the shared cache).
        def normalized(responses):
            return [replace(r, complement_cached=False) for r in responses]

        assert normalized(results["replica"][0]) == normalized(results["shared"][0])
        # Balance routing scatters repeats; the shared cache still catches
        # them while private caches miss.
        assert results["shared"][1] > results["replica"][1]


class TestTenancy:
    TENANTS = (
        TenantProfile("free", weight=3.0),
        TenantProfile("paid", weight=1.0, priority=2),
    )

    def _run(self, trained_pas, router_cfg, *, fault_plan=None, n=150):
        config = ServingConfig(
            router=router_cfg,
            gateway=GatewayConfig(seed=5, fault_plan=fault_plan, max_retries=2),
            engine=EngineConfig(max_inflight=4),
            traffic=TrafficConfig(
                n_requests=n, seed=13, mean_gap_ticks=1.0, tenants=self.TENANTS
            ),
        )
        config.validate()
        trace = TrafficGenerator(POOL, config.traffic).trace()
        router = Router(trained_pas, config)
        return ServingEngine(router, config).run(trace), router, trace

    def test_quota_sheds_are_failed_responses_with_zero_attempts(self, trained_pas):
        policy = TenantPolicy("free", quota=20, quota_window_ticks=64)
        result, router, trace = self._run(
            trained_pas, RouterConfig(tenants=(policy,))
        )
        assert router.stats.sheds.get("quota", 0) > 0
        assert result.stats.shed["quota"] == router.stats.sheds["quota"]
        shed = [
            r
            for r in result.responses
            if r.failed and r.error and "QuotaExceededError" in r.error
        ]
        assert len(shed) == result.stats.shed["quota"]
        assert all(r.attempts == 0 for r in shed)
        # Only the quota'd tenant was shed.
        free_ids = {t.request.request_id for t in trace if t.tenant == "free"}
        assert {r.request_id for r in shed} <= free_ids
        assert result.stats.arrived == result.stats.served + result.stats.failed

    def test_rate_limit_spends_burst_then_sheds(self, trained_pas):
        policy = TenantPolicy("free", rate_tokens_per_tick=0.25, burst=4)
        result, router, trace = self._run(
            trained_pas, RouterConfig(tenants=(policy,))
        )
        assert router.stats.sheds.get("ratelimit", 0) > 0
        shed = [
            r
            for r in result.responses
            if r.failed and r.error and "RateLimitedError" in r.error
        ]
        assert len(shed) == result.stats.shed["ratelimit"]
        # The first burst of "free" arrivals is always admitted.
        first_free = [t for t in trace if t.tenant == "free"][: policy.burst]
        shed_ids = {r.request_id for r in shed}
        assert not shed_ids & {t.request.request_id for t in first_free}

    @pytest.mark.parametrize("limiter", ["quota", "ratelimit"])
    def test_admission_is_chaos_offset_invariant(self, trained_pas, limiter):
        # Admission keys on arrival ticks, which no fault plan perturbs:
        # the exact set of shed request ids must not move across fault
        # seeds, even though completions fail differently.
        if limiter == "quota":
            policy = TenantPolicy("free", quota=20, quota_window_ticks=64)
        else:
            policy = TenantPolicy("free", rate_tokens_per_tick=0.25, burst=4)
        marker = "QuotaExceededError" if limiter == "quota" else "RateLimitedError"
        shed_sets = []
        for seed in CHAOS_SEEDS:
            plan = FaultPlan(seed=seed, completion_failure_rate=0.2)
            result, _, _ = self._run(
                trained_pas, RouterConfig(tenants=(policy,)), fault_plan=plan
            )
            shed_sets.append(
                sorted(
                    r.request_id
                    for r in result.responses
                    if r.error and marker in r.error
                )
            )
        assert shed_sets[0] == shed_sets[1]
        assert shed_sets[0]  # the limiter actually fired

    def test_priority_override_outranks_trace_priority(self, trained_pas):
        # Two same-tick arrivals: the trace says "low" outranks "vip", the
        # tenant policy flips it, so "vip" dispatches first and waits less.
        trace = [
            _timed(1, POOL[0], tenant="low", request_id="low", priority=1),
            _timed(1, POOL[1], tenant="vip", request_id="vip", priority=0),
        ]
        config = ServingConfig(
            router=RouterConfig(tenants=(TenantPolicy("vip", priority=9),)),
            gateway=GatewayConfig(seed=5),
            engine=EngineConfig(max_inflight=1, max_batch=2),
            traffic=TrafficConfig(
                tenants=(TenantProfile("low"), TenantProfile("vip"))
            ),
        )
        config.validate()
        obs = Observability.enabled()
        router = Router(trained_pas, config, obs)
        result = ServingEngine(router, config).run(trace)
        assert result.stats.served == 2
        assert [r.request_id for r in result.responses] == ["low", "vip"]
        # Traces land in dispatch order: the override dispatched vip first.
        serves = obs.tracer.store.by_root("router.route")
        assert len(serves) == 2
        dispatched = [t.first("gateway.ask").attrs["request_id"] for t in serves]
        assert dispatched == ["vip", "low"]
        # The router span roots each serve tree and carries the tenant.
        assert [t.root.attrs["tenant"] for t in serves] == ["vip", "low"]


class TestModelPools:
    MIX = ModelPool(
        "mix", models=(("gpt-4-0613", 3.0), ("gpt-3.5-turbo-1106", 1.0))
    )

    def _pool_trace(self, n=120):
        return [
            _timed(i, POOL[i % len(POOL)], model="mix", request_id=str(i))
            for i in range(1, n + 1)
        ]

    def test_weighted_draw_mixes_members(self, trained_pas):
        config = _serving_config(router=RouterConfig(pools=(self.MIX,)))
        router = Router(trained_pas, config)
        result = ServingEngine(router, config).run(self._pool_trace())
        served = [r for r in result.responses if r.ok or r.degraded]
        models = {r.model for r in served}
        assert models == {"gpt-4-0613", "gpt-3.5-turbo-1106"}
        heavy = sum(1 for r in served if r.model == "gpt-4-0613")
        assert heavy > len(served) / 2  # the 3:1 weight shows

    def test_draw_is_deterministic(self, trained_pas):
        config = _serving_config(router=RouterConfig(pools=(self.MIX,)))

        def models():
            router = Router(trained_pas, config)
            result = ServingEngine(router, config).run(self._pool_trace())
            return [r.model for r in result.responses]

        assert models() == models()

    def test_failover_drops_open_member_from_the_draw(self, trained_pas):
        # An outage hard-fails gpt-4-0613 until its breaker opens; from
        # then on every draw excludes it (a counted failover) and the pool
        # serves exclusively from the healthy member.
        plan = FaultPlan(
            seed=CHAOS_OFFSET, outages=(OutageWindow("gpt-4-0613", 0, 100000),)
        )
        config = _serving_config(
            router=RouterConfig(pools=(self.MIX,)),
            fault_plan=plan,
            max_retries=1,
            breaker_threshold=2,
            breaker_recovery_ticks=10000,
        )
        router = Router(trained_pas, config)
        result = ServingEngine(router, config).run(self._pool_trace())
        assert router.stats.failovers.get("mix", 0) > 0
        gateway = router.replicas[0]
        assert gateway.stats.breaker_state["gpt-4-0613"] == "open"
        # After the breaker opened, nothing else was sent to the dead model.
        post_failover = [r for r in result.responses if r.ok]
        assert post_failover
        assert all(r.model == "gpt-3.5-turbo-1106" for r in post_failover)

    def test_failover_is_deterministic(self, trained_pas):
        plan = FaultPlan(
            seed=CHAOS_OFFSET, outages=(OutageWindow("gpt-4-0613", 0, 100000),)
        )
        config = _serving_config(
            router=RouterConfig(pools=(self.MIX,)),
            fault_plan=plan,
            max_retries=1,
            breaker_threshold=2,
            breaker_recovery_ticks=10000,
        )

        def run():
            router = Router(trained_pas, config)
            result = ServingEngine(router, config).run(self._pool_trace())
            return result.responses, router.stats.as_dict()

        assert run() == run()

    def test_all_open_pool_sheds_with_reject_policy(self, trained_pas):
        solo = ModelPool("solo", models=(("gpt-4-0613", 1.0),))
        plan = FaultPlan(
            seed=CHAOS_OFFSET, outages=(OutageWindow("gpt-4-0613", 0, 100000),)
        )
        config = _serving_config(
            router=RouterConfig(pools=(solo,)),
            fault_plan=plan,
            max_retries=1,
            breaker_threshold=2,
            breaker_recovery_ticks=10000,
        )
        trace = [
            _timed(i, POOL[i % len(POOL)], model="solo", request_id=str(i))
            for i in range(1, 41)
        ]
        router = Router(trained_pas, config)
        result = ServingEngine(router, config).run(trace)
        assert result.stats.shed.get("pool", 0) > 0
        shed = [
            r
            for r in result.responses
            if r.error and "PoolExhaustedError" in r.error
        ]
        assert len(shed) == result.stats.shed["pool"]
        assert all(r.attempts == 0 for r in shed)
        assert result.stats.arrived == result.stats.served + result.stats.failed

    def test_all_open_pool_degrades_to_a_forced_draw(self, trained_pas):
        solo = ModelPool("solo", models=(("gpt-4-0613", 1.0),))
        plan = FaultPlan(
            seed=CHAOS_OFFSET, outages=(OutageWindow("gpt-4-0613", 0, 100000),)
        )
        config = _serving_config(
            router=RouterConfig(pools=(solo,)),
            engine=EngineConfig(max_inflight=4, shed_policy="degrade"),
            fault_plan=plan,
            max_retries=1,
            breaker_threshold=2,
            breaker_recovery_ticks=10000,
        )
        trace = [
            _timed(i, POOL[i % len(POOL)], model="solo", request_id=str(i))
            for i in range(1, 41)
        ]
        router = Router(trained_pas, config)
        result = ServingEngine(router, config).run(trace)
        # Degrade never sheds on "pool": the forced draw reaches the
        # gateway, whose own breaker fast-fails it instead.
        assert result.stats.shed.get("pool", 0) == 0
        assert any(
            r.error and "CircuitOpenError" in r.error for r in result.responses
        )
        assert result.stats.arrived == result.stats.served + result.stats.failed


class TestConfigAndAdoption:
    def test_router_config_validation(self):
        with pytest.raises(ConfigError):
            RouterConfig(n_replicas=0)
        with pytest.raises(ConfigError):
            RouterConfig(policy="psychic")
        with pytest.raises(ConfigError):
            RouterConfig(hash_key="vibes")
        with pytest.raises(ConfigError):
            RouterConfig(vnodes=0)
        with pytest.raises(ConfigError):
            RouterConfig(cache_scope="global")
        with pytest.raises(ConfigError):
            RouterConfig(tenants=(TenantPolicy("a"), TenantPolicy("a")))
        with pytest.raises(ConfigError):
            RouterConfig(
                pools=(
                    ModelPool("a", (("gpt-4-0613", 1.0),)),
                    ModelPool("a", (("gpt-3.5-turbo-1106", 1.0),)),
                )
            )
        with pytest.raises(ConfigError):
            RouterConfig(
                pools=(
                    ModelPool("a", (("gpt-4-0613", 1.0),)),
                    ModelPool("b", (("a", 1.0),)),
                )
            )

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            TenantPolicy("")
        with pytest.raises(ConfigError):
            TenantPolicy("t", quota=0)
        with pytest.raises(ConfigError):
            TenantPolicy("t", rate_tokens_per_tick=0.0)
        with pytest.raises(ConfigError):
            TenantPolicy("t", burst=0)
        with pytest.raises(ConfigError):
            ModelPool("p", models=())
        with pytest.raises(ConfigError):
            ModelPool("p", models=(("m", 0.0),))
        with pytest.raises(ConfigError):
            ModelPool("p", models=(("m", 1.0), ("m", 2.0)))

    def test_adoption_rules(self, trained_pas):
        gateways = [
            PasGateway(trained_pas, config=GatewayConfig(seed=5)) for _ in range(3)
        ]
        router = Router(replicas=gateways)
        assert router.n_replicas == 3  # n_replicas=1 default means "infer"
        assert router.gateway_config is gateways[0].config
        with pytest.raises(ConfigError):
            Router(config=RouterConfig(n_replicas=2), replicas=gateways)
        with pytest.raises(TypeError):
            Router(trained_pas, replicas=gateways)
        with pytest.raises(ConfigError):
            Router(replicas=[])
        with pytest.raises(TypeError):
            Router()
        with pytest.raises(TypeError):
            Router(trained_pas, config="yaml, obviously")
