"""Tests for the PAS model itself."""

import numpy as np
import pytest

from repro.core.pas import PAS_PAPER_DATA_SIZE, PasModel
from repro.errors import NotFittedError
from repro.world.aspects import parse_directives
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response


class TestTraining:
    def test_untrained_augment_raises(self):
        with pytest.raises(NotFittedError):
            PasModel().augment("anything")

    def test_train_records_size(self, trained_pas, tiny_dataset):
        assert trained_pas.is_trained
        assert trained_pas.n_training_pairs == len(tiny_dataset)

    def test_base_model_name(self, trained_pas):
        assert trained_pas.base_model_name == "qwen2-7b-chat"

    def test_paper_data_size_constant(self):
        assert PAS_PAPER_DATA_SIZE == 9000


class TestAugment:
    def test_complement_is_directive_text(self, trained_pas, factory):
        hits = 0
        for _ in range(20):
            prompt = factory.make_prompt(cue_rate=1.0)
            complement = trained_pas.augment(prompt.text)
            if complement:
                assert parse_directives(complement)
                hits += 1
        assert hits >= 15

    def test_complement_never_contains_prompt(self, trained_pas, factory):
        prompt = factory.make_prompt()
        complement = trained_pas.augment(prompt.text)
        assert prompt.text not in complement

    def test_deterministic(self, trained_pas, factory):
        prompt = factory.make_prompt()
        assert trained_pas.augment(prompt.text) == trained_pas.augment(prompt.text)

    def test_enhance_keeps_original_prompt(self, trained_pas, factory):
        prompt = factory.make_prompt()
        enhanced = trained_pas.enhance(prompt.text)
        assert enhanced.startswith(prompt.text)

    def test_enhance_without_prediction_is_identity(self, trained_pas):
        gibberish = "zz qq ww ee rr"
        if not trained_pas.augment(gibberish):
            assert trained_pas.enhance(gibberish) == gibberish


class TestEffectiveness:
    def test_pas_improves_mean_oracle_quality(self, trained_pas):
        from repro.llm.engine import SimulatedLLM

        engine = SimulatedLLM("gpt-4-0613")
        factory = PromptFactory(rng=np.random.default_rng(77))
        prompts = [factory.make_prompt() for _ in range(60)]
        plain = [assess_response(p, engine.respond(p.text)).score for p in prompts]
        augmented = [
            assess_response(
                p, engine.respond(p.text, supplement=trained_pas.augment(p.text) or None)
            ).score
            for p in prompts
        ]
        assert np.mean(augmented) > np.mean(plain) + 0.2
