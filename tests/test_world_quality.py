"""Tests for the quality oracle."""

import pytest

from repro.world.aspects import ASPECTS
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import FLAW_MARKERS, assess_response, count_flaws, intent_overlap


def _prompt(needs, topic="binary search tree", uid=1):
    return SyntheticPrompt(
        uid=uid,
        text=f"How do I implement a {topic}?",
        category="coding",
        needs=frozenset(needs),
        topic=topic,
    )


def _section(aspect):
    from repro.llm.generation import RESPONSE_SECTIONS

    return RESPONSE_SECTIONS[aspect][0]


class TestCountFlaws:
    def test_zero_for_clean_text(self):
        assert count_flaws("a perfectly reasonable answer") == 0

    @pytest.mark.parametrize("marker", FLAW_MARKERS)
    def test_each_marker_counts(self, marker):
        assert count_flaws(f"claim: {marker} indeed") == 1

    def test_multiple_flaws_sum(self):
        text = f"{FLAW_MARKERS[0]} and also {FLAW_MARKERS[1]}."
        assert count_flaws(text) == 2


class TestIntentOverlap:
    def test_full_overlap(self):
        p = _prompt({"depth"}, topic="binary search tree")
        assert intent_overlap(p, "about the binary search tree here") == 1.0

    def test_no_overlap(self):
        p = _prompt({"depth"}, topic="binary search tree")
        assert intent_overlap(p, "completely unrelated words") == 0.0

    def test_empty_topic_counts_as_aligned(self):
        p = SyntheticPrompt(uid=2, text="hi", category="chitchat", needs=frozenset(), topic="")
        assert intent_overlap(p, "anything") == 1.0


class TestAssessResponse:
    def test_full_coverage_scores_high(self):
        p = _prompt({"step_by_step", "examples"})
        response = (
            "About the binary search tree. "
            + _section("step_by_step")
            + " "
            + _section("examples")
        )
        qa = assess_response(p, response)
        assert qa.coverage == 1.0
        assert qa.score > 3.5
        assert qa.missed_needs == frozenset()

    def test_missing_needs_lower_score(self):
        p = _prompt({"step_by_step", "examples"})
        full = "binary search tree. " + _section("step_by_step") + " " + _section("examples")
        partial = "binary search tree. " + _section("step_by_step")
        assert assess_response(p, full).score > assess_response(p, partial).score

    def test_coverage_weighted_by_aspect_weight(self):
        p = _prompt({"logic_trap", "brevity"})
        only_trap = "binary search tree. " + _section("logic_trap")
        only_brevity = "binary search tree. " + _section("brevity")
        cov_trap = assess_response(p, only_trap).coverage
        cov_brevity = assess_response(p, only_brevity).coverage
        assert cov_trap > cov_brevity  # logic_trap weighs more
        total = ASPECTS["logic_trap"].weight + ASPECTS["brevity"].weight
        assert cov_trap == pytest.approx(ASPECTS["logic_trap"].weight / total)

    def test_unhandled_trap_penalised(self):
        p = _prompt({"logic_trap"})
        no_trap_handling = "binary search tree. a generic answer without care."
        qa = assess_response(p, no_trap_handling)
        assert qa.flaw_count >= 2  # the trap surcharge

    def test_handled_trap_not_penalised(self):
        p = _prompt({"logic_trap"})
        qa = assess_response(p, "binary search tree. " + _section("logic_trap"))
        assert qa.flaw_count == 0
        assert qa.addressed_trap

    def test_spurious_sections_penalised(self):
        p = _prompt({"step_by_step"})
        clean = "binary search tree. " + _section("step_by_step")
        spurious = clean + " " + _section("format") + " " + _section("style")
        assert assess_response(p, spurious).score < assess_response(p, clean).score
        assert assess_response(p, spurious).spurious_aspects == {"format", "style"}

    def test_flaws_penalised(self):
        p = _prompt({"step_by_step"})
        clean = "binary search tree. " + _section("step_by_step")
        flawed = clean + f" note that {FLAW_MARKERS[0]} here."
        assert assess_response(p, flawed).score < assess_response(p, clean).score

    def test_off_topic_penalised(self):
        p = _prompt({"step_by_step"})
        on_topic = "binary search tree. " + _section("step_by_step")
        off_topic = "something else entirely. " + _section("step_by_step")
        assert assess_response(p, off_topic).score < assess_response(p, on_topic).score

    def test_score_bounded(self):
        p = _prompt({"logic_trap", "constraints", "verification"})
        terrible = " ".join(FLAW_MARKERS) + " nothing relevant."
        qa = assess_response(p, terrible)
        assert 0.0 <= qa.score <= 5.0

    def test_no_needs_means_full_coverage(self):
        p = SyntheticPrompt(uid=3, text="hello", category="chitchat", needs=frozenset(), topic="")
        assert assess_response(p, "hello there").coverage == 1.0

    def test_token_count_recorded(self):
        p = _prompt({"depth"})
        qa = assess_response(p, "one two three")
        assert qa.response_tokens == 3
