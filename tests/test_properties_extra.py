"""Additional property-based tests for the newer substrate layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.cluster.kmeans import kmeans
from repro.serve.cache import LruCache
from repro.text.bpe import BpeTokenizer

_WORDS = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=8), min_size=1, max_size=12
)


class TestBpeProperties:
    @given(_WORDS)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_words(self, words):
        bpe = BpeTokenizer(n_merges=30).fit(["aa ab ba bb abab baba"])
        text = " ".join(words)
        assert bpe.decode(bpe.encode(text)) == text

    @given(_WORDS)
    @settings(max_examples=40, deadline=None)
    def test_token_count_bounded_by_characters(self, words):
        bpe = BpeTokenizer(n_merges=10).fit(["abc def ghi"])
        text = " ".join(words)
        n_chars = sum(len(w) for w in words)
        # One EOW symbol per word; merges only reduce counts.
        assert bpe.count(text) <= n_chars + len(words)


class TestNaiveBayesProperties:
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=4, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_posteriors_produce_valid_distribution(self, n_classes, n_rows):
        rng = np.random.default_rng(n_classes * 100 + n_rows)
        features = rng.integers(0, 5, size=(n_rows, 6)).astype(float)
        labels = [f"c{rng.integers(n_classes)}" for _ in range(n_rows)]
        nb = MultinomialNaiveBayes().fit(features, labels)
        log_post = nb.log_posterior(features)
        # softmax over the returned scores is a proper distribution
        post = np.exp(log_post - log_post.max(axis=1, keepdims=True))
        post /= post.sum(axis=1, keepdims=True)
        assert np.all(post >= 0)
        assert np.allclose(post.sum(axis=1), 1.0)

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_prediction_invariant_to_feature_scaling(self, scale):
        rng = np.random.default_rng(scale)
        features = rng.integers(0, 4, size=(12, 5)).astype(float)
        labels = ["a" if i < 6 else "b" for i in range(12)]
        nb = MultinomialNaiveBayes().fit(features, labels)
        query = rng.integers(0, 4, size=5).astype(float)
        assert nb.predict_one(query) == nb.predict_one(query * scale)


class TestKMeansProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=6, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_assignments_in_range_and_inertia_non_negative(self, k, n):
        rng = np.random.default_rng(k * 1000 + n)
        points = rng.normal(size=(n, 3))
        result = kmeans(points, k, seed=1)
        assert result.inertia >= 0.0
        assert result.assignments.shape == (n,)
        assert set(result.assignments.tolist()) <= set(range(result.k))

    @given(st.integers(min_value=5, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_k_equals_n_gives_zero_inertia(self, n):
        rng = np.random.default_rng(n)
        points = rng.normal(size=(n, 2))
        result = kmeans(points, n, seed=2)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)


class TestLruCacheModel:
    @given(
        st.lists(
            st.tuples(st.sampled_from("get put".split()), st.integers(0, 6)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_model(self, operations):
        """Model-based test: the cache agrees with an ordered-dict oracle."""
        capacity = 3
        cache = LruCache(capacity=capacity)
        from collections import OrderedDict

        model: OrderedDict[int, int] = OrderedDict()
        for op, key in operations:
            if op == "put":
                if key in model:
                    model.move_to_end(key)
                model[key] = key * 10
                if len(model) > capacity:
                    model.popitem(last=False)
                cache.put(key, key * 10)
            else:
                expected = model.get(key)
                if expected is not None:
                    model.move_to_end(key)
                assert cache.get(key) == expected
        assert len(cache) == len(model)
