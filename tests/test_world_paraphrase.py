"""Tests for the paraphraser."""

import numpy as np
import pytest

from repro.world.aspects import ASPECTS, find_cues
from repro.world.paraphrase import SYNONYMS, paraphrase, surface_distance


@pytest.fixture()
def prng():
    return np.random.default_rng(77)


class TestSynonymTable:
    def test_no_synonym_key_appears_in_cue_phrases(self):
        """The documented invariant: paraphrasing never destroys a cue."""
        cue_words = {
            word
            for aspect in ASPECTS.values()
            for cue in aspect.cue_phrases
            for word in cue.split()
        }
        assert not (set(SYNONYMS) & cue_words)

    def test_values_nonempty(self):
        assert all(options for options in SYNONYMS.values())


class TestParaphrase:
    def test_deterministic_given_rng(self):
        a = paraphrase("implement the function quickly", np.random.default_rng(1))
        b = paraphrase("implement the function quickly", np.random.default_rng(1))
        assert a == b

    def test_synonyms_applied_at_full_rate(self, prng):
        out = paraphrase("implement the function", prng, synonym_rate=1.0, decorate=False)
        assert "implement" not in out
        assert "function" not in out

    def test_zero_rate_no_substitution(self, prng):
        out = paraphrase("implement the function", prng, synonym_rate=0.0, decorate=False)
        assert out == "implement the function"

    def test_case_preserved_on_substitution(self, prng):
        out = paraphrase("Write a letter", prng, synonym_rate=1.0, decorate=False)
        first_word = out.split()[0]
        assert first_word[0].isupper()

    def test_punctuation_preserved(self, prng):
        out = paraphrase("fix it quickly.", prng, synonym_rate=1.0, decorate=False)
        assert out.endswith(".")

    def test_invalid_rate(self, prng):
        with pytest.raises(ValueError):
            paraphrase("x", prng, synonym_rate=1.5)

    def test_cues_survive(self, prng):
        text = "How do I implement a parser? It sounds like a tricky question."
        before = set(find_cues(text))
        for _ in range(10):
            after = set(find_cues(paraphrase(text, prng, synonym_rate=1.0)))
            assert before <= after


class TestSurfaceDistance:
    def test_identical(self):
        assert surface_distance("a b c", "a b c") == 0.0

    def test_disjoint(self):
        assert surface_distance("aaa bbb", "ccc ddd") == 1.0

    def test_paraphrase_moves_surface(self, prng):
        text = "implement the function quickly and fix the problem"
        out = paraphrase(text, prng, synonym_rate=1.0)
        assert surface_distance(text, out) > 0.0
