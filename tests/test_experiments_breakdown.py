"""Tests for the per-category breakdown analysis."""

import pytest

from repro.experiments import breakdown


@pytest.fixture(scope="module")
def result(quick_ctx):
    return breakdown.run(quick_ctx)


class TestBreakdown:
    def test_covers_suite_categories(self, result, quick_ctx):
        suite_categories = {p.category for p in quick_ctx.alpaca_eval.suite}
        assert {c.category for c in result.categories} == suite_categories

    def test_prompt_counts_sum_to_suite(self, result, quick_ctx):
        assert sum(c.n_prompts for c in result.categories) == len(
            quick_ctx.alpaca_eval.suite
        )

    def test_pas_ahead_in_majority(self, result):
        assert result.n_categories_ahead > len(result.categories) / 2

    def test_win_rates_in_range(self, result):
        for c in result.categories:
            assert 0.0 <= c.pas_win_rate <= 100.0

    def test_best_at_least_worst(self, result):
        assert result.best().pas_win_rate >= result.worst().pas_win_rate

    def test_render(self, result):
        text = breakdown.render(result)
        assert "Per-category PAS gains" in text
        assert "ahead in" in text

    def test_deterministic(self, quick_ctx, result):
        again = breakdown.run(quick_ctx)
        assert [c.pas_win_rate for c in again.categories] == [
            c.pas_win_rate for c in result.categories
        ]
