"""Tests for the disjoint-set structure."""

import pytest

from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        assert UnionFind(5).components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.components == 3

    def test_union_same_component_returns_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.components == 2

    def test_connected_transitivity(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_returns_canonical_root(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert uf.find(0) == uf.find(1)

    def test_groups_partition_everything(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = uf.groups()
        members = sorted(m for g in groups.values() for m in g)
        assert members == list(range(6))

    def test_groups_structure(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [[0, 3], [1], [2]]

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_zero_size(self):
        uf = UnionFind(0)
        assert uf.components == 0
        assert uf.groups() == {}

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_chain_of_unions(self):
        n = 100
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.components == 1
        assert uf.connected(0, n - 1)
