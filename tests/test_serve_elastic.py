"""Elastic fleets, hedged retries, and weighted-fair dispatch (ISSUE 10).

The pinned contracts:

* **~1/N remap** — :meth:`Router.add_replica` / :meth:`Router.drain_replica`
  move only the arriving/departing rid's share of the hash-key space;
  every other key keeps its placement.
* **Graceful drain** — a draining replica takes no new placements,
  finishes its in-flight work, and only then retires (clock ticks folded
  into the fleet clock, replica-scope caches discarded under
  ``pas_router_cache_evicted_total``).
* **Invisibility when off** — a never-firing hedge policy is
  byte-identical to no hedge policy, and a fleet drained to one replica
  serves byte-identically to the single-gateway engine, chaos included.
* **Determinism** — hedged runs, WFQ dispatch, and membership changes
  replay byte-identically at a fixed seed.

``PAS_CHAOS_SEED`` offsets every fault seed, as in the engine suite.
"""

import os

import pytest

from repro.errors import ConfigError
from repro.obs import Observability
from repro.serve import (
    EngineConfig,
    FairnessPolicy,
    FaultPlan,
    FleetPlan,
    GatewayConfig,
    HedgePolicy,
    PasGateway,
    Router,
    RouterConfig,
    ServingConfig,
    ServingEngine,
    TenantProfile,
    TimedRequest,
    TrafficConfig,
    TrafficGenerator,
)
from repro.serve.types import ServeRequest

CHAOS_OFFSET = int(os.environ.get("PAS_CHAOS_SEED", "0"))
CHAOS_SEEDS = tuple(CHAOS_OFFSET + base for base in (0, 1))

POOL = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
    "how do i write a binary search? please explain it in detail.",
    "why is my sourdough dense? walk me through it.",
]


def _trace(n=120, seed=0, process="poisson", mean_gap=2.0, **kwargs):
    config = TrafficConfig(
        n_requests=n, seed=seed, process=process, mean_gap_ticks=mean_gap, **kwargs
    )
    return TrafficGenerator(POOL, config).trace()


def _timed(tick, prompt, model="gpt-4-0613", tenant="default", **kwargs):
    rid = kwargs.pop("request_id", None)
    return TimedRequest(
        tick=tick,
        request=ServeRequest(prompt=prompt, model=model, tenant=tenant, request_id=rid),
        tenant=tenant,
        **kwargs,
    )


def _config(n_replicas, fleet=None, engine=None, **gateway_kwargs):
    return ServingConfig(
        router=RouterConfig(n_replicas=n_replicas, seed=7),
        gateway=GatewayConfig(seed=5, **gateway_kwargs),
        engine=engine or EngineConfig(max_inflight=4),
        fleet=fleet or FleetPlan(),
    )


def _placements(router, keys):
    """Map each key to its replica (balancing every assignment back)."""
    out = {}
    for key in keys:
        timed = _timed(1, key)
        rid = router.route(timed.request, timed)
        router.release(rid)
        out[key] = rid
    return out


KEYS = [f"synthetic prompt number {i}? show me how." for i in range(400)]


class TestElasticMembership:
    def test_add_remaps_only_one_share(self, trained_pas):
        router = Router(trained_pas, _config(3))
        before = _placements(router, KEYS)
        rid = router.add_replica()
        assert rid == 3
        after = _placements(router, KEYS)
        moved = [key for key in KEYS if before[key] != after[key]]
        # Every moved key lands on the newcomer — nothing else reshuffles.
        assert all(after[key] == rid for key in moved)
        # ~1/N of the key space (N = 4 after the add), vnode-smoothed.
        assert 0.10 < len(moved) / len(KEYS) < 0.45

    def test_drain_remaps_only_departed_share(self, trained_pas):
        router = Router(trained_pas, _config(4))
        before = _placements(router, KEYS)
        departed = 2
        assert router.drain_replica(departed)  # idle: retires immediately
        after = _placements(router, KEYS)
        for key in KEYS:
            if before[key] != departed:
                assert after[key] == before[key]
            else:
                assert after[key] != departed
        share = sum(1 for key in KEYS if before[key] == departed) / len(KEYS)
        assert 0.10 < share < 0.45

    def test_rids_are_stable_and_never_reused(self, trained_pas):
        router = Router(trained_pas, _config(2))
        assert router.drain_replica(0)
        rid = router.add_replica()
        assert rid == 2  # rid 0 is never reused
        assert router.live_rids == [1, 2]

    def test_drain_waits_for_inflight(self, trained_pas):
        router = Router(trained_pas, _config(2))
        timed = _timed(1, POOL[0])
        # Park one in-flight assignment on whichever replica hash picks.
        rid = router.route(timed.request, timed)
        assert not router.drain_replica(rid)  # still busy: not retired
        assert rid not in router.live_rids  # but takes no new placements
        assert router.n_replicas == 2  # gateway still alive for the serve
        plan = router.plan_batch(rid, [timed.request])
        response = router.serve_planned(rid, timed.request, plan)
        assert response.status == "ok"
        router.release(rid)  # last assignment back -> retirement
        assert router.n_replicas == 1
        assert rid not in router.live_rids

    def test_retirement_discards_replica_caches(self, trained_pas):
        obs = Observability.enabled()
        router = Router(trained_pas, _config(2), obs)
        timed = _timed(1, POOL[0])
        rid = router.route(timed.request, timed)
        plan = router.plan_batch(rid, [timed.request])
        router.serve_planned(rid, timed.request, plan)  # warms the caches
        router.release(rid)
        assert router.drain_replica(rid)
        assert router.stats.evicted > 0
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["pas_router_cache_evicted_total"]
        actions = [
            event["attrs"]["action"]
            for event in obs.events.as_dicts()
            if event["kind"] == "router.scale"
        ]
        assert actions == ["drain", "retired"]

    def test_shared_cache_survives_membership_change(self, trained_pas):
        config = ServingConfig(
            router=RouterConfig(n_replicas=2, seed=7, cache_scope="shared"),
            gateway=GatewayConfig(seed=5),
        )
        router = Router(trained_pas, config)
        timed = _timed(1, POOL[0])
        rid = router.route(timed.request, timed)
        plan = router.plan_batch(rid, [timed.request])
        router.serve_planned(rid, timed.request, plan)
        router.release(rid)
        shared = router.gateway_for(router.live_rids[0])._complement_cache
        warm = len(shared)
        assert warm > 0
        assert router.drain_replica(rid)
        assert router.stats.evicted == 0  # shared tiers are never discarded
        survivor = router.live_rids[0]
        assert router.gateway_for(survivor)._complement_cache is shared
        assert len(shared) == warm
        newcomer = router.add_replica()
        assert router.gateway_for(newcomer)._complement_cache is shared

    def test_cannot_drain_last_live_replica(self, trained_pas):
        router = Router(trained_pas, _config(2))
        assert router.drain_replica(1)
        with pytest.raises(ConfigError, match="last live replica"):
            router.drain_replica(0)
        with pytest.raises(ConfigError, match="unknown replica"):
            router.drain_replica(9)

    def test_adopted_fleets_cannot_scale(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        router = Router(replicas=[gateway])
        with pytest.raises(ConfigError, match="adopted"):
            router.add_replica()

    def test_retired_clock_ticks_keep_counting(self, trained_pas):
        router = Router(trained_pas, _config(2))
        timed = _timed(1, POOL[0])
        rid = router.route(timed.request, timed)
        plan = router.plan_batch(rid, [timed.request])
        router.serve_planned(rid, timed.request, plan)
        router.release(rid)
        before = router.clock
        assert before > 0
        assert router.drain_replica(rid)
        assert router.clock == before  # the retired replica's ticks remain


class TestApply:
    def test_scale_out_and_back(self, trained_pas):
        router = Router(trained_pas, _config(1))
        diff = router.apply(FleetPlan(replicas=4))
        assert diff == {"added": [1, 2, 3], "draining": [], "removed": []}
        assert router.live_rids == [0, 1, 2, 3]
        diff = router.apply(FleetPlan(replicas=2))
        assert diff == {"added": [], "draining": [], "removed": [3, 2]}
        assert router.live_rids == [0, 1]

    def test_constructor_honors_plan_count(self, trained_pas):
        # One ServingConfig is one deployment: the fleet section's target
        # count wins over router.n_replicas at construction, as it does
        # in validate() and apply().
        router = Router(trained_pas, _config(2, fleet=FleetPlan(replicas=3)))
        assert router.live_rids == [0, 1, 2]

    def test_adopted_fleet_rejects_conflicting_plan_count(self, trained_pas):
        gateway = PasGateway(trained_pas, config=GatewayConfig(seed=5))
        config = _config(1, fleet=FleetPlan(replicas=3))
        with pytest.raises(ConfigError, match="3 replicas but 1 gateways"):
            Router(config=config, replicas=[gateway])

    def test_replicas_none_leaves_membership_alone(self, trained_pas):
        router = Router(trained_pas, _config(3))
        diff = router.apply(FleetPlan(hedge=HedgePolicy(after_ticks=8)))
        assert diff == {"added": [], "draining": [], "removed": []}
        assert router.live_rids == [0, 1, 2]
        assert router.hedge_policy == HedgePolicy(after_ticks=8)

    def test_apply_installs_policies(self, trained_pas):
        router = Router(trained_pas, _config(2))
        assert router.hedge_policy is None
        assert router.fairness_mode == "priority"
        router.apply(
            FleetPlan(
                hedge=HedgePolicy(percentile=95.0),
                fairness=FairnessPolicy(mode="wfq", weights=(("paid", 3.0),)),
                spike_rate=0.2,
                spike_ticks=16,
            )
        )
        assert router.hedge_policy.percentile == 95.0
        assert router.fairness_mode == "wfq"

    def test_busy_drain_reports_draining_not_removed(self, trained_pas):
        router = Router(trained_pas, _config(2))
        timed = _timed(1, POOL[0])
        busy = router.route(timed.request, timed)
        target = FleetPlan(replicas=1)
        diff = router.apply(target)
        # Whichever rid drains, the busy one cannot retire synchronously
        # unless it was the survivor; rid 1 drains first by construction.
        if busy == 1:
            assert diff == {"added": [], "draining": [1], "removed": []}
        else:
            assert diff == {"added": [], "draining": [], "removed": [1]}


class TestHedging:
    def _run(self, trained_pas, fleet, n=80, fault_plan=None):
        config = _config(
            3,
            fleet=fleet,
            engine=EngineConfig(max_inflight=8),
            fault_plan=fault_plan,
        )
        router = Router(trained_pas, config)
        return ServingEngine(router, config).run(
            _trace(n=n, seed=3, process="bursty")
        ), router

    def test_never_firing_hedge_is_invisible(self, trained_pas):
        baseline, _ = self._run(trained_pas, FleetPlan())
        hedged, router = self._run(
            trained_pas, FleetPlan(hedge=HedgePolicy(after_ticks=100_000))
        )
        assert hedged.responses == baseline.responses
        assert hedged.stats.as_dict() == baseline.stats.as_dict()
        assert router.stats.hedges == {}

    def test_hedges_fire_and_win_under_spikes(self, trained_pas):
        fleet = FleetPlan(
            hedge=HedgePolicy(after_ticks=4), spike_rate=0.3, spike_ticks=64
        )
        result, router = self._run(trained_pas, fleet)
        assert result.stats.served == result.stats.arrived
        hedges = router.stats.hedges
        assert sum(hedges.values()) > 0
        assert hedges.get("win", 0) > 0

    def test_hedging_cuts_spiked_tail(self, trained_pas):
        spiky = FleetPlan(spike_rate=0.3, spike_ticks=64)
        hedged = FleetPlan(
            hedge=HedgePolicy(after_ticks=4), spike_rate=0.3, spike_ticks=64
        )
        slow, _ = self._run(trained_pas, spiky)
        fast, _ = self._run(trained_pas, hedged)
        assert fast.stats.makespan_ticks <= slow.stats.makespan_ticks
        assert fast.stats.latency_p99 < slow.stats.latency_p99

    def test_hedged_run_is_deterministic(self, trained_pas):
        fleet = FleetPlan(
            hedge=HedgePolicy(percentile=90.0, min_samples=8),
            spike_rate=0.2,
            spike_ticks=48,
        )
        a, router_a = self._run(trained_pas, fleet)
        b, router_b = self._run(trained_pas, fleet)
        assert a.responses == b.responses
        assert a.stats.as_dict() == b.stats.as_dict()
        assert router_a.stats.as_dict() == router_b.stats.as_dict()

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_hedging_under_chaos_stays_deterministic(self, trained_pas, seed):
        fleet = FleetPlan(
            hedge=HedgePolicy(after_ticks=4), spike_rate=0.2, spike_ticks=48
        )
        plan = FaultPlan(
            seed=seed, completion_failure_rate=0.15, augment_failure_rate=0.1
        )
        a, _ = self._run(trained_pas, fleet, fault_plan=plan)
        b, _ = self._run(trained_pas, fleet, fault_plan=plan)
        assert a.responses == b.responses
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_hedge_spans_and_metrics_land(self, trained_pas):
        obs = Observability.enabled(event_capacity=65536)
        config = _config(
            3,
            fleet=FleetPlan(
                hedge=HedgePolicy(after_ticks=4), spike_rate=0.3, spike_ticks=64
            ),
            engine=EngineConfig(max_inflight=8),
        )
        router = Router(trained_pas, config, obs)
        ServingEngine(router, config).run(_trace(n=60, seed=3, process="bursty"))
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["pas_router_hedges_total"]
        hedge_events = [
            e for e in obs.events.as_dicts() if e["kind"] == "router.hedge"
        ]
        assert hedge_events
        raced = [
            e for e in hedge_events if e["attrs"]["outcome"] in ("win", "loss")
        ]
        spans = obs.tracer.store.by_root("router.hedge")
        assert len(spans) == len(raced)


class TestDrainToOneParity:
    """A fleet drained to one replica serves like the bare gateway."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_byte_identical_to_single_gateway(self, trained_pas, seed):
        plan = FaultPlan(
            seed=seed, completion_failure_rate=0.2, augment_failure_rate=0.1
        )
        config = _config(3, fault_plan=plan, max_retries=2)
        router = Router(trained_pas, config)
        router.apply(FleetPlan(replicas=1))
        assert router.n_replicas == 1
        routed = ServingEngine(router, config).run(
            _trace(n=80, seed=3, process="diurnal")
        )
        gateway = PasGateway(trained_pas, config=config.gateway)
        bare = ServingEngine(gateway, config).run(
            _trace(n=80, seed=3, process="diurnal")
        )
        assert routed.responses == bare.responses
        assert routed.stats.as_dict() == bare.stats.as_dict()


class TestWeightedFairQueueing:
    TENANTS = (
        TenantProfile("free", weight=1.0),
        TenantProfile("paid", weight=1.0),
    )

    def test_tags_order_by_inverse_weight(self, trained_pas):
        config = _config(
            2,
            fleet=FleetPlan(
                fairness=FairnessPolicy(
                    mode="wfq", weights=(("paid", 2.0), ("free", 1.0))
                )
            ),
        )
        router = Router(trained_pas, config)
        batch = [
            _timed(1, POOL[0], tenant="free"),
            _timed(1, POOL[1], tenant="paid"),
            _timed(1, POOL[2], tenant="paid"),
            _timed(1, POOL[3], tenant="free"),
        ]
        tags = router.wfq_tags(batch)
        order = sorted(range(len(batch)), key=lambda i: tags[i])
        # paid (weight 2) finishes at 1/2 and 1; free at 1 and 2.  The
        # stable sort keeps the free request ahead of paid's second slot
        # on the tie at finish tag 1.
        assert [batch[i].tenant for i in order] == ["paid", "free", "paid", "free"]

    def test_zero_weight_tenant_is_background_class(self, trained_pas):
        config = _config(
            2,
            fleet=FleetPlan(
                fairness=FairnessPolicy(mode="wfq", weights=(("batch", 0.0),))
            ),
        )
        router = Router(trained_pas, config)
        batch = [
            _timed(1, POOL[0], tenant="batch"),
            _timed(1, POOL[1], tenant="interactive"),
            _timed(1, POOL[2], tenant="batch"),
        ]
        tags = router.wfq_tags(batch)
        order = sorted(range(len(batch)), key=lambda i: tags[i])
        assert [batch[i].tenant for i in order] == [
            "interactive",
            "batch",
            "batch",
        ]

    def test_wfq_run_is_deterministic(self, trained_pas):
        fleet = FleetPlan(
            fairness=FairnessPolicy(
                mode="wfq", weights=(("free", 1.0), ("paid", 4.0))
            )
        )
        config = ServingConfig(
            router=RouterConfig(n_replicas=2, seed=7),
            gateway=GatewayConfig(seed=5),
            engine=EngineConfig(max_inflight=2, max_batch=8),
            traffic=TrafficConfig(
                n_requests=100,
                seed=3,
                process="bursty",
                mean_gap_ticks=0.5,
                tenants=self.TENANTS,
            ),
            fleet=fleet,
        )
        config.validate()

        def run():
            router = Router(trained_pas, config)
            return ServingEngine(router, config).run(
                TrafficGenerator(POOL, config.traffic).trace()
            )

        a, b = run(), run()
        assert a.responses == b.responses
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_virtual_time_carries_across_batches(self, trained_pas):
        from fractions import Fraction

        config = _config(
            2,
            fleet=FleetPlan(
                fairness=FairnessPolicy(
                    mode="wfq", weights=(("paid", 2.0), ("free", 1.0))
                )
            ),
        )
        router = Router(trained_pas, config)
        first = router.wfq_tags(
            [_timed(1, POOL[0], tenant="free"), _timed(1, POOL[1], tenant="paid")]
        )
        assert first == [(0, Fraction(1)), (0, Fraction(1, 2))]
        # Finish tags accumulate per tenant across batches: the heavier
        # tenant accrues virtual time half as fast, so it keeps sorting
        # ahead in every later batch too.
        second = router.wfq_tags(
            [_timed(2, POOL[2], tenant="free"), _timed(2, POOL[3], tenant="paid")]
        )
        assert second == [(0, Fraction(2)), (0, Fraction(1))]
        assert second[1] < second[0]
