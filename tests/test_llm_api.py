"""Tests for the ChatClient wrapper (usage, retries, budgets)."""

import pytest

from repro.errors import BudgetExceededError, ConfigError
from repro.llm.api import ChatClient, LatencyModel, TransientApiError, Usage
from repro.llm.engine import SimulatedLLM
from repro.llm.types import ChatCompletion, Message


@pytest.fixture()
def client():
    return ChatClient(engine=SimulatedLLM("gpt-4-0613"))


class TestMessages:
    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            Message("robot", "hi")

    def test_valid_roles(self):
        for role in ("system", "user", "assistant"):
            Message(role, "x")

    def test_completion_total_tokens(self):
        c = ChatCompletion(model="m", content="x", prompt_tokens=3, completion_tokens=4)
        assert c.total_tokens == 7


class TestComplete:
    def test_basic_completion(self, client):
        completion = client.complete([Message("user", "how do i bake bread?")])
        assert completion.content
        assert completion.model == "gpt-4-0613"
        assert completion.completion_tokens > 0

    def test_empty_messages_rejected(self, client):
        with pytest.raises(ValueError):
            client.complete([])

    def test_requires_user_message(self, client):
        with pytest.raises(ValueError):
            client.complete([Message("system", "be helpful")])

    def test_system_message_acts_as_supplement(self, client):
        plain = client.complete([Message("user", "how do i bake bread?")])
        from repro.world.aspects import render_directive

        guided = client.complete(
            [
                Message("system", render_directive("examples")),
                Message("user", "how do i bake bread?"),
            ]
        )
        assert plain.content != guided.content

    def test_ask_convenience(self, client):
        assert client.ask("how do i bake bread?") == client.ask("how do i bake bread?")


class TestUsageAccounting:
    def test_usage_accumulates(self, client):
        client.ask("first question about cooking")
        client.ask("second question about gardening")
        assert client.usage.requests == 2
        assert client.usage.prompt_tokens > 0
        assert client.usage.completion_tokens > 0

    def test_total_tokens(self):
        usage = Usage(prompt_tokens=3, completion_tokens=9)
        assert usage.total_tokens == 12

    def test_budget_enforced(self):
        client = ChatClient(engine=SimulatedLLM("gpt-4-0613"), max_requests=2)
        client.ask("q one about topics")
        client.ask("q two about topics")
        with pytest.raises(BudgetExceededError):
            client.ask("q three about topics")


class TestFailureInjection:
    def test_retries_succeed_eventually(self):
        client = ChatClient(
            engine=SimulatedLLM("gpt-4-0613"),
            failure_rate=0.5,
            max_retries=10,
        )
        for i in range(10):
            completion = client.complete([Message("user", f"question {i} about things")])
            assert completion.content
        assert client.usage.failures > 0

    def test_zero_retries_can_fail(self):
        client = ChatClient(
            engine=SimulatedLLM("gpt-4-0613"),
            failure_rate=0.95,
            max_retries=0,
        )
        failed = 0
        for i in range(20):
            try:
                client.complete([Message("user", f"question {i} about stuff")])
            except TransientApiError:
                failed += 1
        assert failed > 10

    def test_failure_deterministic(self):
        def run():
            client = ChatClient(
                engine=SimulatedLLM("gpt-4-0613"), failure_rate=0.6, max_retries=5
            )
            outcomes = []
            for i in range(10):
                try:
                    outcomes.append(client.complete([Message("user", f"q {i} x y z")]).retries)
                except TransientApiError:
                    outcomes.append(-1)
            return outcomes

        assert run() == run()

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            ChatClient(engine=SimulatedLLM("gpt-4-0613"), failure_rate=1.0)

    def test_invalid_retries(self):
        with pytest.raises(ValueError):
            ChatClient(engine=SimulatedLLM("gpt-4-0613"), max_retries=-1)


class TestLatencyModel:
    def test_ticks_deterministic_and_positive(self):
        engine = SimulatedLLM("gpt-4-0613")
        model = LatencyModel(base_ticks=6.0, per_token_ticks=0.25, jitter=0.25)
        a = model.ticks(engine, "what is a monad? be concise.", None, 12)
        b = model.ticks(engine, "what is a monad? be concise.", None, 12)
        assert a == b >= 1

    def test_token_count_raises_latency(self):
        engine = SimulatedLLM("gpt-4-0613")
        model = LatencyModel(jitter=0.0)
        short = model.ticks(engine, "short prompt here", None, 4)
        long = model.ticks(engine, "short prompt here", None, 400)
        assert long > short

    def test_zero_jitter_is_exact(self):
        engine = SimulatedLLM("gpt-4-0613")
        model = LatencyModel(base_ticks=10.0, per_token_ticks=0.5, jitter=0.0)
        assert model.ticks(engine, "any prompt at all", None, 20) == 20

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyModel(base_ticks=-1.0)
        with pytest.raises(ConfigError):
            LatencyModel(per_token_ticks=-0.1)
        with pytest.raises(ConfigError):
            LatencyModel(jitter=-0.5)

    def test_client_completion_latency(self):
        client = ChatClient(engine=SimulatedLLM("gpt-4-0613"))
        messages = [Message("user", "how do i parse csv files? show me how.")]
        first = client.completion_latency(messages)
        assert first == client.completion_latency(messages) >= 1
        # A system supplement adds tokens, so latency can only grow.
        augmented = [Message("system", "use the csv module and show code"), *messages]
        assert client.completion_latency(augmented) >= first
        # Pricing a completion never consumes the engine's RNG state or
        # usage accounting.
        assert client.usage.requests == 0

    def test_max_inflight_validation(self):
        with pytest.raises(ValueError):
            ChatClient(engine=SimulatedLLM("gpt-4-0613"), max_inflight=0)
