"""Tests for the deterministic micro-batching scheduler."""

import pytest

from repro.llm.api import TransientApiError
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest

PROMPTS = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i parse csv files? show me how.",  # duplicate
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
]


def _requests(prompts=PROMPTS, model="gpt-4-0613"):
    return [ServeRequest(prompt=p, model=model) for p in prompts]


class TestTriggers:
    def test_size_trigger_drains_full_batch(self):
        batches = []
        mb = MicroBatcher(lambda reqs: batches.append(list(reqs)) or [], max_batch=3, max_wait=10)
        reqs = _requests()
        for r in reqs[:2]:
            assert mb.submit(r) == []
        assert mb.pending == 2
        mb.submit(reqs[2])  # third request fills the batch
        assert mb.pending == 0
        assert [len(b) for b in batches] == [3]
        assert mb.records[0].trigger == "size"
        assert mb.records[0].occupancy == 1.0

    def test_wait_trigger_drains_partial_batch(self):
        batches = []
        mb = MicroBatcher(lambda reqs: batches.append(list(reqs)) or [], max_batch=100, max_wait=3)
        for r in _requests()[:4]:
            mb.submit(r)
        # request 1 arrived at tick 1; by tick 4 it has waited 3 ticks.
        assert [len(b) for b in batches] == [4]
        assert mb.records[0].trigger == "wait"
        assert mb.records[0].max_wait_ticks == 3
        assert mb.records[0].occupancy == pytest.approx(0.04)

    def test_flush_drains_tail(self):
        batches = []
        mb = MicroBatcher(lambda reqs: batches.append(list(reqs)) or [], max_batch=100, max_wait=100)
        for r in _requests()[:2]:
            mb.submit(r)
        assert batches == []
        mb.flush()
        assert [len(b) for b in batches] == [2]
        assert mb.records[0].trigger == "flush"
        assert mb.flush() == []  # idempotent when empty

    def test_logical_clock_counts_submissions(self):
        mb = MicroBatcher(lambda reqs: [], max_batch=2, max_wait=2)
        assert mb.clock == 0
        for r in _requests()[:5]:
            mb.submit(r)
        assert mb.clock == 5

    def test_stats_accumulate(self):
        mb = MicroBatcher(lambda reqs: [], max_batch=3, max_wait=10)
        for r in _requests()[:7]:
            mb.submit(r)
        mb.flush()
        assert mb.stats.submitted == 7
        assert mb.stats.drained == 7
        assert mb.stats.batches == 3
        assert mb.stats.triggers == {"size": 2, "flush": 1}
        assert mb.stats.mean_batch_size == pytest.approx(7 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda reqs: [], max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda reqs: [], max_wait=0)

    def test_occupancy_percentiles_in_stats(self):
        mb = MicroBatcher(lambda reqs: [], max_batch=4, max_wait=10)
        for r in _requests()[:6]:
            mb.submit(r)
        mb.flush()  # one full batch (1.0), one half batch (0.5)
        stats = mb.stats.as_dict()
        assert stats["mean_occupancy"] == pytest.approx(0.75)
        assert stats["occupancy_p50"] == pytest.approx(0.5)
        assert stats["occupancy_p99"] == pytest.approx(1.0)


class TestTimedSubmission:
    def test_submit_at_fires_wait_trigger_on_trace_gaps(self):
        batches = []
        mb = MicroBatcher(lambda reqs: batches.append(list(reqs)) or [], max_batch=10, max_wait=3)
        reqs = _requests()
        mb.submit_at(1, reqs[0])
        mb.submit_at(2, reqs[1])
        assert batches == []
        mb.submit_at(9, reqs[2])  # the 7-tick gap ages the queue past max_wait
        assert [len(b) for b in batches] == [3]
        assert mb.records[0].trigger == "wait"
        assert mb.records[0].max_wait_ticks == 8

    def test_submit_at_rejects_time_travel(self):
        mb = MicroBatcher(lambda reqs: [], max_batch=10, max_wait=10)
        mb.submit_at(5, _requests()[0])
        mb.submit_at(5, _requests()[1])  # same tick is fine
        with pytest.raises(ValueError):
            mb.submit_at(4, _requests()[2])

    def test_run_arrivals_matches_direct_ask_batch(self, trained_pas):
        reqs = _requests()
        direct = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        scheduled = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        mb = MicroBatcher(scheduled.ask_batch, max_batch=3, max_wait=2)
        arrivals = [(i + 1, r) for i, r in enumerate(reqs)]
        assert mb.run_arrivals(arrivals) == direct.ask_batch(reqs)
        assert scheduled.stats == direct.stats


class TestContinuousMode:
    def test_submissions_only_queue(self):
        mb = MicroBatcher(None, max_batch=2, max_wait=2)
        for tick, r in enumerate(_requests()[:5], start=1):
            assert mb.submit_at(tick, r) == []
        assert mb.pending == 5
        assert mb.continuous

    def test_take_respects_triggers_and_limit(self):
        mb = MicroBatcher(None, max_batch=3, max_wait=10)
        reqs = _requests()
        mb.submit_at(1, reqs[0])
        assert mb.ready(1) is None
        assert mb.take(1) == []  # nothing ready yet
        mb.submit_at(1, reqs[1])
        mb.submit_at(2, reqs[2])
        assert mb.ready(2) == "size"
        taken = mb.take(2, limit=2)
        assert [t.prompt for t in taken] == [r.prompt for r in reqs[:2]]
        assert mb.pending == 1
        assert mb.records[0].trigger == "size"
        assert mb.records[0].n_ok == 0  # outcomes belong to the engine

    def test_take_force_flushes_tail(self):
        mb = MicroBatcher(None, max_batch=10, max_wait=10)
        mb.submit_at(1, _requests()[0])
        assert mb.take(2) == []
        assert len(mb.take(2, force=True)) == 1
        assert mb.records[0].trigger == "flush"

    def test_wait_trigger_uses_take_clock(self):
        mb = MicroBatcher(None, max_batch=10, max_wait=4)
        mb.submit_at(1, _requests()[0])
        assert mb.ready(4) is None
        assert mb.ready(5) == "wait"
        assert len(mb.take(5)) == 1
        assert mb.clock == 5

    def test_flush_requires_a_handler(self):
        mb = MicroBatcher(None)
        mb.submit_at(1, _requests()[0])
        with pytest.raises(RuntimeError):
            mb.flush()


class TestRemovedRun:
    def test_run_shim_is_gone(self):
        # The deprecated one-shot MicroBatcher.run() was removed after its
        # call sites migrated to run_arrivals()/ServingEngine; it must not
        # quietly come back.
        assert not hasattr(MicroBatcher(None), "run")


class TestGatewayParity:
    """Draining through the scheduler == one direct ask_batch == the ask loop."""

    def test_run_matches_direct_ask_batch(self, trained_pas):
        reqs = _requests()
        direct = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        scheduled = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        mb = MicroBatcher(scheduled.ask_batch, max_batch=3, max_wait=2)
        assert mb.run_arrivals(enumerate(reqs, start=1)) == direct.ask_batch(reqs)
        assert scheduled.stats == direct.stats
        assert list(scheduled._complement_cache._data) == list(
            direct._complement_cache._data
        )

    def test_run_matches_scalar_loop_under_eviction(self, trained_pas):
        # Tiny caches force evictions across batch boundaries; the
        # partitioned replay must still match the scalar sequence.
        reqs = _requests(PROMPTS + PROMPTS[::-1])
        scalar = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=3, embed_cache_size=3))
        scheduled = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=3, embed_cache_size=3))
        mb = MicroBatcher(scheduled.ask_batch, max_batch=4, max_wait=3)
        assert mb.run_arrivals(enumerate(reqs, start=1)) == [scalar.ask(r) for r in reqs]
        assert scheduled.stats == scalar.stats

    def test_responses_in_arrival_order(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        mb = MicroBatcher(gateway.ask_batch, max_batch=2, max_wait=5)
        reqs = [
            ServeRequest(prompt=p, model="gpt-4-0613", request_id=str(i))
            for i, p in enumerate(PROMPTS)
        ]
        responses = mb.run_arrivals(enumerate(reqs, start=1))
        assert [r.request_id for r in responses] == [str(i) for i in range(len(PROMPTS))]

    def test_handler_exception_consumes_batch(self, trained_pas, monkeypatch):
        gateway = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, strict=True)
        )
        client = gateway.client_for("gpt-4-0613")

        def exploding_complete(messages):
            raise TransientApiError("gpt-4-0613: all attempts failed transiently")

        monkeypatch.setattr(client, "complete", exploding_complete)
        mb = MicroBatcher(gateway.ask_batch, max_batch=2, max_wait=10)
        reqs = _requests()[:2]
        mb.submit(reqs[0])
        with pytest.raises(TransientApiError):
            mb.submit(reqs[1])
        assert mb.pending == 0  # the batch was consumed, as ask_batch's contract
        assert gateway.stats.failures_per_model == {"gpt-4-0613": 1}
