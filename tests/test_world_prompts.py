"""Tests for the synthetic prompt factory and corpus builder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.world.aspects import find_cues
from repro.world.categories import category_names
from repro.world.prompts import CUE_SENTENCES, CorpusConfig, PromptFactory


class TestCueSentences:
    def test_every_aspect_has_cue_sentences(self):
        from repro.world.aspects import aspect_names

        assert set(CUE_SENTENCES) == set(aspect_names())

    @pytest.mark.parametrize("aspect", sorted(CUE_SENTENCES))
    def test_cue_sentences_actually_cue(self, aspect):
        for sentence in CUE_SENTENCES[aspect]:
            assert aspect in find_cues(sentence)


class TestMakePrompt:
    def test_fixed_category(self, factory):
        prompt = factory.make_prompt(category="coding")
        assert prompt.category == "coding"

    def test_unknown_category_rejected(self, factory):
        with pytest.raises(ConfigError):
            factory.make_prompt(category="nonexistent")

    def test_has_at_least_one_need(self, factory):
        for _ in range(30):
            assert len(factory.make_prompt().needs) >= 1

    def test_needs_capped(self, factory):
        for _ in range(30):
            assert len(factory.make_prompt(max_needs=2).needs) <= 2

    def test_hard_prompts_have_hard_need(self, factory):
        for _ in range(20):
            prompt = factory.make_prompt(hard=True)
            assert prompt.hard
            assert prompt.needs & {"logic_trap", "constraints", "edge_cases"}
            assert len(prompt.needs) >= 2

    def test_full_cue_rate_makes_needs_visible(self, factory):
        for _ in range(20):
            prompt = factory.make_prompt(cue_rate=1.0, misleading_cue_rate=0.0)
            cued = set(find_cues(prompt.text))
            assert prompt.needs <= cued

    def test_uids_unique(self, factory):
        prompts = [factory.make_prompt() for _ in range(50)]
        uids = [p.uid for p in prompts]
        assert len(set(uids)) == 50

    def test_topic_words_exclude_short_words(self, factory):
        prompt = factory.make_prompt()
        assert all(len(w) > 3 for w in prompt.topic_words)

    def test_deterministic_given_seed(self):
        a = PromptFactory(rng=np.random.default_rng(5)).make_prompt()
        b = PromptFactory(rng=np.random.default_rng(5)).make_prompt()
        assert a.text == b.text
        assert a.needs == b.needs


class TestDuplicatesAndJunk:
    def test_near_duplicate_links_base(self, factory):
        from repro.utils import textproc

        base = factory.make_prompt()
        dup = factory.make_near_duplicate(base)
        assert dup.dup_of == base.uid
        assert dup.needs == base.needs
        # paraphrased surface stays close in word space
        overlap = textproc.jaccard(
            textproc.words(base.text), textproc.words(dup.text)
        )
        assert overlap > 0.5

    def test_near_duplicate_preserves_cues(self, factory):
        for _ in range(20):
            base = factory.make_prompt(cue_rate=1.0, misleading_cue_rate=0.0)
            dup = factory.make_near_duplicate(base)
            assert base.needs <= set(find_cues(dup.text))

    def test_exact_duplicate_same_text(self, factory):
        base = factory.make_prompt()
        dup = factory.make_exact_duplicate(base)
        assert dup.text == base.text
        assert dup.uid != base.uid

    def test_junk_flagged(self, factory):
        junk = factory.make_junk()
        assert junk.is_junk
        assert junk.needs == frozenset()


class TestCorpus:
    def test_size(self, small_corpus):
        assert len(small_corpus) == 250

    def test_contains_configured_dirt(self, small_corpus):
        junk = sum(1 for p in small_corpus if p.is_junk)
        dups = sum(1 for p in small_corpus if p.dup_of is not None)
        assert junk == round(250 * 0.08)
        assert dups == round(250 * 0.08) * 2  # exact + near

    def test_categories_all_appear(self, small_corpus):
        seen = {p.category for p in small_corpus if not p.is_junk}
        assert seen == set(category_names())

    def test_zero_prompts(self, factory):
        assert factory.make_corpus(CorpusConfig(n_prompts=0)) == []

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CorpusConfig(junk_rate=1.5).validate()
        with pytest.raises(ConfigError):
            CorpusConfig(n_prompts=-1).validate()
        with pytest.raises(ConfigError):
            CorpusConfig(max_needs=0).validate()
        with pytest.raises(ConfigError):
            CorpusConfig(junk_rate=0.5, exact_duplicate_rate=0.3, near_duplicate_rate=0.2).validate()

    def test_corpus_deterministic(self):
        a = PromptFactory(rng=np.random.default_rng(9)).make_corpus(CorpusConfig(n_prompts=50))
        b = PromptFactory(rng=np.random.default_rng(9)).make_corpus(CorpusConfig(n_prompts=50))
        assert [p.text for p in a] == [p.text for p in b]
