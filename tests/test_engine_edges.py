"""Edge-case tests for the engine and the world's text interfaces."""

import numpy as np
import pytest

from repro.llm.engine import SimulatedLLM
from repro.llm.generation import extract_topic_words
from repro.world.aspects import find_cues, find_markers, parse_directives
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import assess_response


class TestEngineEdgeCases:
    @pytest.fixture()
    def engine(self):
        return SimulatedLLM("gpt-4-0613")

    def test_empty_prompt_still_responds(self, engine):
        response = engine.respond("")
        assert isinstance(response, str)
        assert response

    def test_single_word_prompt(self, engine):
        assert engine.respond("hi")

    def test_very_long_prompt(self, engine):
        prompt = "explain this topic. " * 300
        assert engine.respond(prompt)

    def test_unicode_prompt(self, engine):
        assert engine.respond("wie koche ich schnell wasser? — explique s'il te plaît")

    def test_supplement_without_directives_is_inert_noise(self, engine):
        prompt = "how do i plan a garden layout?"
        with_noise = engine.respond(prompt, supplement="plain words, no directives")
        # A directive-free supplement changes the seed but adds no coverage.
        assert find_markers(with_noise) == find_markers(with_noise)

    def test_empty_supplement_equals_none(self, engine):
        prompt = "how do i plan a garden layout?"
        assert engine.respond(prompt, supplement=None) == engine.respond(
            prompt, supplement=None
        )

    def test_infer_needs_empty_text(self, engine):
        assert engine.infer_needs("") == set()


class TestAspectParsersEdgeCases:
    def test_find_cues_empty(self):
        assert find_cues("") == {}

    def test_find_markers_empty(self):
        assert find_markers("") == set()

    def test_parse_directives_partial_fragment_no_match(self):
        # Three of the four fragment words are not enough.
        assert parse_directives("please explain the") == set()

    def test_cue_phrase_inside_longer_word_no_match(self):
        # "in detail" should not fire on "in detailing".
        assert "depth" not in find_cues("we are in detailing territory")


class TestTopicExtractionEdgeCases:
    def test_empty_text(self):
        assert extract_topic_words("") == []

    def test_all_stopwords(self):
        assert extract_topic_words("the a an and of to") == []

    def test_limit_zero(self):
        assert extract_topic_words("database indexes tuning", limit=0) == []


class TestOracleEdgeCases:
    def test_empty_response_scores_low(self):
        prompt = SyntheticPrompt(
            uid=1, text="explain compound interest in detail",
            category="question_answering", needs=frozenset({"depth"}),
            topic="compound interest",
        )
        qa = assess_response(prompt, "")
        assert qa.score <= 1.0
        assert qa.coverage == 0.0

    def test_response_tokens_counted_on_empty(self):
        prompt = SyntheticPrompt(
            uid=2, text="x", category="chitchat", needs=frozenset(), topic="",
        )
        assert assess_response(prompt, "").response_tokens == 0

    def test_score_monotone_in_coverage(self):
        from repro.llm.generation import RESPONSE_SECTIONS

        prompt = SyntheticPrompt(
            uid=3,
            text="compare laptops versus tablets with pros and cons in detail",
            category="recommendation",
            needs=frozenset({"comparison", "depth"}),
            topic="laptops tablets",
        )
        base = "about laptops tablets."
        one = base + " " + RESPONSE_SECTIONS["comparison"][0]
        two = one + " " + RESPONSE_SECTIONS["depth"][0]
        s0 = assess_response(prompt, base).score
        s1 = assess_response(prompt, one).score
        s2 = assess_response(prompt, two).score
        assert s0 < s1 < s2
