"""Tests for feature hashing, the embedding model, and similarity ops."""

import numpy as np
import pytest

from repro.embedding.hashing import hash_features
from repro.embedding.model import EmbeddingModel
from repro.embedding.similarity import cosine, cosine_matrix, pairwise_cosine


class TestHashFeatures:
    def test_deterministic(self):
        a = hash_features(["x", "y"], 32)
        b = hash_features(["x", "y"], 32)
        assert (a == b).all()

    def test_dimension(self):
        assert hash_features(["x"], 16).shape == (16,)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            hash_features(["x"], 0)

    def test_weights_scale(self):
        unweighted = hash_features(["x"], 32)
        weighted = hash_features(["x"], 32, weights=[3.0])
        assert np.allclose(weighted, 3.0 * unweighted)

    def test_signs_present(self):
        vec = hash_features([str(i) for i in range(200)], 8)
        # With signed hashing, mass cancels rather than accumulating.
        assert abs(vec).sum() < 200

    def test_empty_features(self):
        assert (hash_features([], 8) == 0).all()


class TestEmbeddingModel:
    def test_unit_norm(self):
        vec = EmbeddingModel().embed("hello world")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        vec = EmbeddingModel().embed("")
        assert np.linalg.norm(vec) == pytest.approx(0.0)

    def test_deterministic(self):
        m = EmbeddingModel()
        assert (m.embed("abc") == m.embed("abc")).all()

    def test_similar_texts_are_close(self):
        m = EmbeddingModel()
        base = "how do i implement a binary search tree in python"
        near = "hey, how do i implement a binary search tree in python thanks"
        far = "compose a wedding toast with a friendly voice"
        assert cosine(m.embed(base), m.embed(near)) > 0.8
        assert cosine(m.embed(base), m.embed(far)) < 0.4

    def test_batch_shape(self):
        m = EmbeddingModel(dim=64)
        batch = m.embed_batch(["a b c", "d e f"])
        assert batch.shape == (2, 64)

    def test_empty_batch(self):
        m = EmbeddingModel(dim=64)
        assert m.embed_batch([]).shape == (0, 64)

    def test_batch_matches_single(self):
        m = EmbeddingModel()
        batch = m.embed_batch(["text one", "text two"])
        assert np.allclose(batch[0], m.embed("text one"))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dim=0)

    def test_requires_some_order(self):
        with pytest.raises(ValueError):
            EmbeddingModel(char_orders=(), word_orders=())

    def test_case_insensitive(self):
        m = EmbeddingModel()
        assert cosine(m.embed("Hello World"), m.embed("hello world")) == pytest.approx(1.0)


class TestSimilarity:
    def test_cosine_self(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine(v, v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_zero_vector(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_cosine_matrix_shape(self):
        q = np.random.default_rng(0).normal(size=(3, 5))
        c = np.random.default_rng(1).normal(size=(4, 5))
        assert cosine_matrix(q, c).shape == (3, 4)

    def test_pairwise_symmetric(self):
        m = np.random.default_rng(2).normal(size=(5, 8))
        sims = pairwise_cosine(m)
        assert np.allclose(sims, sims.T)
        assert np.allclose(np.diag(sims), 1.0)

    def test_cosine_matrix_bounds(self):
        m = np.random.default_rng(3).normal(size=(6, 4))
        sims = cosine_matrix(m, m)
        assert (sims <= 1.0 + 1e-9).all()
        assert (sims >= -1.0 - 1e-9).all()


class TestEmbedBatchParity:
    TEXTS = [
        "how do i implement a binary search tree in python",
        "compose a wedding toast with a friendly voice",
        "",  # empty text stays an all-zero row
        "x",  # shorter than every n-gram order
        "Hello World  Hello World",
        "how do i implement a binary search tree in python",  # duplicate
    ]

    def test_bit_identical_to_scalar(self):
        m = EmbeddingModel()
        batch = m.embed_batch(self.TEXTS)
        for row, text in zip(batch, self.TEXTS):
            assert (row == m.embed(text)).all()

    def test_bit_identical_under_alt_config(self):
        m = EmbeddingModel(dim=128, char_orders=(2,), word_orders=(1, 2))
        batch = m.embed_batch(self.TEXTS)
        for row, text in zip(batch, self.TEXTS):
            assert (row == m.embed(text)).all()

    def test_accepts_any_iterable(self):
        m = EmbeddingModel(dim=32)
        batch = m.embed_batch(t for t in ("a b", "c d"))
        assert batch.shape == (2, 32)

    def test_empty_iterable(self):
        m = EmbeddingModel(dim=32)
        out = m.embed_batch(iter(()))
        assert out.shape == (0, 32)
        assert out.dtype == np.float64
