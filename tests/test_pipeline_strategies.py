"""Tests for data-selection strategies."""

import numpy as np
import pytest

from repro.pipeline.collect import SelectedPrompt
from repro.pipeline.strategies import (
    ModsSelection,
    RandomSelection,
    TagDiversitySelection,
    TopQualitySelection,
    apply_strategy,
)
from repro.world.prompts import PromptFactory


@pytest.fixture(scope="module")
def pool():
    factory = PromptFactory(rng=np.random.default_rng(50))
    rng = np.random.default_rng(51)
    items = []
    for _ in range(80):
        prompt = factory.make_prompt()
        items.append(
            SelectedPrompt(
                prompt=prompt,
                predicted_category=prompt.category,
                quality=float(rng.uniform(0.5, 1.0)),
            )
        )
    return items


_ALL = [
    RandomSelection(seed=1),
    TopQualitySelection(),
    ModsSelection(),
    TagDiversitySelection(),
]


class TestCommonContract:
    @pytest.mark.parametrize("strategy", _ALL, ids=lambda s: s.name)
    def test_returns_k_unique_valid_indices(self, strategy, pool):
        chosen = strategy.select(pool, 20)
        assert len(chosen) == 20
        assert len(set(chosen)) == 20
        assert all(0 <= i < len(pool) for i in chosen)

    @pytest.mark.parametrize("strategy", _ALL, ids=lambda s: s.name)
    def test_k_zero(self, strategy, pool):
        assert strategy.select(pool, 0) == []

    @pytest.mark.parametrize("strategy", _ALL, ids=lambda s: s.name)
    def test_k_capped_at_pool(self, strategy, pool):
        assert len(strategy.select(pool, 1000)) == len(pool)

    @pytest.mark.parametrize("strategy", _ALL, ids=lambda s: s.name)
    def test_negative_k_rejected(self, strategy, pool):
        with pytest.raises(ValueError):
            strategy.select(pool, -1)

    @pytest.mark.parametrize("strategy", _ALL, ids=lambda s: s.name)
    def test_deterministic(self, strategy, pool):
        assert strategy.select(pool, 15) == strategy.select(pool, 15)


class TestTopQuality:
    def test_picks_highest_scores(self, pool):
        chosen = TopQualitySelection().select(pool, 10)
        picked_min = min(pool[i].quality for i in chosen)
        unpicked_max = max(
            item.quality for i, item in enumerate(pool) if i not in set(chosen)
        )
        assert picked_min >= unpicked_max


class TestMods:
    def test_quality_prefilter_respected(self, pool):
        chosen = ModsSelection(quality_fraction=0.5).select(pool, 10)
        cutoff = sorted((item.quality for item in pool), reverse=True)[
            len(pool) // 2 - 1
        ]
        assert all(pool[i].quality >= cutoff - 1e-9 for i in chosen)

    def test_more_diverse_than_top_quality(self, pool):
        from repro.embedding.model import EmbeddingModel
        from repro.embedding.similarity import pairwise_cosine

        embedder = EmbeddingModel()

        def mean_pairwise_sim(indices):
            mat = embedder.embed_batch([pool[i].prompt.text for i in indices])
            sims = pairwise_cosine(mat)
            n = len(indices)
            return (sims.sum() - n) / (n * (n - 1))

        mods = ModsSelection(quality_fraction=1.0).select(pool, 15)
        top = TopQualitySelection().select(pool, 15)
        assert mean_pairwise_sim(mods) <= mean_pairwise_sim(top) + 0.02

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ModsSelection(quality_fraction=0.0)


class TestTagDiversity:
    def test_covers_more_categories_than_random(self, pool):
        k = 14
        tag_chosen = TagDiversitySelection().select(pool, k)
        rand_chosen = RandomSelection(seed=3).select(pool, k)
        tag_cats = {pool[i].predicted_category for i in tag_chosen}
        rand_cats = {pool[i].predicted_category for i in rand_chosen}
        assert len(tag_cats) >= len(rand_cats)

    def test_first_pick_has_most_tags(self, pool):
        from repro.world.aspects import find_cues

        chosen = TagDiversitySelection().select(pool, 1)
        n_tags = [len(find_cues(item.prompt.text)) + 1 for item in pool]
        assert n_tags[chosen[0]] == max(n_tags)


class TestApplyStrategy:
    def test_returns_items_in_pick_order(self, pool):
        strategy = TopQualitySelection()
        items = apply_strategy(strategy, pool, 5)
        indices = strategy.select(pool, 5)
        assert items == [pool[i] for i in indices]
