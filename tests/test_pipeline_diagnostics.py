"""Tests for the pipeline health diagnostics."""

import pytest

from repro.pipeline.collect import PromptCollector
from repro.pipeline.diagnostics import (
    StageReport,
    classifier_report,
    dedup_report,
    junk_filter_report,
    pipeline_health,
)


@pytest.fixture(scope="module")
def graded(small_corpus):
    corpus = list(small_corpus)
    result = PromptCollector(seed=9).collect(corpus)
    return corpus, result


class TestStageReport:
    def test_precision_recall_f1(self):
        report = StageReport("x", true_positives=8, false_positives=2, false_negatives=2)
        assert report.precision == pytest.approx(0.8)
        assert report.recall == pytest.approx(0.8)
        assert report.f1 == pytest.approx(0.8)

    def test_degenerate_cases(self):
        empty = StageReport("x", 0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.f1 == 1.0


class TestDedupReport:
    def test_high_recall_on_generated_duplicates(self, graded):
        corpus, result = graded
        report = dedup_report(corpus, result)
        assert report.recall > 0.6

    def test_counts_consistent(self, graded):
        corpus, result = graded
        report = dedup_report(corpus, result)
        n_dups = sum(1 for p in corpus if p.dup_of is not None)
        assert report.true_positives + report.false_negatives == n_dups


class TestJunkFilterReport:
    def test_junk_caught(self, graded):
        corpus, result = graded
        report = junk_filter_report(corpus, result)
        assert report.recall > 0.9

    def test_few_clean_prompts_lost(self, graded):
        corpus, result = graded
        report = junk_filter_report(corpus, result)
        n_clean = sum(1 for p in corpus if not p.is_junk and p.dup_of is None)
        assert report.false_positives / max(n_clean, 1) < 0.25


class TestClassifierReport:
    def test_accuracy_reported(self, graded):
        _, result = graded
        report = classifier_report(result)
        assert report["accuracy"] > 0.6
        assert report["n"] == len(result.selected)

    def test_empty_result(self):
        from repro.pipeline.collect import CollectionResult

        assert classifier_report(CollectionResult([], 0, 0, 0, 0))["accuracy"] == 0.0


class TestPipelineHealth:
    def test_full_report_shape(self, graded):
        corpus, result = graded
        health = pipeline_health(corpus, result)
        assert set(health) == {
            "dedup",
            "junk_filter",
            "classifier",
            "junk_leak_rate",
            "survival_rate",
        }
        assert 0.0 < health["survival_rate"] <= 1.0


class TestRunnerAndShardedInputs:
    """The reports accept PipelineResult and sharded-dedup output alike."""

    @pytest.fixture(scope="class")
    def runner_result(self, small_corpus):
        from repro.pipeline import PipelineConfig, PipelineRunner

        return PipelineRunner(PipelineConfig(seed=9)).run(list(small_corpus))

    def test_reports_accept_pipeline_result(self, small_corpus, runner_result):
        corpus = list(small_corpus)
        health = pipeline_health(corpus, runner_result)
        assert health["dedup"] == dedup_report(corpus, runner_result.collection)
        assert classifier_report(runner_result) == classifier_report(
            runner_result.collection
        )

    def test_one_shard_sharded_reports_identical(self, small_corpus):
        from repro.pipeline.collect import CollectionConfig

        corpus = list(small_corpus)
        mono = PromptCollector(seed=9).collect(corpus)
        sharded = PromptCollector(
            config=CollectionConfig(dedup_shards=1, dedup_backend="sharded"), seed=9
        ).collect(corpus)
        mono_health = pipeline_health(corpus, mono)
        sharded_health = pipeline_health(corpus, sharded)
        assert sharded_health["dedup"] == mono_health["dedup"]
        assert sharded_health["junk_filter"] == mono_health["junk_filter"]
        assert sharded_health["classifier"] == mono_health["classifier"]
        assert sharded_health["survival_rate"] == mono_health["survival_rate"]

    def test_list_valued_stats_accepted(self, graded):
        """A JSON round trip turns the uid sets into lists; reports must
        still produce identical numbers."""
        import dataclasses

        corpus, result = graded
        listified = dataclasses.replace(
            result,
            stats={
                k: sorted(v) if isinstance(v, (set, frozenset)) else v
                for k, v in result.stats.items()
            },
        )
        assert dedup_report(corpus, listified) == dedup_report(corpus, result)
        assert junk_filter_report(corpus, listified) == junk_filter_report(
            corpus, result
        )
