"""Tests for JSONL IO helpers."""

from dataclasses import dataclass

import numpy as np

from repro.utils.io import dump_jsonl, load_jsonl, to_jsonable


@dataclass(frozen=True)
class _Record:
    name: str
    tags: frozenset
    score: float


class TestToJsonable:
    def test_dataclass(self):
        rec = _Record(name="a", tags=frozenset({"y", "x"}), score=1.5)
        out = to_jsonable(rec)
        assert out == {"name": "a", "tags": ["x", "y"], "score": 1.5}

    def test_numpy_scalar(self):
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.int64(3)) == 3

    def test_nested_structures(self):
        out = to_jsonable({"k": [frozenset({"a"}), (1, 2)]})
        assert out == {"k": [["a"], [1, 2]]}

    def test_plain_values_pass_through(self):
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None


class TestJsonlRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [{"a": 1}, {"a": 2}]
        assert dump_jsonl(records, path) == 2
        assert list(load_jsonl(path)) == records

    def test_dataclass_records(self, tmp_path):
        path = tmp_path / "recs.jsonl"
        dump_jsonl([_Record("n", frozenset({"t"}), 0.5)], path)
        loaded = list(load_jsonl(path))
        assert loaded[0]["name"] == "n"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(list(load_jsonl(path))) == 2

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "x.jsonl"
        dump_jsonl([{"ok": True}], path)
        assert path.exists()

    def test_unicode_preserved(self, tmp_path):
        path = tmp_path / "u.jsonl"
        dump_jsonl([{"text": "héllo ␞"}], path)
        assert next(load_jsonl(path))["text"] == "héllo ␞"
