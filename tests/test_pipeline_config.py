"""Tests for the unified PipelineConfig surface and the deprecation shims."""

import json

import pytest

from repro.errors import ConfigError
from repro.pipeline import (
    CollectionConfig,
    GenerationConfig,
    PairGenerator,
    PipelineConfig,
    PromptCollector,
    RunnerConfig,
)
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy


def _full_config():
    return PipelineConfig(
        collection=CollectionConfig(
            dedup_threshold=0.9,
            quality_threshold=0.55,
            target_size=40,
            dedup_shards=4,
            dedup_backend="sharded",
        ),
        generation=GenerationConfig(max_rounds=2, curate=False),
        runner=RunnerConfig(
            checkpoint_every=8,
            fault_plan=FaultPlan(
                seed=9,
                completion_failure_rate=0.2,
                latency_spike_rate=0.1,
                latency_spike_ticks=6,
                outages=(OutageWindow(model="teacher-gpt-4", start=5, end=9),),
            ),
            retry_policy=RetryPolicy(max_retries=2, deadline_ticks=40.0, jitter=0.5),
            fail_after_stage="classify",
            fail_after_pairs=3,
        ),
        seed=11,
    )


class TestRoundTrip:
    def test_default_round_trip(self):
        config = PipelineConfig()
        assert PipelineConfig.from_dict(config.as_dict()) == config

    def test_full_round_trip_through_json(self):
        config = _full_config()
        restored = PipelineConfig.from_dict(json.loads(json.dumps(config.as_dict())))
        assert restored == config
        assert restored.runner.fault_plan.outages == config.runner.fault_plan.outages
        assert restored.runner.retry_policy == config.runner.retry_policy

    def test_as_dict_is_json_safe(self):
        json.dumps(_full_config().as_dict())

    def test_section_round_trips(self):
        for section in (CollectionConfig(dedup_shards=2), GenerationConfig(max_rounds=1)):
            assert type(section).from_dict(section.as_dict()) == section

    def test_runner_config_none_fields(self):
        config = RunnerConfig()
        restored = RunnerConfig.from_dict(config.as_dict())
        assert restored == config
        assert restored.fault_plan is None
        assert restored.retry_policy is None


class TestValidation:
    def test_validates_nested_sections(self):
        with pytest.raises(ConfigError):
            PipelineConfig(
                collection=CollectionConfig(dedup_threshold=2.0)
            ).validate()
        with pytest.raises(ConfigError):
            PipelineConfig(generation=GenerationConfig(max_rounds=-1)).validate()

    def test_bad_checkpoint_every(self):
        with pytest.raises(ConfigError):
            PipelineConfig(runner=RunnerConfig(checkpoint_every=0)).validate()

    def test_bad_fail_after_stage(self):
        with pytest.raises(ConfigError):
            PipelineConfig(
                runner=RunnerConfig(fail_after_stage="nonsense")
            ).validate()

    def test_bad_fail_after_pairs(self):
        with pytest.raises(ConfigError):
            PipelineConfig(runner=RunnerConfig(fail_after_pairs=0)).validate()

    def test_bad_dedup_backend(self):
        with pytest.raises(ConfigError):
            CollectionConfig(dedup_backend="faiss").validate()

    def test_bad_dedup_shards(self):
        with pytest.raises(ConfigError):
            CollectionConfig(dedup_shards=0).validate()


class TestRemovedFlatKwargs:
    def test_collector_flat_kwargs_raise_naming_field(self):
        with pytest.raises(TypeError, match="quality_threshold"):
            PromptCollector(quality_threshold=0.5, skip_dedup=True)

    def test_collector_flat_kwargs_error_points_at_config(self):
        with pytest.raises(TypeError, match="CollectionConfig"):
            PromptCollector(config=CollectionConfig(), quality_threshold=0.4)

    def test_collector_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="nonsense"):
            PromptCollector(nonsense=1)

    def test_collector_accepts_pipeline_config(self):
        config = PipelineConfig(
            collection=CollectionConfig(quality_threshold=0.5), seed=9
        )
        collector = PromptCollector(config=config)
        assert collector.config == config.collection
        assert collector.seed == 9

    def test_collector_explicit_seed_beats_pipeline_seed(self):
        collector = PromptCollector(config=PipelineConfig(seed=9), seed=2)
        assert collector.seed == 2

    def test_generator_flat_kwargs_raise_naming_field(self):
        with pytest.raises(TypeError, match="max_rounds"):
            PairGenerator(max_rounds=1, curate=False)

    def test_generator_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="nonsense"):
            PairGenerator(nonsense=1)

    def test_generator_accepts_pipeline_config(self):
        config = PipelineConfig(generation=GenerationConfig(max_rounds=2))
        generator = PairGenerator(config=config)
        assert generator.config == config.generation

    def test_generator_section_config_is_silent(self, recwarn):
        PairGenerator(config=GenerationConfig(max_rounds=2))
        assert not [w for w in recwarn if w.category is DeprecationWarning]
