"""Tests for k-center greedy selection."""

import numpy as np
import pytest

from repro.cluster.kcenter import k_center_greedy


class TestKCenterGreedy:
    def test_empty_k(self):
        assert k_center_greedy(np.ones((5, 2)), 0) == []

    def test_empty_matrix(self):
        assert k_center_greedy(np.zeros((0, 2)), 3) == []

    def test_k_capped_at_n(self):
        assert len(k_center_greedy(np.random.default_rng(0).normal(size=(4, 2)), 10)) == 4

    def test_selection_unique(self):
        pts = np.random.default_rng(1).normal(size=(30, 4))
        chosen = k_center_greedy(pts, 10)
        assert len(set(chosen)) == 10

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            k_center_greedy(np.ones((3, 2)), -1)

    def test_first_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            k_center_greedy(np.ones((3, 2)), 2, first=5)

    def test_explicit_first_honoured(self):
        pts = np.random.default_rng(2).normal(size=(10, 3))
        chosen = k_center_greedy(pts, 3, first=7)
        assert chosen[0] == 7

    def test_covers_separated_clusters(self):
        # Three well-separated clusters: picking 3 centers must hit each.
        rng = np.random.default_rng(3)
        clusters = [rng.normal(loc=c, scale=0.05, size=(10, 2)) for c in ((0, 0), (10, 0), (0, 10))]
        pts = np.vstack(clusters)
        chosen = k_center_greedy(pts, 3)
        origins = {idx // 10 for idx in chosen}
        assert origins == {0, 1, 2}

    def test_greedy_picks_farthest_second(self):
        pts = np.array([[0.0], [1.0], [10.0]])
        chosen = k_center_greedy(pts, 2, first=0)
        assert chosen == [0, 2]

    def test_deterministic(self):
        pts = np.random.default_rng(5).normal(size=(40, 6))
        assert k_center_greedy(pts, 8) == k_center_greedy(pts, 8)
