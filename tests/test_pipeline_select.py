"""Tests for the composite prompt-quality scorer."""

import numpy as np
import pytest

from repro.llm.engine import SimulatedLLM
from repro.pipeline.select import QualityScorer
from repro.world.prompts import PromptFactory


@pytest.fixture(scope="module")
def scorer(small_corpus):
    grader = SimulatedLLM("baichuan-13b")
    return QualityScorer(grader=grader).fit([p.text for p in small_corpus])


class TestQualityScorer:
    def test_scores_bounded(self, scorer, small_corpus):
        for prompt in small_corpus[:50]:
            assert 0.0 <= scorer.score(prompt.text) <= 1.0

    def test_junk_scores_below_real(self, scorer, small_corpus):
        junk = [p for p in small_corpus if p.is_junk]
        real = [p for p in small_corpus if not p.is_junk]
        junk_scores = [scorer.score(p.text) for p in junk]
        real_scores = [scorer.score(p.text) for p in real]
        assert max(junk_scores) < min(real_scores)

    def test_unfitted_scorer_uses_llm_only(self):
        scorer = QualityScorer(grader=SimulatedLLM("baichuan-13b"))
        factory = PromptFactory(rng=np.random.default_rng(0))
        score = scorer.score(factory.make_prompt().text)
        assert 0.0 <= score <= 1.0

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            QualityScorer(grader=SimulatedLLM("baichuan-13b"), llm_weight=1.5)

    def test_deterministic(self, scorer):
        text = "how do i deduplicate entries in a csv file?"
        assert scorer.score(text) == scorer.score(text)
