"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.utils.stats import (
    Summary,
    bootstrap_ci,
    length_controlled_win_rate,
    logistic,
    mean,
    summarize,
    win_rate,
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert mean([]) == 0.0


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([1.0, 1.0]) == 100.0

    def test_ties_count_half(self):
        assert win_rate([0.5, 0.5]) == 50.0

    def test_empty(self):
        assert win_rate([]) == 0.0

    def test_numpy_array_accepted(self):
        assert win_rate(np.array([1.0, 0.0])) == 50.0


class TestLogistic:
    def test_zero(self):
        assert logistic(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert logistic(2.0) + logistic(-2.0) == pytest.approx(1.0)

    def test_extreme_values_stable(self):
        assert logistic(1000.0) == pytest.approx(1.0)
        assert logistic(-1000.0) == pytest.approx(0.0)


class TestBootstrapCi:
    def test_contains_mean_for_tight_sample(self, rng):
        values = [5.0] * 20
        lo, hi = bootstrap_ci(values, rng)
        assert lo == hi == 5.0

    def test_empty(self, rng):
        assert bootstrap_ci([], rng) == (0.0, 0.0)

    def test_single_value(self, rng):
        assert bootstrap_ci([3.0], rng) == (3.0, 3.0)

    def test_interval_ordering(self, rng):
        values = list(rng.normal(0, 1, 50))
        lo, hi = bootstrap_ci(values, rng)
        assert lo <= hi

    def test_wider_alpha_narrows_interval(self, rng):
        values = list(np.random.default_rng(0).normal(0, 1, 80))
        lo1, hi1 = bootstrap_ci(values, np.random.default_rng(1), alpha=0.05)
        lo2, hi2 = bootstrap_ci(values, np.random.default_rng(1), alpha=0.5)
        assert (hi2 - lo2) <= (hi1 - lo1)


class TestLengthControlledWinRate:
    def test_no_length_variation_falls_back_to_raw(self):
        outcomes = [1.0, 0.0, 1.0, 1.0]
        deltas = [0.0, 0.0, 0.0, 0.0]
        assert length_controlled_win_rate(outcomes, deltas) == pytest.approx(
            win_rate(outcomes)
        )

    def test_empty(self):
        assert length_controlled_win_rate([], []) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            length_controlled_win_rate([1.0], [0.0, 0.1])

    def test_removes_pure_length_effect(self):
        # Wins exactly when longer: LC at zero length delta should sit near
        # 50%, far below the raw rate computed on a long-skewed sample.
        rng = np.random.default_rng(0)
        deltas = list(rng.normal(0.5, 1.0, 400))
        outcomes = [1.0 if d > 0 else 0.0 for d in deltas]
        raw = win_rate(outcomes)
        lc = length_controlled_win_rate(outcomes, deltas)
        assert raw > 60.0
        assert abs(lc - 50.0) < abs(raw - 50.0)

    def test_genuine_quality_difference_survives(self):
        rng = np.random.default_rng(1)
        deltas = list(rng.normal(0.0, 1.0, 300))
        outcomes = [1.0 if rng.random() < 0.8 else 0.0 for _ in deltas]
        lc = length_controlled_win_rate(outcomes, deltas)
        assert lc > 65.0


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == Summary(0, 0.0, 0.0, 0.0, 0.0)

    def test_basic(self):
        s = summarize([1.0, 3.0])
        assert s.n == 2
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0
        assert s.max == 3.0

    def test_std_zero_for_constant(self):
        assert summarize([2.0, 2.0, 2.0]).std == 0.0
