"""Tests for the Figure-3a collection pipeline."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.collect import CollectionConfig, PromptCollector
from repro.world.categories import category_names


@pytest.fixture(scope="module")
def collected(small_corpus):
    return PromptCollector(seed=5).collect(list(small_corpus))


class TestCollectionConfig:
    @pytest.mark.parametrize("kwargs", [
        {"dedup_threshold": 0.0},
        {"dedup_threshold": 1.5},
        {"quality_threshold": -0.1},
        {"target_size": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CollectionConfig(**kwargs).validate()


class TestCollect:
    def test_empty_corpus(self):
        result = PromptCollector().collect([])
        assert result.n_input == 0
        assert result.selected == []

    def test_stage_counts_monotone(self, collected):
        assert collected.n_input >= collected.n_after_dedup
        assert collected.n_after_dedup >= collected.n_after_quality
        assert collected.n_after_quality >= collected.n_final

    def test_dedup_removes_duplicates(self, collected, small_corpus):
        n_dups = sum(1 for p in small_corpus if p.dup_of is not None)
        assert collected.stats["removed_by_dedup"] >= n_dups * 0.6

    def test_quality_filter_removes_junk(self, collected):
        assert collected.junk_leak_rate < 0.02

    def test_predicted_categories_valid(self, collected):
        valid = set(category_names())
        assert all(s.predicted_category in valid for s in collected.selected)

    def test_category_prediction_mostly_correct(self, collected):
        hits = sum(
            1
            for s in collected.selected
            if s.predicted_category == s.prompt.category
        )
        assert hits / len(collected.selected) > 0.65

    def test_quality_scores_recorded(self, collected):
        assert all(0.0 <= s.quality <= 1.0 for s in collected.selected)

    def test_skip_flags(self, small_corpus):
        config = CollectionConfig(skip_dedup=True, skip_quality_filter=True)
        result = PromptCollector(config=config, seed=5).collect(list(small_corpus))
        assert result.n_after_dedup == result.n_input
        assert result.n_after_quality == result.n_after_dedup

    def test_target_size_caps_output(self, small_corpus):
        config = CollectionConfig(target_size=30)
        result = PromptCollector(config=config, seed=5).collect(list(small_corpus))
        assert result.n_final == 30

    def test_deterministic(self, small_corpus):
        a = PromptCollector(seed=5).collect(list(small_corpus))
        b = PromptCollector(seed=5).collect(list(small_corpus))
        assert [s.prompt.uid for s in a.selected] == [s.prompt.uid for s in b.selected]
