"""Tests for the LLM judge and benchmark machinery."""

import numpy as np
import pytest

from repro.baselines.base import NoApe
from repro.core.golden import render_complement
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.arena_hard import ArenaHardBenchmark
from repro.judge.judge import JudgeConfig, LlmJudge
from repro.judge.suites import (
    HUMAN_EVAL_SCENARIOS,
    build_alpaca_suite,
    build_arena_hard_suite,
    build_human_eval_suite,
)
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory


class TestSuites:
    def test_arena_hard_prompts_are_hard(self):
        suite = build_arena_hard_suite(30, seed=1)
        assert len(suite) == 30
        for prompt in suite:
            assert prompt.hard
            assert prompt.needs & {"logic_trap", "constraints", "edge_cases"}

    def test_alpaca_suite_general_mix(self):
        suite = build_alpaca_suite(60, seed=2)
        categories = {p.category for p in suite}
        assert len(categories) >= 8

    def test_suites_deterministic(self):
        a = build_alpaca_suite(10, seed=3)
        b = build_alpaca_suite(10, seed=3)
        assert [p.text for p in a] == [p.text for p in b]

    def test_human_eval_scenarios(self):
        suites = build_human_eval_suite(per_scenario=5, seed=4)
        assert set(suites) == set(HUMAN_EVAL_SCENARIOS)
        for scenario, suite in suites.items():
            assert len(suite) == 5
            assert all(p.category == HUMAN_EVAL_SCENARIOS[scenario] for p in suite)


class TestJudge:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            JudgeConfig(noise_sigma=-1.0).validate()

    def test_pairwise_outcomes_valid(self, factory):
        judge = LlmJudge()
        engine = SimulatedLLM("gpt-4-0613")
        for _ in range(10):
            prompt = factory.make_prompt()
            a = engine.respond(prompt.text)
            b = engine.respond(prompt.text, supplement=render_complement(set(prompt.needs), salt="j"))
            verdict = judge.pairwise(prompt, a, b)
            # both-orders averaging yields quarter steps
            assert verdict.outcome in (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_position_bias_cancelled_by_both_orders(self, factory):
        """A strongly position-biased judge is fair when it judges both
        presentation orders — the mitigation the real benchmarks use."""
        prompt = factory.make_prompt()
        engine = SimulatedLLM("gpt-4-0613")
        response = engine.respond(prompt.text)
        other = engine.respond(prompt.text + " ")
        biased_single = LlmJudge(
            JudgeConfig(noise_sigma=0.0, position_bias=2.0, both_orders=False, tie_margin=0.05)
        )
        biased_both = LlmJudge(
            JudgeConfig(noise_sigma=0.0, position_bias=2.0, both_orders=True, tie_margin=0.05)
        )
        # Single order: the first-presented response always wins.
        assert biased_single.pairwise(prompt, response, other).outcome == 1.0
        assert biased_single.pairwise(prompt, other, response).outcome == 1.0
        # Both orders: the bias cancels to a draw.
        assert biased_both.pairwise(prompt, response, other).outcome == 0.5

    def test_identical_responses_tie(self, factory):
        judge = LlmJudge(JudgeConfig(noise_sigma=0.0))
        engine = SimulatedLLM("gpt-4-0613")
        prompt = factory.make_prompt()
        response = engine.respond(prompt.text)
        assert judge.pairwise(prompt, response, response).outcome == 0.5

    def test_much_better_response_wins(self):
        judge = LlmJudge(JudgeConfig(noise_sigma=0.05))
        factory = PromptFactory(rng=np.random.default_rng(5))
        wins = 0
        engine = SimulatedLLM("gpt-4-turbo-2024-04-09")
        weak = SimulatedLLM("gpt-3.5-turbo-1106")
        n = 30
        for _ in range(n):
            prompt = factory.make_prompt(hard=True)
            good = engine.respond(
                prompt.text, supplement=render_complement(set(prompt.needs), salt="g")
            )
            bad = weak.respond(prompt.text)
            wins += judge.pairwise(prompt, good, bad).outcome
        assert wins / n > 0.75

    def test_length_bias_present(self, factory):
        """With zero quality difference, the longer response is favoured."""
        biased = LlmJudge(JudgeConfig(noise_sigma=0.0, length_bias=2.0, tie_margin=0.01))
        prompt = factory.make_prompt()
        short = "Here is a considered answer about things. Done."
        long = short + " " + " ".join(["More supporting sentences follow."] * 20)
        verdict = biased.pairwise(prompt, long, short)
        assert verdict.outcome == 1.0

    def test_absolute_score_bounded(self, factory):
        judge = LlmJudge()
        engine = SimulatedLLM("gpt-3.5-turbo-1106")
        for _ in range(10):
            prompt = factory.make_prompt()
            score = judge.absolute_score(prompt, engine.respond(prompt.text))
            assert 0.0 <= score <= 5.0

    def test_judge_deterministic(self, factory):
        judge = LlmJudge()
        prompt = factory.make_prompt()
        a, b = "response alpha text", "response beta text"
        assert judge.pairwise(prompt, a, b) == judge.pairwise(prompt, a, b)

    def test_absolute_score_batch_bit_parity(self, factory):
        # The policy layer scores candidate fan-outs through the batch
        # path; it must agree with the scalar grader bit for bit.
        judge = LlmJudge()
        engine = SimulatedLLM("gpt-3.5-turbo-1106")
        prompt = factory.make_prompt()
        responses = [engine.respond(prompt.text) for _ in range(8)]
        responses.append("")  # degenerate response grades too
        batch = judge.absolute_score_batch(prompt, responses)
        assert batch == [judge.absolute_score(prompt, r) for r in responses]
        assert all(0.0 <= score <= 5.0 for score in batch)
        assert judge.absolute_score_batch(prompt, []) == []


class TestBenchmarks:
    @pytest.fixture(scope="class")
    def arena(self):
        return ArenaHardBenchmark(build_arena_hard_suite(40, seed=6))

    @pytest.fixture(scope="class")
    def alpaca(self):
        return AlpacaEvalBenchmark(build_alpaca_suite(50, seed=7))

    def test_arena_scores_in_range(self, arena):
        result = arena.evaluate(SimulatedLLM("gpt-4-0613"), NoApe())
        assert 0.0 <= result.score <= 100.0
        assert result.n_prompts == 40

    def test_arena_stronger_model_scores_higher(self, arena):
        strong = arena.evaluate(SimulatedLLM("gpt-4-turbo-2024-04-09"), NoApe()).score
        weak = arena.evaluate(SimulatedLLM("gpt-3.5-turbo-1106"), NoApe()).score
        assert strong > weak

    def test_alpaca_reference_model_near_fifty(self, alpaca):
        result = alpaca.evaluate(SimulatedLLM("gpt-4-1106-preview"), NoApe())
        assert 40.0 <= result.win_rate <= 60.0

    def test_alpaca_lc_reported(self, alpaca):
        result = alpaca.evaluate(SimulatedLLM("qwen2-72b-chat"), NoApe())
        assert 0.0 <= result.lc_win_rate <= 100.0

    def test_lc_raises_short_models(self, alpaca):
        """The paper's GPT-3.5 row: LC > raw because the model is terse."""
        result = alpaca.evaluate(SimulatedLLM("gpt-3.5-turbo-1106"), NoApe())
        assert result.lc_win_rate > result.win_rate

    def test_benchmark_deterministic(self, arena):
        a = arena.evaluate(SimulatedLLM("gpt-4-0613"), NoApe())
        b = arena.evaluate(SimulatedLLM("gpt-4-0613"), NoApe())
        assert a.score == b.score
