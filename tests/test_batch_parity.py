"""The determinism contract: every batched path == its scalar loop, bitwise.

The batched hot paths (``embed_batch``, ``search_batch``,
``predict_aspects_batch``, ``augment_batch``, ``ask_batch``) promise
*bit-identical* results to their scalar counterparts — not approximately
equal, identical.  That only holds because both sides funnel through the
same BLAS kernel calls (per-row gemv, per-row 1-D norms, ``np.add.at`` in
feature order); a GEMM or an axis-norm would drift in the last ulp.  These
tests pin the contract across seeds and edge shapes so a future "obvious"
vectorization can't silently break it.
"""

import numpy as np
import pytest

from repro import build_default_dataset
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.core.pas import PasModel
from repro.embedding.model import EmbeddingModel
from repro.errors import NotFittedError
from repro.serve.cache import LruCache
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


def _corpus(n, seed):
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


class TestEmbedBatchParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bitwise_across_seeds(self, seed):
        texts = _corpus(24, seed)
        model = EmbeddingModel()
        batch = model.embed_batch(texts)
        for row, text in zip(batch, texts):
            assert (row == model.embed(text)).all()


class TestSearchBatchParity:
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bitwise_vs_per_query_search(self, metric, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(120, 16))
        queries = rng.normal(size=(20, 16))
        index = HnswIndex(dim=16, metric=metric, seed=seed)
        index.add_batch(points, range(len(points)))
        assert index.search_batch(queries, 5) == [
            index.search(q, 5) for q in queries
        ]

    def test_recall_vs_bruteforce(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(200, 12))
        queries = rng.normal(size=(30, 12))
        hnsw = HnswIndex(dim=12, ef_search=80, seed=0)
        hnsw.add_batch(points, range(len(points)))
        brute = BruteForceIndex(dim=12)
        for i, p in enumerate(points):
            brute.add(p, key=i)
        recalls = []
        for hits, query in zip(hnsw.search_batch(queries, 10), queries):
            exact = {key for key, _ in brute.search(query, 10)}
            recalls.append(len({key for key, _ in hits} & exact) / 10)
        assert np.mean(recalls) > 0.9


class TestAugmentBatchParity:
    @pytest.fixture(scope="class")
    def pas_models(self):
        """Two independently trained models with different seeds."""
        models = []
        for seed in (3, 5):
            dataset = build_default_dataset(n_prompts=80, seed=seed, curate=True)
            models.append(
                PasModel(base_model="qwen2-7b-chat", seed=seed).train(dataset)
            )
        return models

    def test_exact_across_seeds(self, pas_models):
        prompts = _corpus(12, 9)
        prompts += prompts[:3]  # duplicates must round-trip too
        for model in pas_models:
            assert model.augment_batch(prompts) == [
                model.augment(p) for p in prompts
            ]

    def test_predict_aspects_batch_matches_scalar(self, pas_models):
        prompts = _corpus(8, 11)
        for model in pas_models:
            predictor = model.predictor
            assert predictor.predict_aspects_batch(prompts) == [
                predictor.predict_aspects(p) for p in prompts
            ]

    def test_empty_batch(self, pas_models):
        assert pas_models[0].augment_batch([]) == []
        assert pas_models[0].enhance_batch([]) == []

    def test_untrained_raises(self):
        with pytest.raises(NotFittedError):
            PasModel(base_model="qwen2-7b-chat").augment_batch(["hi there friend."])


class TestShardedSearchParity:
    """Thread-parallel sharded search == its scalar per-query loop, bitwise."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bitwise_vs_per_query_search(self, n_shards):
        rng = np.random.default_rng(n_shards)
        points = rng.normal(size=(100, 16))
        queries = rng.normal(size=(18, 16))
        index = ShardedHnswIndex(dim=16, n_shards=n_shards, seed=0)
        index.add_batch(points, range(len(points)))
        assert index.search_batch(queries, 5) == [
            index.search(q, 5) for q in queries
        ]

    def test_parallel_flag_changes_nothing(self):
        rng = np.random.default_rng(11)
        points = rng.normal(size=(60, 12))
        queries = rng.normal(size=(10, 12))
        index = ShardedHnswIndex(dim=12, n_shards=3, seed=2)
        index.add_batch(points, range(len(points)))
        assert index.search_batch(queries, 4, parallel=True) == index.search_batch(
            queries, 4, parallel=False
        )


class TestAugmentEmbedCacheParity:
    """The embedding memo is transparent: cached == uncached, bitwise."""

    def test_augment_with_and_without_cache(self, trained_pas):
        prompts = _corpus(10, 17)
        cache: LruCache = LruCache(capacity=4)  # smaller than the prompt set
        cached_twice = [
            [trained_pas.augment(p, embed_cache=cache) for p in prompts]
            for _ in range(2)
        ]
        plain = [trained_pas.augment(p) for p in prompts]
        assert cached_twice[0] == cached_twice[1] == plain

    def test_augment_batch_with_cache(self, trained_pas):
        prompts = _corpus(8, 19)
        prompts += prompts[:3]
        cache: LruCache = LruCache(capacity=16)
        warm = trained_pas.augment_batch(prompts, embed_cache=cache)
        rewarm = trained_pas.augment_batch(prompts, embed_cache=cache)
        assert warm == rewarm == trained_pas.augment_batch(prompts)
        assert cache.hits > 0

    def test_augment_with_embeddings_matches_scalar(self, trained_pas):
        prompts = _corpus(6, 23)
        vectors = trained_pas.embed_prompts(prompts)
        assert trained_pas.augment_with_embeddings(prompts, vectors) == [
            trained_pas.augment(p) for p in prompts
        ]


class TestGatewayBatchParity:
    def test_replay_matches_scalar_even_under_eviction(self, trained_pas):
        # cache capacity far below the number of unique prompts in the
        # batch, so planning-phase peeks and serving-phase puts interleave
        # with evictions; the replay must still match the scalar loop.
        prompts = _corpus(10, 13)
        traffic = prompts + prompts[:4] + prompts[::-1]
        requests = [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
        scalar = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4))
        batched = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4))
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        assert list(batched._complement_cache._data) == list(
            scalar._complement_cache._data
        )

    def test_replay_matches_scalar_with_both_tiers_thrashing(self, trained_pas):
        # Both cache tiers are smaller than the unique-prompt set, so the
        # replay exercises every path: complement evictions forcing
        # re-augmentation, embedding evictions forcing re-embeds, and the
        # planning phase's held values standing in for both.
        prompts = _corpus(10, 29)
        traffic = prompts + prompts[:5] + prompts[::-1]
        requests = [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
        scalar = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=3, embed_cache_size=4))
        batched = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=3, embed_cache_size=4))
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        assert [
            (key, value.tobytes())
            for key, value in batched._embed_cache._data.items()
        ] == [
            (key, value.tobytes())
            for key, value in scalar._embed_cache._data.items()
        ]


class TestMicroBatcherParity:
    def test_any_partition_matches_one_batch(self, trained_pas):
        prompts = _corpus(9, 31)
        traffic = prompts + prompts[:4]
        requests = [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
        direct = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4, embed_cache_size=4))
        expected = direct.ask_batch(requests)
        for max_batch, max_wait in ((1, 1), (3, 2), (5, 100)):
            gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4, embed_cache_size=4))
            batcher = MicroBatcher(gateway.ask_batch, max_batch=max_batch, max_wait=max_wait)
            assert batcher.run_arrivals(enumerate(requests, start=1)) == expected
            assert gateway.stats == direct.stats
