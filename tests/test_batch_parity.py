"""The determinism contract: every batched path == its scalar loop, bitwise.

The batched hot paths (``embed_batch``, ``search_batch``,
``predict_aspects_batch``, ``augment_batch``, ``ask_batch``) promise
*bit-identical* results to their scalar counterparts — not approximately
equal, identical.  That only holds because both sides funnel through the
same BLAS kernel calls (per-row gemv, per-row 1-D norms, ``np.add.at`` in
feature order); a GEMM or an axis-norm would drift in the last ulp.  These
tests pin the contract across seeds and edge shapes so a future "obvious"
vectorization can't silently break it.
"""

import numpy as np
import pytest

from repro import build_default_dataset
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.core.pas import PasModel
from repro.embedding.model import EmbeddingModel
from repro.errors import NotFittedError
from repro.serve.gateway import PasGateway
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


def _corpus(n, seed):
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


class TestEmbedBatchParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bitwise_across_seeds(self, seed):
        texts = _corpus(24, seed)
        model = EmbeddingModel()
        batch = model.embed_batch(texts)
        for row, text in zip(batch, texts):
            assert (row == model.embed(text)).all()


class TestSearchBatchParity:
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bitwise_vs_per_query_search(self, metric, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(120, 16))
        queries = rng.normal(size=(20, 16))
        index = HnswIndex(dim=16, metric=metric, seed=seed)
        index.add_batch(points, range(len(points)))
        assert index.search_batch(queries, 5) == [
            index.search(q, 5) for q in queries
        ]

    def test_recall_vs_bruteforce(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(200, 12))
        queries = rng.normal(size=(30, 12))
        hnsw = HnswIndex(dim=12, ef_search=80, seed=0)
        hnsw.add_batch(points, range(len(points)))
        brute = BruteForceIndex(dim=12)
        for i, p in enumerate(points):
            brute.add(p, key=i)
        recalls = []
        for hits, query in zip(hnsw.search_batch(queries, 10), queries):
            exact = {key for key, _ in brute.search(query, 10)}
            recalls.append(len({key for key, _ in hits} & exact) / 10)
        assert np.mean(recalls) > 0.9


class TestAugmentBatchParity:
    @pytest.fixture(scope="class")
    def pas_models(self):
        """Two independently trained models with different seeds."""
        models = []
        for seed in (3, 5):
            dataset = build_default_dataset(n_prompts=80, seed=seed, curate=True)
            models.append(
                PasModel(base_model="qwen2-7b-chat", seed=seed).train(dataset)
            )
        return models

    def test_exact_across_seeds(self, pas_models):
        prompts = _corpus(12, 9)
        prompts += prompts[:3]  # duplicates must round-trip too
        for model in pas_models:
            assert model.augment_batch(prompts) == [
                model.augment(p) for p in prompts
            ]

    def test_predict_aspects_batch_matches_scalar(self, pas_models):
        prompts = _corpus(8, 11)
        for model in pas_models:
            predictor = model.predictor
            assert predictor.predict_aspects_batch(prompts) == [
                predictor.predict_aspects(p) for p in prompts
            ]

    def test_empty_batch(self, pas_models):
        assert pas_models[0].augment_batch([]) == []
        assert pas_models[0].enhance_batch([]) == []

    def test_untrained_raises(self):
        with pytest.raises(NotFittedError):
            PasModel(base_model="qwen2-7b-chat").augment_batch(["hi there friend."])


class TestGatewayBatchParity:
    def test_replay_matches_scalar_even_under_eviction(self, trained_pas):
        # cache capacity far below the number of unique prompts in the
        # batch, so planning-phase peeks and serving-phase puts interleave
        # with evictions; the replay must still match the scalar loop.
        prompts = _corpus(10, 13)
        traffic = prompts + prompts[:4] + prompts[::-1]
        requests = [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
        scalar = PasGateway(pas=trained_pas, cache_size=4)
        batched = PasGateway(pas=trained_pas, cache_size=4)
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        assert list(batched._complement_cache._data) == list(
            scalar._complement_cache._data
        )
