"""Tests for Bradley-Terry ratings and the leaderboard."""

import numpy as np
import pytest

from repro.judge.rating import RatingEntry, bradley_terry, leaderboard


class TestBradleyTerry:
    def test_symmetric_players_equal_strength(self):
        wins = np.array([[0.0, 5.0], [5.0, 0.0]])
        strengths = bradley_terry(wins)
        assert strengths[0] == pytest.approx(strengths[1], abs=1e-6)

    def test_dominant_player_stronger(self):
        wins = np.array([[0.0, 9.0], [1.0, 0.0]])
        strengths = bradley_terry(wins)
        assert strengths[0] > strengths[1]
        # P(0 beats 1) should recover ~0.9
        p = 1.0 / (1.0 + np.exp(strengths[1] - strengths[0]))
        assert p == pytest.approx(0.9, abs=0.02)

    def test_transitive_ordering(self):
        # A >> B >> C via pairwise games
        wins = np.array(
            [
                [0.0, 8.0, 9.0],
                [2.0, 0.0, 8.0],
                [1.0, 2.0, 0.0],
            ]
        )
        strengths = bradley_terry(wins)
        assert strengths[0] > strengths[1] > strengths[2]

    def test_isolated_player_neutral(self):
        wins = np.zeros((3, 3))
        wins[0, 1] = wins[1, 0] = 3.0  # players 0/1 tie; player 2 never plays
        strengths = bradley_terry(wins)
        assert strengths[2] == pytest.approx(np.mean(strengths[:2]), abs=0.5)

    def test_invalid_matrix(self):
        with pytest.raises(ValueError):
            bradley_terry(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            bradley_terry(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_zero_mean_normalisation(self):
        wins = np.array([[0.0, 3.0, 1.0], [2.0, 0.0, 4.0], [3.0, 1.0, 0.0]])
        strengths = bradley_terry(wins)
        assert float(strengths.mean()) == pytest.approx(0.0, abs=1e-9)


class TestLeaderboard:
    def test_ordering_and_scale(self):
        outcomes = [("a", "b", 1.0)] * 8 + [("a", "b", 0.0)] * 2
        board = leaderboard(["a", "b"], outcomes)
        assert board[0].name == "a"
        assert board[0].rating > 1000.0 > board[1].rating

    def test_ties_balance(self):
        outcomes = [("a", "b", 0.5)] * 10
        board = leaderboard(["a", "b"], outcomes)
        assert board[0].rating == pytest.approx(board[1].rating, abs=1.0)

    def test_comparison_counts(self):
        outcomes = [("a", "b", 1.0), ("a", "c", 0.0)]
        board = {e.name: e for e in leaderboard(["a", "b", "c"], outcomes)}
        assert board["a"].n_comparisons == 2
        assert board["b"].n_comparisons == 1

    def test_unknown_player_rejected(self):
        with pytest.raises(ValueError):
            leaderboard(["a"], [("a", "zzz", 1.0)])

    def test_invalid_outcome_rejected(self):
        with pytest.raises(ValueError):
            leaderboard(["a", "b"], [("a", "b", 1.5)])

    def test_quarter_outcomes_accepted(self):
        board = leaderboard(["a", "b"], [("a", "b", 0.75)] * 8)
        assert board[0].name == "a"


class TestLeaderboardFromBenchmark:
    def test_model_leaderboard_matches_capability_order(self, quick_ctx):
        """Aggregate real judge verdicts into a leaderboard; stronger
        profiles must rate higher."""
        from repro.judge.common import respond_with_method

        models = ["gpt-4-turbo-2024-04-09", "gpt-4-0613", "gpt-3.5-turbo-1106"]
        judge = quick_ctx.arena_hard.judge
        method = quick_ctx.method_none()
        outcomes = []
        prompts = list(quick_ctx.arena_hard.suite)[:30]
        for i, a in enumerate(models):
            for b in models[i + 1 :]:
                for prompt in prompts:
                    ra = respond_with_method(quick_ctx.engine(a), method, prompt)
                    rb = respond_with_method(quick_ctx.engine(b), method, prompt)
                    outcomes.append((a, b, judge.pairwise(prompt, ra, rb).outcome))
        board = leaderboard(models, outcomes)
        names = [e.name for e in board]
        assert names[0] == "gpt-4-turbo-2024-04-09"
        assert names[-1] == "gpt-3.5-turbo-1106"
