"""Tests for the pas-repro CLI entry point."""

import json

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_single_experiment_quick(self, capsys, tmp_path):
        code = main(["--experiment", "table3", "--scale", "quick", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flexibility comparison" in out
        dumped = tmp_path / "table3.jsonl"
        assert dumped.exists()
        record = json.loads(dumped.read_text().splitlines()[0])
        assert "profiles" in record

    def test_fig7_without_out_dir(self, capsys):
        assert main(["--experiment", "fig7", "--scale", "quick"]) == 0
        assert "18.89x" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(ValueError):
            main(["--experiment", "table42", "--scale", "quick"])

    def test_invalid_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge"])

    def test_save_dataset_flag(self, tmp_path):
        out = tmp_path / "pairs.jsonl"
        code = main(
            ["--experiment", "fig6", "--scale", "quick", "--save-dataset", str(out)]
        )
        assert code == 0
        from repro.pipeline.dataset import PromptPairDataset

        loaded = PromptPairDataset.load(out)
        assert len(loaded) > 0

    def test_manifest_flag(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        code = main(
            ["--experiment", "fig6", "--scale", "quick", "--manifest", str(manifest_path)]
        )
        assert code == 0
        from repro.manifest import RunManifest

        manifest = RunManifest.load(manifest_path)
        assert manifest.seed == 0
        assert manifest.dataset_size > 0

    def test_report_file_written(self, tmp_path):
        report = tmp_path / "report.md"
        code = main(
            ["--experiment", "table3", "--scale", "quick", "--report", str(report)]
        )
        assert code == 0
        content = report.read_text()
        assert content.startswith("# PAS reproduction report")
        assert "## table3" in content
        assert "flexibility comparison" in content
