"""Tests for the shared experiment context."""

import pytest

from repro.experiments.context import ExperimentContext, ScaleConfig


class TestScaleConfig:
    def test_quick_smaller_than_full(self):
        quick, full = ScaleConfig.quick(), ScaleConfig.full()
        assert quick.n_corpus_prompts < full.n_corpus_prompts
        assert quick.arena_suite_size < full.arena_suite_size
        assert quick.alpaca_suite_size < full.alpaca_suite_size


class TestContextCaching:
    def test_datasets_cached(self, quick_ctx):
        assert quick_ctx.curated_dataset is quick_ctx.curated_dataset
        assert quick_ctx.raw_dataset is quick_ctx.raw_dataset

    def test_models_cached(self, quick_ctx):
        assert quick_ctx.pas is quick_ctx.pas
        assert quick_ctx.bpo is quick_ctx.bpo

    def test_engines_cached_per_name(self, quick_ctx):
        a = quick_ctx.engine("gpt-4-0613")
        b = quick_ctx.engine("gpt-4-0613")
        c = quick_ctx.engine("qwen2-72b-chat")
        assert a is b
        assert a is not c

    def test_benchmarks_cached(self, quick_ctx):
        assert quick_ctx.arena_hard is quick_ctx.arena_hard
        assert quick_ctx.alpaca_eval is quick_ctx.alpaca_eval

    def test_curated_and_raw_differ(self, quick_ctx):
        assert quick_ctx.curated_dataset.mean_label_quality() > (
            quick_ctx.raw_dataset.mean_label_quality()
        )


class TestEvaluateArm:
    def test_returns_all_metrics(self, quick_ctx):
        scores = quick_ctx.evaluate_arm("gpt-4-0613", quick_ctx.method_none())
        assert set(scores) == {"arena_hard", "alpaca_eval", "alpaca_eval_lc", "average"}
        assert scores["average"] == pytest.approx(
            (scores["arena_hard"] + scores["alpaca_eval"] + scores["alpaca_eval_lc"]) / 3
        )

    def test_deterministic(self, quick_ctx):
        a = quick_ctx.evaluate_arm("gpt-4-0613", quick_ctx.method_none())
        b = quick_ctx.evaluate_arm("gpt-4-0613", quick_ctx.method_none())
        assert a == b


class TestSeedSeparation:
    def test_different_seeds_different_datasets(self):
        tiny = ScaleConfig(
            n_corpus_prompts=120, arena_suite_size=10, alpaca_suite_size=10,
            human_eval_per_scenario=2,
        )
        a = ExperimentContext(scale=tiny, seed=1).curated_dataset
        b = ExperimentContext(scale=tiny, seed=2).curated_dataset
        assert [p.prompt_text for p in a] != [p.prompt_text for p in b]
