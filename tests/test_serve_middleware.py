"""Tests for the gateway middleware chain."""

import pytest

from repro.serve.gateway import PasGateway
from repro.serve.middleware import (
    GuardrailMiddleware,
    LoggingMiddleware,
    MiddlewareChain,
    RateLimitMiddleware,
    RequestRejected,
)
from repro.serve.types import ServeRequest

GOOD_PROMPT = "How do I implement a job scheduler in python? Walk me through it."


@pytest.fixture()
def gateway(trained_pas):
    return PasGateway(pas=trained_pas)


def _req(prompt=GOOD_PROMPT, model="gpt-4-0613"):
    return ServeRequest(prompt=prompt, model=model)


class TestMiddlewareChain:
    def test_empty_chain_is_passthrough(self, gateway):
        chain = MiddlewareChain([], handler=gateway.ask)
        assert chain(_req()).response

    def test_order_outermost_first(self, gateway):
        calls = []

        class Tag:
            def __init__(self, name):
                self.name = name

            def __call__(self, request, next_handler):
                calls.append(f"enter:{self.name}")
                response = next_handler(request)
                calls.append(f"exit:{self.name}")
                return response

        chain = MiddlewareChain([Tag("a"), Tag("b")], handler=gateway.ask)
        chain(_req())
        assert calls == ["enter:a", "enter:b", "exit:b", "exit:a"]


class TestGuardrail:
    def test_good_prompt_passes(self, gateway):
        chain = MiddlewareChain([GuardrailMiddleware()], handler=gateway.ask)
        assert chain(_req()).response

    def test_junk_prompt_rejected(self, gateway):
        guard = GuardrailMiddleware()
        chain = MiddlewareChain([guard], handler=gateway.ask)
        with pytest.raises(RequestRejected):
            chain(_req(prompt="asdf qwer zxcv"))
        assert guard.rejected == 1
        # Nothing reached the gateway.
        assert gateway.stats.requests == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GuardrailMiddleware(threshold=1.5)


class TestRateLimit:
    def test_burst_throttled_then_recovers(self, gateway):
        limiter = RateLimitMiddleware(capacity=3, refill_per_tick=0.0)
        chain = MiddlewareChain([limiter], handler=gateway.ask)
        for _ in range(3):
            chain(_req())
        with pytest.raises(RequestRejected):
            chain(_req())
        assert limiter.throttled == 1

    def test_refill_admits_later_requests(self, gateway):
        limiter = RateLimitMiddleware(capacity=1, refill_per_tick=1.0)
        chain = MiddlewareChain([limiter], handler=gateway.ask)
        chain(_req())          # spends the only token
        chain(_req())          # tick refilled it
        assert limiter.throttled == 0

    def test_buckets_are_per_model(self, gateway):
        limiter = RateLimitMiddleware(capacity=1, refill_per_tick=0.0)
        chain = MiddlewareChain([limiter], handler=gateway.ask)
        chain(_req(model="gpt-4-0613"))
        chain(_req(model="qwen2-72b-chat"))  # separate bucket
        with pytest.raises(RequestRejected):
            chain(_req(model="gpt-4-0613"))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RateLimitMiddleware(capacity=0)
        with pytest.raises(ValueError):
            RateLimitMiddleware(refill_per_tick=-1)


class TestLogging:
    def test_success_logged(self, gateway):
        log = LoggingMiddleware()
        chain = MiddlewareChain([log], handler=gateway.ask)
        chain(_req())
        assert len(log.records) == 1
        record = log.records[0]
        assert record["ok"]
        assert record["completion_tokens"] > 0

    def test_rejection_logged_and_reraised(self, gateway):
        log = LoggingMiddleware()
        chain = MiddlewareChain(
            [log, GuardrailMiddleware()], handler=gateway.ask
        )
        with pytest.raises(RequestRejected):
            chain(_req(prompt="zz zz zz"))
        assert log.records[-1]["ok"] is False
        assert log.records[-1]["error"] == "RequestRejected"


class TestFullStack:
    def test_guardrail_rate_limit_logging_together(self, gateway):
        log = LoggingMiddleware()
        chain = MiddlewareChain(
            [log, RateLimitMiddleware(capacity=5, refill_per_tick=0.0), GuardrailMiddleware()],
            handler=gateway.ask,
        )
        served = 0
        for _ in range(7):
            try:
                chain(_req())
                served += 1
            except RequestRejected:
                pass
        assert served == 5
        assert len(log.records) == 7
