"""Parity, determinism, and shedding tests for the event-loop serving engine.

Three pinned guarantees (ISSUE 7):

* **Compat parity** — at ``max_inflight=1`` the engine's responses are
  bit-identical to the synchronous ``ask_batch`` loop on the same trace,
  clean and under injected faults alike (partition invariance does the
  heavy lifting).
* **Determinism** — same seed, same trace → byte-identical responses,
  event/trace exports, and metrics snapshots, at any concurrency.
* **Shedding** — deadline/queue-shed requests come back ``failed`` with
  ``attempts=0``, never touch the gateway, and the stats invariants
  (``arrived == served + failed``) hold under faults.

``PAS_CHAOS_SEED`` offsets every fault seed, so CI can sweep fresh fault
interleavings without touching the code.
"""

import os

import pytest

from repro.errors import ConfigError
from repro.obs import Observability
from repro.serve import (
    EngineConfig,
    FaultPlan,
    GatewayConfig,
    MicroBatcher,
    PasGateway,
    ServingEngine,
    TenantProfile,
    TimedRequest,
    TrafficConfig,
    TrafficGenerator,
)
from repro.serve.types import ServeRequest

CHAOS_OFFSET = int(os.environ.get("PAS_CHAOS_SEED", "0"))
CHAOS_SEEDS = tuple(CHAOS_OFFSET + base for base in (0, 1))

POOL = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
    "how do i write a binary search? please explain it in detail.",
    "why is my sourdough dense? walk me through it.",
]


def _trace(n=120, seed=0, process="poisson", mean_gap=2.0, **kwargs):
    config = TrafficConfig(
        n_requests=n, seed=seed, process=process, mean_gap_ticks=mean_gap, **kwargs
    )
    return TrafficGenerator(POOL, config).trace()


def _gateway(trained_pas, obs=None, **kwargs):
    config = GatewayConfig(seed=5, **kwargs)
    if obs is None:
        return PasGateway(trained_pas, config=config)
    return PasGateway(trained_pas, config=config, obs=obs)


class TestTraffic:
    def test_trace_is_pure_and_sorted(self):
        for process in ("uniform", "poisson", "bursty", "diurnal"):
            gen = TrafficGenerator(POOL, TrafficConfig(n_requests=60, seed=3, process=process))
            a, b = gen.trace(), gen.trace()
            assert a == b
            assert all(x.tick <= y.tick for x, y in zip(a, a[1:]))
            assert all(t.tick >= 1 for t in a)

    def test_zipf_concentrates_popularity(self):
        trace = _trace(n=400, zipf_exponent=1.5)
        counts = {}
        for t in trace:
            counts[t.request.prompt] = counts.get(t.request.prompt, 0) + 1
        top = max(counts.values())
        assert top > 400 / len(POOL)  # visibly skewed, not uniform

    def test_tenant_mix_stamps_metadata(self):
        tenants = (
            TenantProfile("free", weight=3.0, priority=0, deadline_ticks=32),
            TenantProfile("paid", weight=1.0, priority=2),
        )
        trace = _trace(n=200, tenants=tenants)
        seen = {t.tenant for t in trace}
        assert seen == {"free", "paid"}
        for t in trace:
            if t.tenant == "paid":
                assert t.priority == 2 and t.deadline_ticks is None
            else:
                assert t.priority == 0 and t.deadline_ticks == 32
        assert all(t.request.request_id.startswith(t.tenant) for t in trace)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TrafficConfig(n_requests=0)
        with pytest.raises(ConfigError):
            TrafficConfig(process="lunar")
        with pytest.raises(ConfigError):
            TrafficConfig(tenants=(TenantProfile("a"), TenantProfile("a")))
        with pytest.raises(ConfigError):
            TenantProfile("t", models=())


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(max_inflight=0)
        with pytest.raises(ConfigError):
            EngineConfig(max_batch=0)
        with pytest.raises(ConfigError):
            EngineConfig(shed_policy="panic")
        with pytest.raises(ConfigError):
            EngineConfig(max_queue=0)


class TestCompatParity:
    """max_inflight=1 == the synchronous MicroBatcher/ask_batch loop."""

    def test_clean_trace_bit_identical(self, trained_pas):
        trace = _trace(n=100, seed=1)
        sync_gateway = _gateway(trained_pas)
        sync = MicroBatcher(sync_gateway.ask_batch, max_batch=8, max_wait=4).run_arrivals(
            (t.tick, t.request) for t in trace
        )
        engine_gateway = _gateway(trained_pas)
        result = ServingEngine(engine_gateway, EngineConfig(max_inflight=1)).run(trace)
        assert result.responses == sync
        assert engine_gateway.stats == sync_gateway.stats

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_trace_bit_identical(self, trained_pas, seed):
        trace = _trace(n=100, seed=2, process="bursty")
        plan = FaultPlan(
            seed=seed, completion_failure_rate=0.2, augment_failure_rate=0.1
        )
        sync_gateway = _gateway(trained_pas, fault_plan=plan, max_retries=2)
        sync = MicroBatcher(sync_gateway.ask_batch, max_batch=8, max_wait=4).run_arrivals(
            (t.tick, t.request) for t in trace
        )
        engine_gateway = _gateway(trained_pas, fault_plan=plan, max_retries=2)
        result = ServingEngine(engine_gateway, EngineConfig(max_inflight=1)).run(trace)
        assert result.responses == sync
        assert engine_gateway.stats == sync_gateway.stats

    def test_unknown_model_requests_keep_order(self, trained_pas):
        trace = [
            TimedRequest(tick=i + 1, request=ServeRequest(prompt=p, model=m, request_id=str(i)))
            for i, (p, m) in enumerate(
                (POOL[i % len(POOL)], "gpt-4-0613" if i % 3 else "not-a-model")
                for i in range(12)
            )
        ]
        sync_gateway = _gateway(trained_pas)
        sync = MicroBatcher(sync_gateway.ask_batch, max_batch=4, max_wait=4).run_arrivals(
            (t.tick, t.request) for t in trace
        )
        engine_gateway = _gateway(trained_pas)
        result = ServingEngine(engine_gateway, EngineConfig(max_inflight=1)).run(trace)
        assert result.responses == sync
        assert [r.request_id for r in result.responses] == [str(i) for i in range(12)]


class TestDeterminism:
    """Same seed → byte-identical everything, at any concurrency."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_seed_byte_identical(self, trained_pas, seed, tmp_path):
        trace = _trace(n=100, seed=3, process="diurnal")
        plan = FaultPlan(
            seed=seed, completion_failure_rate=0.15, augment_failure_rate=0.1
        )

        def run(tag):
            obs = Observability.enabled(trace_capacity=4096, event_capacity=65536)
            gateway = _gateway(trained_pas, obs=obs, fault_plan=plan, max_retries=2)
            result = ServingEngine(gateway, EngineConfig(max_inflight=8)).run(trace)
            events = tmp_path / f"events-{tag}.jsonl"
            spans = tmp_path / f"spans-{tag}.jsonl"
            obs.events.export_jsonl(events)
            obs.tracer.store.export_jsonl(spans)
            return result, events.read_bytes(), spans.read_bytes(), obs.metrics.snapshot()

        first, events_a, spans_a, metrics_a = run("a")
        second, events_b, spans_b, metrics_b = run("b")
        assert first.responses == second.responses
        assert events_a == events_b
        assert spans_a == spans_b
        assert metrics_a == metrics_b
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_overlap_shrinks_makespan(self, trained_pas):
        trace = _trace(n=100, seed=4, mean_gap=1.0)
        compat = ServingEngine(_gateway(trained_pas), EngineConfig(max_inflight=1)).run(trace)
        overlapped = ServingEngine(_gateway(trained_pas), EngineConfig(max_inflight=8)).run(trace)
        assert overlapped.stats.makespan_ticks < compat.stats.makespan_ticks / 2
        assert overlapped.stats.peak_inflight > 1
        # Same requests served either way, different schedule.
        assert overlapped.stats.served == compat.stats.served

    def test_engine_metrics_land_in_shared_registry(self, trained_pas):
        obs = Observability.enabled()
        gateway = _gateway(trained_pas, obs=obs)
        engine = ServingEngine(gateway, EngineConfig(max_inflight=4))
        result = engine.run(_trace(n=40, seed=5))
        assert "pas_engine_inflight" in obs.metrics
        assert "pas_request_latency_ticks" in obs.metrics
        assert "pas_queue_wait_ticks" in obs.metrics
        assert "pas_scheduler_occupancy" in obs.metrics
        hist = obs.metrics.histogram("pas_request_latency_ticks", buckets=())
        assert hist.count() == result.stats.served + result.stats.failed


class TestShedding:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_deadline_shed_fails_with_zero_attempts(self, trained_pas, seed):
        # Saturate two slots so queue waits blow the deadline budget.
        trace = _trace(n=120, seed=6, mean_gap=0.5, process="bursty")
        plan = FaultPlan(seed=seed, completion_failure_rate=0.1)
        gateway = _gateway(trained_pas, fault_plan=plan, max_retries=2)
        engine = ServingEngine(
            gateway, EngineConfig(max_inflight=2, deadline_ticks=32, max_queue=48)
        )
        result = engine.run(trace)
        stats = result.stats
        assert stats.arrived == len(trace) == stats.served + stats.failed
        assert stats.shed_total > 0
        shed = [r for r in result.responses if r.failed and r.attempts == 0]
        assert len(shed) == stats.shed_total
        for response in shed:
            assert response.error is not None
            assert "DeadlineExceededError" in response.error or "AdmissionError" in response.error
        # Shed requests never reached the gateway.
        assert gateway.stats.requests == stats.arrived - stats.shed_total

    def test_degrade_policy_serves_raw_prompt(self, trained_pas):
        trace = _trace(n=80, seed=7, mean_gap=0.5)
        gateway = _gateway(trained_pas)
        engine = ServingEngine(
            gateway,
            EngineConfig(max_inflight=1, deadline_ticks=16, shed_policy="degrade"),
        )
        result = engine.run(trace)
        assert result.stats.shed.get("deadline", 0) == 0
        assert result.stats.degraded_on_shed > 0
        assert result.stats.arrived == result.stats.served + result.stats.failed
        # Degraded-on-shed requests were served without a complement.
        unaugmented = [r for r in result.responses if r.ok and not r.complement]
        assert len(unaugmented) >= result.stats.degraded_on_shed

    def test_queue_overflow_sheds_at_the_door(self, trained_pas):
        trace = [
            TimedRequest(tick=1, request=ServeRequest(prompt=POOL[i % len(POOL)], model="gpt-4-0613"))
            for i in range(20)
        ]
        gateway = _gateway(trained_pas)
        engine = ServingEngine(gateway, EngineConfig(max_inflight=1, max_queue=8))
        result = engine.run(trace)
        assert result.stats.shed.get("queue", 0) == 12
        assert gateway.stats.requests == 8

    def test_priority_dispatches_first_within_batch(self, trained_pas):
        # Two same-tick arrivals: the higher-priority one starts first even
        # though it arrived second.
        trace = [
            TimedRequest(
                tick=1,
                request=ServeRequest(prompt=POOL[0], model="gpt-4-0613", request_id="low"),
                priority=0,
            ),
            TimedRequest(
                tick=1,
                request=ServeRequest(prompt=POOL[1], model="gpt-4-0613", request_id="high"),
                priority=5,
            ),
        ]
        gateway = _gateway(trained_pas)
        result = ServingEngine(gateway, EngineConfig(max_inflight=1, max_batch=2)).run(trace)
        assert result.stats.served == 2
        # The high-priority request dispatched first, so the low one queued
        # behind its completion and waited longer.
        assert result.responses[1].request_id == "high"  # trace order preserved
        assert result.stats.queue_wait_ticks[0] <= result.stats.queue_wait_ticks[1]


class TestMultiRun:
    def test_gateway_state_carries_across_runs(self, trained_pas):
        gateway = _gateway(trained_pas)
        engine = ServingEngine(gateway, EngineConfig(max_inflight=4))
        first = engine.run(_trace(n=40, seed=8))
        hits_after_first = gateway.stats.cache_hits
        second = engine.run(_trace(n=40, seed=8))
        # The second pass re-serves the same prompts: the complement cache
        # is warm, so cache hits strictly increase.
        assert gateway.stats.cache_hits > hits_after_first
        assert first.stats.served == second.stats.served

    def test_empty_trace(self, trained_pas):
        result = ServingEngine(_gateway(trained_pas)).run([])
        assert result.responses == [] and result.stats.arrived == 0
