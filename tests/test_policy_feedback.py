"""Golden-refresh feedback hook: gating, ranking, checkpointed promotion.

The serve→judge→select loop's last leg: judged winners flow back into the
golden exemplar set behind a quality gate, with the same checkpoint
discipline the pipeline runner keeps — identical inputs reload the
checkpoint bit-identically, corrupted checkpoints refuse loudly, stale
ones are ignored.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.golden import GoldenData, GoldenPair
from repro.errors import ConfigError
from repro.pipeline.runner import CheckpointError
from repro.policy import GoldenRefresh
from repro.world.prompts import PromptFactory


@pytest.fixture()
def prompts(factory):
    return [factory.make_prompt(category="coding") for _ in range(6)] + [
        factory.make_prompt(category="chitchat") for _ in range(4)
    ]


@pytest.fixture()
def golden(prompts):
    return GoldenData({"coding": [GoldenPair(prompts[0], "seed exemplar.")]})


def _filled(prompts, **kwargs) -> GoldenRefresh:
    refresh = GoldenRefresh(**kwargs)
    for i, prompt in enumerate(prompts):
        refresh.record(prompt, f"complement {i}.", 3.0 + 0.25 * i)
    return refresh


class TestBufferAndGate:
    def test_empty_complements_are_never_buffered(self, prompts):
        refresh = GoldenRefresh()
        refresh.record(prompts[0], "", 5.0)
        assert refresh.n_records == 0

    def test_repeats_keep_the_best_reward(self, prompts):
        refresh = GoldenRefresh()
        refresh.record(prompts[0], "c.", 2.0)
        refresh.record(prompts[0], "c.", 4.5)
        refresh.record(prompts[0], "c.", 3.0)
        assert refresh.n_records == 1
        [record] = refresh.as_dict()["records"]
        assert record["reward"] == 4.5

    def test_gate_and_per_category_cap(self, prompts):
        refresh = _filled(prompts, quality_gate=4.0, max_per_category=2)
        promoted = refresh.promoted()
        assert all(
            record["reward"] >= 4.0
            for records in promoted.values()
            for record in records
        )
        assert all(len(records) <= 2 for records in promoted.values())
        # Ranking is reward-descending and tie-stable.
        for records in promoted.values():
            rewards = [record["reward"] for record in records]
            assert rewards == sorted(rewards, reverse=True)

    def test_round_trip_is_lossless(self, prompts):
        refresh = _filled(prompts)
        blob = json.dumps(refresh.as_dict(), sort_keys=True)
        restored = GoldenRefresh.from_dict(json.loads(blob))
        assert restored.as_dict() == refresh.as_dict()
        assert restored.promoted() == refresh.promoted()

    def test_validation(self):
        with pytest.raises(ConfigError, match="quality_gate"):
            GoldenRefresh(quality_gate=6.0)
        with pytest.raises(ConfigError, match="max_per_category"):
            GoldenRefresh(max_per_category=0)


class TestRefresh:
    def test_refresh_appends_without_touching_existing(self, prompts, golden):
        refresh = _filled(prompts, quality_gate=4.0)
        refreshed = refresh.refresh(golden)
        # The seed exemplar survives verbatim, first.
        assert refreshed.exemplars("coding")[0].complement == "seed exemplar."
        assert len(refreshed.exemplars("coding")) > 1
        # The input GoldenData is untouched.
        assert len(golden.exemplars("coding")) == 1

    def test_refresh_is_idempotent(self, prompts, golden):
        refresh = _filled(prompts, quality_gate=4.0)
        once = refresh.refresh(golden)
        twice = refresh.refresh(once)
        assert [
            (pair.prompt.uid, pair.complement)
            for category in twice.categories()
            for pair in twice.exemplars(category)
        ] == [
            (pair.prompt.uid, pair.complement)
            for category in once.categories()
            for pair in once.exemplars(category)
        ]

    def test_refresh_is_deterministic_across_buffer_orders(self, golden):
        factory_a = PromptFactory(rng=np.random.default_rng(5))
        prompts = [factory_a.make_prompt() for _ in range(8)]
        a, b = GoldenRefresh(quality_gate=3.0), GoldenRefresh(quality_gate=3.0)
        for i, prompt in enumerate(prompts):
            a.record(prompt, f"c {i}.", 3.0 + 0.2 * i)
        for i, prompt in reversed(list(enumerate(prompts))):
            b.record(prompt, f"c {i}.", 3.0 + 0.2 * i)
        assert a.as_dict() == b.as_dict()
        assert [
            (pair.prompt.uid, pair.complement)
            for category in a.refresh(golden).categories()
            for pair in a.refresh(golden).exemplars(category)
        ] == [
            (pair.prompt.uid, pair.complement)
            for category in b.refresh(golden).categories()
            for pair in b.refresh(golden).exemplars(category)
        ]


class TestCheckpointing:
    def test_rerun_reloads_checkpoint_bit_identically(
        self, prompts, golden, tmp_path
    ):
        refresh = _filled(prompts, quality_gate=4.0, checkpoint_dir=tmp_path)
        first = refresh.refresh(golden)
        checkpoint = (tmp_path / "golden_refresh.json").read_text()
        resumed = GoldenRefresh.from_dict(
            refresh.as_dict(), checkpoint_dir=tmp_path
        )
        second = resumed.refresh(golden)
        assert (tmp_path / "golden_refresh.json").read_text() == checkpoint
        assert [
            (pair.prompt.uid, pair.complement)
            for category in second.categories()
            for pair in second.exemplars(category)
        ] == [
            (pair.prompt.uid, pair.complement)
            for category in first.categories()
            for pair in first.exemplars(category)
        ]

    def test_stale_run_key_is_ignored_and_overwritten(
        self, prompts, golden, tmp_path
    ):
        refresh = _filled(prompts, quality_gate=4.0, checkpoint_dir=tmp_path)
        refresh.refresh(golden)
        # New observation → new run key → the old checkpoint is stale.
        refresh.record(prompts[1], "a late winner.", 5.0)
        refreshed = refresh.refresh(golden)
        record = json.loads((tmp_path / "golden_refresh.json").read_text())
        payload_complements = {
            item["complement"]
            for records in record["payload"].values()
            for item in records
        }
        assert "a late winner." in payload_complements
        assert any(
            pair.complement == "a late winner."
            for category in refreshed.categories()
            for pair in refreshed.exemplars(category)
        )

    def test_corrupted_checkpoint_raises(self, prompts, golden, tmp_path):
        refresh = _filled(prompts, quality_gate=4.0, checkpoint_dir=tmp_path)
        refresh.refresh(golden)
        path = tmp_path / "golden_refresh.json"
        record = json.loads(path.read_text())
        record["payload"]["coding"] = []  # tamper, keep run_key
        path.write_text(json.dumps(record))
        with pytest.raises(CheckpointError, match="content hash"):
            refresh.refresh(golden)
