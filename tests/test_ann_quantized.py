"""Tests for the int8 scalar-quantised traversal mode.

The quantised kernel only steers the beam; the final candidate set is
re-ranked with the exact float kernel, so returned distances are exact
and recall stays pinned against :class:`BruteForceIndex`.
"""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.errors import IndexError_


def _data(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


def _recall(index, brute, queries, k, ef=None):
    recalls = []
    for q in queries:
        exact = {key for key, _ in brute.search(q, k)}
        mine = {key for key, _ in index.search(q, k, ef=ef)}
        recalls.append(len(mine & exact) / k)
    return float(np.mean(recalls))


class TestQuantizedIndex:
    def test_validation(self):
        with pytest.raises(IndexError_):
            HnswIndex(dim=8, quantization="fp4")
        index = HnswIndex(dim=8, quantization="int8")
        assert index.quantization == "int8"

    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_recall_vs_bruteforce(self, metric):
        """The ISSUE gate: int8 recall >= 0.95 vs exact at bench shapes."""
        points, queries = _data(400, 64, seed=1), _data(60, 64, seed=2)
        index = HnswIndex(dim=64, metric=metric, quantization="int8", seed=0)
        index.add_batch(points, range(400))
        brute = BruteForceIndex(dim=64, metric=metric)
        brute.add_batch(points, range(400))
        assert _recall(index, brute, queries, 10) >= 0.95

    def test_returned_distances_are_exact(self):
        """Re-ranking makes hit distances bit-equal to the float kernel."""
        points = _data(200, 32, seed=3)
        quantized = HnswIndex(dim=32, quantization="int8", seed=0)
        quantized.add_batch(points, range(200))
        norms = np.linalg.norm(points, axis=1)
        for q in _data(10, 32, seed=4):
            qn = np.linalg.norm(q)
            for key, dist in quantized.search(q, 5):
                exact = 1.0 - (points[key] @ q) / (norms[key] * qn)
                assert dist == pytest.approx(exact, abs=1e-12)

    def test_batch_matches_scalar_loop(self):
        index = HnswIndex(dim=16, quantization="int8", seed=5)
        index.add_batch(_data(150, 16), range(150))
        queries = _data(12, 16, seed=6)
        assert index.search_batch(queries, 6) == [index.search(q, 6) for q in queries]
        keys, dists = index.search_batch_arrays(queries, 6)
        for i, hits in enumerate(index.search_batch(queries, 6)):
            assert keys[i, : len(hits)].tolist() == [k for k, _ in hits]
            assert dists[i, : len(hits)].tolist() == [d for _, d in hits]

    def test_deterministic_across_instances(self):
        points, queries = _data(100, 12, seed=7), _data(8, 12, seed=8)
        a = HnswIndex(dim=12, quantization="int8", seed=1)
        b = HnswIndex(dim=12, quantization="int8", seed=1)
        a.add_batch(points, range(100))
        b.add_batch(points, range(100))
        assert a.search_batch(queries, 5) == b.search_batch(queries, 5)


class TestQuantizedSharded:
    def test_forwarded_to_shards(self):
        index = ShardedHnswIndex(dim=8, n_shards=3, quantization="int8")
        assert index.quantization == "int8"
        assert all(s.quantization == "int8" for s in index._shards)

    def test_sharded_recall_vs_bruteforce(self):
        points, queries = _data(400, 64, seed=9), _data(40, 64, seed=10)
        # scan_threshold=0 + beam mode forces the quantised beam on every
        # shard; the default scan/routed paths re-rank on exact float rows
        # and would prove nothing here.
        index = ShardedHnswIndex(
            dim=64,
            n_shards=4,
            quantization="int8",
            scan_threshold=0,
            large_shard_search="beam",
            seed=0,
        )
        index.add_batch(points, range(400))
        brute = BruteForceIndex(dim=64)
        brute.add_batch(points, range(400))
        assert _recall(index, brute, queries, 10, ef=128) >= 0.95

    def test_sharded_batch_matches_scalar_loop(self):
        index = ShardedHnswIndex(
            dim=12,
            n_shards=4,
            quantization="int8",
            scan_threshold=0,
            large_shard_search="beam",
            seed=2,
        )
        index.add_batch(_data(120, 12), range(120))
        queries = _data(10, 12, seed=3)
        assert index.search_batch(queries, 5) == [index.search(q, 5) for q in queries]
