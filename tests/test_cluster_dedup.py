"""Tests for near-duplicate grouping."""

import numpy as np
import pytest

from repro.cluster.dedup import deduplicate
from repro.embedding.model import EmbeddingModel


def _clusters(seed=0):
    """Three tight clusters of 5 points each in 8-d."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(3, 8)) * 5
    points = []
    for c in centers:
        for _ in range(5):
            points.append(c + rng.normal(scale=0.01, size=8))
    matrix = np.array(points)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


class TestDeduplicate:
    def test_empty(self):
        result = deduplicate(np.zeros((0, 4)))
        assert result.kept == []
        assert result.groups == []

    def test_groups_tight_clusters(self):
        result = deduplicate(_clusters(), threshold=0.95)
        assert len(result.kept) == 3
        sizes = sorted(len(g) for g in result.groups)
        assert sizes == [5, 5, 5]

    def test_keep_per_group(self):
        result = deduplicate(_clusters(), threshold=0.95, keep_per_group=2)
        assert len(result.kept) == 6

    def test_representative_is_lowest_index(self):
        result = deduplicate(_clusters(), threshold=0.95)
        for group in result.groups:
            rep = result.representative_of[group[0]]
            assert rep == min(group)

    def test_all_indices_mapped(self):
        matrix = _clusters()
        result = deduplicate(matrix, threshold=0.95)
        assert set(result.representative_of) == set(range(matrix.shape[0]))

    def test_distinct_points_all_kept(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(20, 16))
        matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
        result = deduplicate(matrix, threshold=0.99)
        assert len(result.kept) == 20
        assert result.n_duplicates_removed == 0

    def test_kept_sorted(self):
        result = deduplicate(_clusters(), threshold=0.95)
        assert result.kept == sorted(result.kept)

    @pytest.mark.parametrize("threshold", [0.0, 1.5, -0.1])
    def test_invalid_threshold(self, threshold):
        with pytest.raises(ValueError):
            deduplicate(np.ones((2, 2)), threshold=threshold)

    def test_invalid_keep_per_group(self):
        with pytest.raises(ValueError):
            deduplicate(np.ones((2, 2)), keep_per_group=0)

    def test_deterministic(self):
        matrix = _clusters(seed=9)
        a = deduplicate(matrix, seed=4)
        b = deduplicate(matrix, seed=4)
        assert a.kept == b.kept


class TestShardedBackend:
    def test_one_shard_bit_identical_to_monolithic(self):
        matrix = _clusters(seed=2)
        mono = deduplicate(matrix, threshold=0.95, seed=4)
        sharded = deduplicate(
            matrix, threshold=0.95, seed=4, backend="sharded", n_shards=1
        )
        assert sharded.kept == mono.kept
        assert sharded.groups == mono.groups
        assert sharded.representative_of == mono.representative_of

    def test_auto_picks_sharded_above_one_shard(self):
        matrix = _clusters(seed=5)
        explicit = deduplicate(matrix, threshold=0.95, n_shards=4, backend="sharded")
        auto = deduplicate(matrix, threshold=0.95, n_shards=4)
        assert auto.kept == explicit.kept

    def test_multi_shard_collapses_tight_clusters(self):
        result = deduplicate(_clusters(), threshold=0.95, n_shards=4)
        assert len(result.kept) == 3
        assert sorted(len(g) for g in result.groups) == [5, 5, 5]

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            deduplicate(np.ones((2, 2)), backend="faiss")

    def test_invalid_n_shards(self):
        with pytest.raises(ValueError):
            deduplicate(np.ones((2, 2)), n_shards=0)

    def test_real_embeddings_one_shard_parity(self, factory):
        prompts = [factory.make_prompt() for _ in range(30)]
        embeddings = EmbeddingModel().embed_batch([p.text for p in prompts])
        mono = deduplicate(embeddings, threshold=0.85)
        sharded = deduplicate(embeddings, threshold=0.85, backend="sharded")
        assert sharded.kept == mono.kept


class TestDedupOnRealPromptEmbeddings:
    def test_near_duplicate_prompts_collapse(self, factory):
        base = [factory.make_prompt() for _ in range(20)]
        dups = [factory.make_near_duplicate(p) for p in base[:5]]
        texts = [p.text for p in base + dups]
        embeddings = EmbeddingModel().embed_batch(texts)
        result = deduplicate(embeddings, threshold=0.85)
        # Each of the 5 near-duplicates should merge with its base.
        assert len(result.kept) <= len(base) + 1
