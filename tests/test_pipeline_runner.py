"""Tests for the batched, checkpointed, observable pipeline runner.

``PAS_CHAOS_SEED`` offsets the chaos seeds (the CI pipeline job runs the
suite under several offsets), so determinism claims are exercised at more
than one fault pattern without changing the tests.
"""

import os

import numpy as np
import pytest

from repro.obs import Observability
from repro.pipeline import (
    CollectionConfig,
    GenerationConfig,
    PairGenerator,
    PipelineConfig,
    PipelineInterrupted,
    PipelineRunner,
    PromptCollector,
    RunnerConfig,
)
from repro.pipeline.generate import CritiqueResult
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy
from repro.world.prompts import CorpusConfig, PromptFactory

CHAOS_OFFSET = int(os.environ.get("PAS_CHAOS_SEED", "0"))

CHAOS_PLAN = FaultPlan(seed=7 + CHAOS_OFFSET, completion_failure_rate=0.35)
CHAOS_RETRY = RetryPolicy(max_retries=1)


@pytest.fixture(scope="module")
def corpus():
    factory = PromptFactory(rng=np.random.default_rng(5))
    return factory.make_corpus(CorpusConfig(n_prompts=120))


def _export(runner, tmp_path, name):
    out = tmp_path / name
    runner.export_obs(out)
    return (out / "events.jsonl").read_bytes(), (out / "traces.jsonl").read_bytes()


def _chaos_config(**runner_kwargs):
    return PipelineConfig(
        runner=RunnerConfig(
            fault_plan=CHAOS_PLAN, retry_policy=CHAOS_RETRY, **runner_kwargs
        )
    )


class TestScalarParity:
    """The runner's batched stages equal the interactive scalar pipeline."""

    def test_matches_collector_and_generator(self, corpus):
        result = PipelineRunner(PipelineConfig()).run(corpus)
        collected = PromptCollector(seed=0).collect(corpus)
        dataset = PairGenerator(config=GenerationConfig()).build_dataset(
            collected.selected
        )
        assert result.collection == collected
        assert result.dataset.pairs == dataset.pairs
        assert result.dataset.n_dropped == dataset.n_dropped
        assert result.dataset.curated == dataset.curated
        assert result.skipped_uids == []

    def test_pipeline_config_drives_both_apis(self, corpus):
        config = PipelineConfig(
            collection=CollectionConfig(quality_threshold=0.5),
            generation=GenerationConfig(max_rounds=2),
            seed=3,
        )
        result = PipelineRunner(config).run(corpus)
        collected = PromptCollector(config=config).collect(corpus)
        dataset = PairGenerator(config=config).build_dataset(collected.selected)
        assert result.collection == collected
        assert result.dataset.pairs == dataset.pairs

    def test_sharded_dedup_one_shard_identical(self, corpus):
        mono = PipelineRunner(PipelineConfig()).run(corpus)
        sharded = PipelineRunner(
            PipelineConfig(
                collection=CollectionConfig(dedup_shards=1, dedup_backend="sharded")
            )
        ).run(corpus)
        assert sharded.collection.selected == mono.collection.selected
        assert sharded.dataset.pairs == mono.dataset.pairs


class TestCheckpointResume:
    def test_fail_after_each_stage_then_resume_bit_identical(self, corpus, tmp_path):
        obs = Observability.enabled(trace_capacity=512)
        baseline_runner = PipelineRunner(_chaos_config(), obs=obs)
        baseline = baseline_runner.run(corpus)
        base_events, base_traces = _export(baseline_runner, tmp_path, "base")
        base_metrics = obs.metrics.as_dict()

        for stage in PipelineRunner.STAGES:
            ckpt = tmp_path / f"ckpt_{stage}"
            with pytest.raises(PipelineInterrupted):
                PipelineRunner(
                    _chaos_config(fail_after_stage=stage), checkpoint_dir=ckpt
                ).run(corpus)
            resume_obs = Observability.enabled(trace_capacity=512)
            resumer = PipelineRunner(
                _chaos_config(), checkpoint_dir=ckpt, obs=resume_obs
            )
            resumed = resumer.run(corpus)
            events, traces = _export(resumer, tmp_path, f"resume_{stage}")
            assert stage in resumed.resumed_stages
            assert resumed.dataset.pairs == baseline.dataset.pairs
            assert resumed.collection == baseline.collection
            assert resumed.skipped_uids == baseline.skipped_uids
            assert events == base_events
            assert traces == base_traces
            assert resume_obs.metrics.as_dict() == base_metrics

    def test_kill_mid_generate_resumes_bit_identical(self, corpus, tmp_path):
        obs = Observability.enabled(trace_capacity=512)
        baseline_runner = PipelineRunner(_chaos_config(), obs=obs)
        baseline = baseline_runner.run(corpus)
        base_events, base_traces = _export(baseline_runner, tmp_path, "b")

        ckpt = tmp_path / "ckpt_mid"
        with pytest.raises(PipelineInterrupted):
            PipelineRunner(
                _chaos_config(fail_after_pairs=10, checkpoint_every=4),
                checkpoint_dir=ckpt,
            ).run(corpus)
        assert (ckpt / "generate.partial.json").exists()

        resume_obs = Observability.enabled(trace_capacity=512)
        resumer = PipelineRunner(
            _chaos_config(checkpoint_every=4), checkpoint_dir=ckpt, obs=resume_obs
        )
        resumed = resumer.run(corpus)
        events, traces = _export(resumer, tmp_path, "r")
        assert "generate" in resumed.resumed_stages
        assert resumed.dataset.pairs == baseline.dataset.pairs
        assert resumed.skipped_uids == baseline.skipped_uids
        assert events == base_events
        assert traces == base_traces
        # The partial checkpoint is cleaned up once the stage completes.
        assert not (ckpt / "generate.partial.json").exists()

    def test_completed_run_resumes_everything(self, corpus, tmp_path):
        ckpt = tmp_path / "ckpt_full"
        first = PipelineRunner(PipelineConfig(), checkpoint_dir=ckpt).run(corpus)
        second = PipelineRunner(PipelineConfig(), checkpoint_dir=ckpt).run(corpus)
        assert second.resumed_stages == PipelineRunner.STAGES
        assert second.dataset.pairs == first.dataset.pairs

    def test_different_config_ignores_checkpoints(self, corpus, tmp_path):
        ckpt = tmp_path / "ckpt_cfg"
        PipelineRunner(PipelineConfig(), checkpoint_dir=ckpt).run(corpus)
        other = PipelineRunner(
            PipelineConfig(collection=CollectionConfig(quality_threshold=0.5)),
            checkpoint_dir=ckpt,
        ).run(corpus)
        assert other.resumed_stages == ()

    def test_resume_false_reruns_fresh(self, corpus, tmp_path):
        ckpt = tmp_path / "ckpt_fresh"
        first = PipelineRunner(PipelineConfig(), checkpoint_dir=ckpt).run(corpus)
        rerun = PipelineRunner(PipelineConfig(), checkpoint_dir=ckpt).run(
            corpus, resume=False
        )
        assert rerun.resumed_stages == ()
        assert rerun.dataset.pairs == first.dataset.pairs

    def test_in_memory_checkpoints(self, corpus):
        runner = PipelineRunner(PipelineConfig())
        first = runner.run(corpus)
        second = runner.run(corpus)
        assert second.resumed_stages == PipelineRunner.STAGES
        assert second.dataset.pairs == first.dataset.pairs


class TestChaosDegradation:
    def test_chaos_run_is_deterministic(self, corpus):
        a = PipelineRunner(_chaos_config()).run(corpus)
        b = PipelineRunner(_chaos_config()).run(corpus)
        assert a.dataset.pairs == b.dataset.pairs
        assert a.skipped_uids == b.skipped_uids

    def test_skips_and_logs_instead_of_aborting(self, corpus):
        obs = Observability.enabled()
        result = PipelineRunner(_chaos_config(), obs=obs).run(corpus)
        assert result.n_pairs_skipped > 0
        skipped_events = obs.events.by_kind("pipeline.pair_skipped")
        assert {e.attrs["uid"] for e in skipped_events} == set(result.skipped_uids)
        assert obs.metrics.counter("pas_pipeline_pairs_total").value(
            outcome="skipped"
        ) == len(result.skipped_uids)
        assert obs.metrics.counter("pas_faults_total").value(stage="completion") > 0

    def test_critic_outage_skips_every_pair(self, corpus):
        plan = FaultPlan(
            seed=3 + CHAOS_OFFSET,
            outages=(OutageWindow(model="teacher-gpt-4", start=0, end=10**6),),
        )
        obs = Observability.enabled()
        result = PipelineRunner(
            PipelineConfig(
                runner=RunnerConfig(fault_plan=plan, retry_policy=RetryPolicy(max_retries=1))
            ),
            obs=obs,
        ).run(corpus)
        assert len(result.dataset) == 0
        assert result.n_pairs_skipped == result.collection.n_final
        assert obs.metrics.counter("pas_faults_total").value(stage="outage") > 0

    def test_deadline_budget_skips(self, corpus):
        plan = FaultPlan(
            seed=11 + CHAOS_OFFSET,
            completion_failure_rate=0.5,
            latency_spike_rate=0.5,
            latency_spike_ticks=100,
        )
        result = PipelineRunner(
            PipelineConfig(
                runner=RunnerConfig(
                    fault_plan=plan,
                    retry_policy=RetryPolicy(max_retries=3, deadline_ticks=8.0),
                )
            )
        ).run(corpus)
        assert result.n_pairs_skipped > 0

    def test_resume_under_chaos_preserves_fault_stream(self, corpus, tmp_path):
        ckpt = tmp_path / "ckpt_chaos"
        with pytest.raises(PipelineInterrupted):
            PipelineRunner(
                _chaos_config(fail_after_pairs=7, checkpoint_every=3),
                checkpoint_dir=ckpt,
            ).run(corpus)
        resumed = PipelineRunner(_chaos_config(), checkpoint_dir=ckpt).run(corpus)
        baseline = PipelineRunner(_chaos_config()).run(corpus)
        assert resumed.skipped_uids == baseline.skipped_uids
        assert resumed.dataset.pairs == baseline.dataset.pairs


class TestAlgorithmOneEdges:
    def test_critic_never_passes_caps_and_drops(self, corpus):
        """A critic that rejects everything: every pair hits the round cap
        and is dropped with an event — never an infinite loop."""
        max_rounds = 2
        obs = Observability.enabled()
        config = PipelineConfig(generation=GenerationConfig(max_rounds=max_rounds))
        runner = PipelineRunner(config, obs=obs)
        runner.pair_generator.critic.critique = lambda prompt, ape: CritiqueResult(
            False, "always wrong"
        )
        result = runner.run(corpus)
        assert len(result.dataset) == 0
        assert result.dataset.n_dropped == result.collection.n_final
        dropped = obs.events.by_kind("pipeline.pair_dropped")
        assert len(dropped) == result.collection.n_final
        assert all(e.attrs["rounds"] == max_rounds for e in dropped)
        assert obs.metrics.counter("pas_pipeline_regenerations_total").total() == (
            max_rounds * result.collection.n_final
        )

    def test_empty_corpus(self):
        result = PipelineRunner(PipelineConfig()).run([])
        assert len(result.dataset) == 0
        assert result.collection.n_input == 0
        assert result.collection.stats == {}
        assert result.skipped_uids == []

    def test_empty_selection_after_quality(self, corpus):
        config = PipelineConfig(collection=CollectionConfig(quality_threshold=1.0))
        result = PipelineRunner(config).run(corpus)
        collected = PromptCollector(config=config).collect(corpus)
        assert result.collection == collected
        assert result.collection.n_final == 0
        assert len(result.dataset) == 0

    def test_uncurated_run_never_drops(self, corpus):
        config = PipelineConfig(generation=GenerationConfig(curate=False))
        result = PipelineRunner(config).run(corpus)
        assert result.dataset.n_dropped == 0
        assert not result.dataset.curated
        assert len(result.dataset) == result.collection.n_final


class TestObservability:
    def test_stage_spans_and_checkpoints(self, corpus):
        obs = Observability.enabled(trace_capacity=512)
        PipelineRunner(PipelineConfig(), obs=obs).run(corpus)
        roots = [t.root.name for t in obs.tracer.store]
        assert roots == [f"pipeline.{s}" for s in PipelineRunner.STAGES]
        checkpoints = obs.events.by_kind("pipeline.checkpoint")
        assert [e.attrs["stage"] for e in checkpoints] == list(PipelineRunner.STAGES)
        items = obs.metrics.counter("pas_pipeline_items_total")
        assert items.value(stage="dedup") == len(corpus)

    def test_ticks_are_monotone_across_stages(self, corpus):
        obs = Observability.enabled(trace_capacity=512)
        PipelineRunner(PipelineConfig(), obs=obs).run(corpus)
        windows = [(t.root.start_tick, t.root.end_tick) for t in obs.tracer.store]
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start >= prev_end
