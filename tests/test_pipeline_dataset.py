"""Tests for the PromptPairDataset container."""

import pytest

from repro.pipeline.dataset import PromptPair, PromptPairDataset
from repro.world.aspects import render_directive


def _pair(uid=1, aspects=("depth",), needs=("depth",), category="analysis"):
    complement = " ".join(render_directive(a) for a in aspects)
    return PromptPair(
        prompt_uid=uid,
        prompt_text=f"analyze thing number {uid} in detail",
        complement_text=complement,
        category=category,
        true_category=category,
        true_needs=frozenset(needs),
    )


class TestPromptPair:
    def test_complement_aspects_parsed(self):
        assert _pair(aspects=("depth", "examples")).complement_aspects == {
            "depth",
            "examples",
        }

    def test_label_jaccard_perfect(self):
        assert _pair(aspects=("depth",), needs=("depth",)).label_jaccard == 1.0

    def test_label_jaccard_partial(self):
        pair = _pair(aspects=("depth", "format"), needs=("depth", "examples"))
        assert pair.label_jaccard == pytest.approx(1 / 3)

    def test_label_jaccard_empty_both(self):
        pair = PromptPair(1, "x", "", "chitchat", "chitchat", frozenset())
        assert pair.label_jaccard == 1.0


class TestDataset:
    def test_len_and_iter(self):
        ds = PromptPairDataset([_pair(1), _pair(2)])
        assert len(ds) == 2
        assert len(list(ds)) == 2

    def test_category_distribution(self):
        ds = PromptPairDataset([_pair(1, category="coding"), _pair(2, category="coding"), _pair(3)])
        dist = ds.category_distribution()
        assert dist["coding"] == 2
        assert dist["analysis"] == 1

    def test_mean_label_quality(self):
        ds = PromptPairDataset([
            _pair(aspects=("depth",), needs=("depth",)),
            _pair(aspects=("format",), needs=("depth",)),
        ])
        assert ds.mean_label_quality() == pytest.approx(0.5)

    def test_mean_label_quality_empty(self):
        assert PromptPairDataset([]).mean_label_quality() == 0.0

    def test_training_texts(self):
        ds = PromptPairDataset([_pair(7)])
        texts = ds.training_texts()
        assert texts[0][0].startswith("analyze thing number 7")

    def test_split(self):
        ds = PromptPairDataset([_pair(i) for i in range(10)])
        train, test = ds.split(0.8)
        assert len(train) == 8
        assert len(test) == 2

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            PromptPairDataset([_pair(1)]).split(1.0)

    def test_save_load_roundtrip(self, tmp_path):
        ds = PromptPairDataset([_pair(i) for i in range(5)], curated=True, n_dropped=2)
        path = tmp_path / "pairs.jsonl"
        assert ds.save(path) == 5
        loaded = PromptPairDataset.load(path)
        assert len(loaded) == 5
        assert loaded.pairs[0].prompt_text == ds.pairs[0].prompt_text
        assert loaded.pairs[0].true_needs == ds.pairs[0].true_needs


class TestSerialization:
    """as_dict()/from_dict() parity with ServeResponse/GatewayStats."""

    def test_pair_round_trip(self):
        pair = _pair(3, aspects=("depth", "examples"), needs=("depth", "brevity"))
        assert PromptPair.from_dict(pair.as_dict()) == pair

    def test_pair_dict_is_stable_and_sorted(self):
        data = _pair(needs=("format", "brevity", "depth")).as_dict()
        assert data["true_needs"] == sorted(data["true_needs"])

    def test_dataset_round_trip(self):
        ds = PromptPairDataset([_pair(i) for i in range(4)], curated=False, n_dropped=3)
        restored = PromptPairDataset.from_dict(ds.as_dict())
        assert restored.pairs == ds.pairs
        assert restored.curated == ds.curated
        assert restored.n_dropped == ds.n_dropped

    def test_dataset_round_trip_through_utils_io(self, tmp_path):
        from repro.utils.io import dump_jsonl, load_jsonl

        ds = PromptPairDataset([_pair(i) for i in range(4)], n_dropped=1)
        path = tmp_path / "dataset.jsonl"
        dump_jsonl([ds.as_dict()], path)
        restored = PromptPairDataset.from_dict(next(load_jsonl(path)))
        assert restored.pairs == ds.pairs
        assert restored.n_dropped == ds.n_dropped

    def test_collection_result_round_trip_through_utils_io(self, tmp_path, small_corpus):
        from repro.pipeline.collect import CollectionResult, PromptCollector
        from repro.utils.io import dump_jsonl, load_jsonl

        result = PromptCollector(seed=4).collect(list(small_corpus)[:60])
        path = tmp_path / "collection.jsonl"
        dump_jsonl([result.as_dict()], path)
        restored = CollectionResult.from_dict(next(load_jsonl(path)))
        assert restored == result
        assert isinstance(restored.stats["dedup_removed_uids"], set)


class TestPipelineProducedDataset(object):
    """Checks on a dataset built by the real pipeline (session fixture)."""

    def test_nonempty(self, tiny_dataset):
        assert len(tiny_dataset) > 50

    def test_label_quality_above_chance(self, tiny_dataset):
        assert tiny_dataset.mean_label_quality() > 0.5

    def test_covers_most_categories(self, tiny_dataset):
        assert len(tiny_dataset.category_distribution()) >= 10

    def test_curated_flag(self, tiny_dataset, tiny_raw_dataset):
        assert tiny_dataset.curated
        assert not tiny_raw_dataset.curated

    def test_curation_beats_raw(self, tiny_dataset, tiny_raw_dataset):
        assert tiny_dataset.mean_label_quality() > tiny_raw_dataset.mean_label_quality()
