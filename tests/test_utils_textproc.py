"""Tests for text-processing helpers."""

import pytest

from repro.utils import textproc


class TestNormalize:
    def test_lowercases(self):
        assert textproc.normalize("HeLLo") == "hello"

    def test_collapses_whitespace(self):
        assert textproc.normalize("a   b\t c\n d") == "a b c d"

    def test_strips_accents(self):
        assert textproc.normalize("café") == "cafe"

    def test_keeps_punctuation(self):
        assert textproc.normalize("Hi!") == "hi!"

    def test_empty(self):
        assert textproc.normalize("") == ""


class TestWords:
    def test_basic_split(self):
        assert textproc.words("Hello, world!") == ["hello", "world"]

    def test_apostrophes_kept(self):
        assert textproc.words("Don't panic") == ["don't", "panic"]

    def test_numbers_kept(self):
        assert textproc.words("42 birds") == ["42", "birds"]

    def test_hyphen_splits(self):
        assert textproc.words("re-read") == ["re", "read"]

    def test_empty(self):
        assert textproc.words("...") == []


class TestWordstream:
    def test_canonical_form(self):
        assert textproc.wordstream("Re-read the question!") == "re read the question"

    def test_matches_phrase_across_punctuation(self):
        stream = textproc.wordstream("First, do this; second, do that.")
        assert "first do this second" in stream


class TestCharNgrams:
    def test_padding_applied(self):
        grams = list(textproc.char_ngrams("ab", 3))
        assert grams[0].startswith(" ")
        assert grams[-1].endswith(" ")

    def test_count(self):
        # " ab " has length 4 -> two 3-grams
        assert len(list(textproc.char_ngrams("ab", 3))) == 2

    def test_n_larger_than_text(self):
        assert list(textproc.char_ngrams("a", 10)) == []


class TestWordNgrams:
    def test_bigrams(self):
        grams = list(textproc.word_ngrams(["a", "b", "c"], 2))
        assert grams == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert list(textproc.word_ngrams(["x"], 1)) == [("x",)]

    def test_too_short(self):
        assert list(textproc.word_ngrams(["x"], 2)) == []


class TestSentences:
    def test_splits_on_terminators(self):
        assert textproc.sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_no_empties(self):
        assert "" not in textproc.sentences("A.  B.")

    def test_single_sentence(self):
        assert textproc.sentences("no terminator here") == ["no terminator here"]


class TestTruncateWords:
    def test_truncates(self):
        assert textproc.truncate_words("a b c d", 2) == "a b"

    def test_short_text_unchanged(self):
        assert textproc.truncate_words("a b", 5) == "a b"

    def test_zero_limit(self):
        assert textproc.truncate_words("a b", 0) == ""


class TestJaccard:
    def test_identical(self):
        assert textproc.jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert textproc.jaccard(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert textproc.jaccard([], []) == 1.0

    @pytest.mark.parametrize("a,b,expected", [(["a", "b"], ["b", "c"], 1 / 3)])
    def test_partial(self, a, b, expected):
        assert textproc.jaccard(a, b) == pytest.approx(expected)
