"""Tests for saving/loading trained artifacts."""

import numpy as np
import pytest

from repro.core.pas import PasModel
from repro.errors import NotFittedError, ReproError
from repro.llm.persist import load_predictor, save_predictor
from repro.llm.profiles import CapabilityProfile
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.world.prompts import PromptFactory


class TestPredictorRoundtrip:
    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_predictor(SftDirectivePredictor(), tmp_path / "m")

    def test_roundtrip_predictions_identical(self, trained_pas, tmp_path, factory):
        path = save_predictor(trained_pas.predictor, tmp_path / "predictor")
        loaded = load_predictor(path)
        for _ in range(20):
            prompt = factory.make_prompt()
            assert loaded.predict_aspects(prompt.text) == trained_pas.predictor.predict_aspects(prompt.text)

    def test_npz_suffix_appended(self, trained_pas, tmp_path):
        path = save_predictor(trained_pas.predictor, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_custom_profile_survives(self, tmp_path):
        profile = CapabilityProfile("custom-base", 0.7, 0.9, 0.05, 1.2)
        predictor = SftDirectivePredictor(
            base_model=profile, config=SftConfig(k_neighbors=3), seed=5
        ).fit([("please explain it in detail", "Provide a detailed analysis covering underlying mechanisms and influencing factors.")])
        loaded = load_predictor(save_predictor(predictor, tmp_path / "c"))
        assert loaded.base_profile == profile
        assert loaded.config.k_neighbors == 3
        assert loaded.seed == 5

    def test_bad_format_version_rejected(self, trained_pas, tmp_path):
        import json

        path = save_predictor(trained_pas.predictor, tmp_path / "v")
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            labels = archive["labels"]
            matrix = archive["matrix"]
        meta["format_version"] = 99
        np.savez(path, matrix=matrix, labels=labels, meta=np.array(json.dumps(meta)))
        with pytest.raises(ReproError):
            load_predictor(path)


class TestPasModelRoundtrip:
    def test_untrained_save_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            PasModel().save(tmp_path / "pas")

    def test_roundtrip_augment_identical(self, trained_pas, tmp_path):
        path = trained_pas.save(tmp_path / "pas-model")
        loaded = PasModel.load(path)
        assert loaded.is_trained
        assert loaded.n_training_pairs == trained_pas.n_training_pairs
        factory = PromptFactory(rng=np.random.default_rng(3))
        for _ in range(15):
            prompt = factory.make_prompt()
            assert loaded.augment(prompt.text) == trained_pas.augment(prompt.text)

    def test_loaded_model_base_name(self, trained_pas, tmp_path):
        loaded = PasModel.load(trained_pas.save(tmp_path / "m2"))
        assert loaded.base_model_name == trained_pas.base_model_name
