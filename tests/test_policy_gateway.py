"""Adaptive policy through the serving stack: parity, determinism, wiring.

CI's ``policy`` job re-runs this module under shifted ``PAS_CHAOS_SEED``
offsets.  The contracts pinned here:

1. **Policy off is byte-identical to the unpoliced gateway** — no
   ``strategy`` key in response exports, no ``pas_policy_*`` metric
   series, same responses, stats, and cache state.
2. **The static-only policy serves the same bytes** as no policy at all,
   plus a ``strategy`` tag: the gateway computes the static complement
   through its cache tiers first and the ``static`` arm serves it
   verbatim.
3. **Determinism** — two gateways fed the same request stream make
   identical decisions and export identical bandit state; scalar ``ask``
   and ``ask_batch`` agree response for response and pull for pull.
4. **Failure semantics** — degraded and unaugmented serves carry no
   strategy and never update the bandit; off-corpus prompts are served
   (and counted) but yield no reward.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs import Observability
from repro.policy import AugmentationPolicy, PolicyConfig
from repro.resilience import FaultPlan
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.router import Router, RouterConfig
from repro.serve.types import ServeRequest, ServeResponse
from repro.world.prompts import PromptFactory

#: CI's policy job exports PAS_CHAOS_SEED to shift every seed here.
CHAOS_SEED = int(os.environ.get("PAS_CHAOS_SEED", "0"))

MODEL = "gpt-4-0613"


@pytest.fixture(scope="module")
def corpus():
    factory = PromptFactory(rng=np.random.default_rng(77 + CHAOS_SEED))
    prompts = [factory.make_prompt(cue_rate=0.9) for _ in range(40)]
    prompts += [factory.make_junk() for _ in range(8)]
    return prompts


@pytest.fixture(scope="module")
def requests(corpus):
    return [
        ServeRequest(prompt=p.text, model=MODEL, tenant="acme" if i % 3 else None)
        for i, p in enumerate(corpus)
    ]


def _policy(trained_pas, corpus, **overrides) -> AugmentationPolicy:
    base = dict(enabled=True, judge_seed=CHAOS_SEED, seed=CHAOS_SEED, epsilon=0.3)
    base.update(overrides)
    return AugmentationPolicy.from_config(
        trained_pas, PolicyConfig(**base), corpus=corpus
    )


def _gateway(trained_pas, policy=None, obs=None) -> PasGateway:
    kwargs = {} if obs is None else {"obs": obs}
    return PasGateway(
        trained_pas, GatewayConfig(seed=CHAOS_SEED), policy=policy, **kwargs
    )


def _metric_names(gateway: PasGateway) -> set[str]:
    snapshot = gateway._registry.snapshot()
    return set(snapshot["counters"]) | set(snapshot["histograms"]) | set(
        snapshot["gauges"]
    )


# --------------------------------------------------------------------- #
# 1. policy off == unpoliced gateway
# --------------------------------------------------------------------- #


class TestPolicyOffParity:
    def test_no_strategy_key_and_no_policy_metrics(self, trained_pas, requests):
        gateway = _gateway(trained_pas)
        responses = [gateway.ask(r) for r in requests]
        assert all(r.strategy is None for r in responses)
        assert all("strategy" not in r.as_dict() for r in responses)
        names = _metric_names(gateway)
        assert not any(name.startswith("pas_policy") for name in names)
        assert gateway.policy is None

    def test_static_only_policy_serves_identical_bytes(
        self, trained_pas, corpus, requests
    ):
        plain = _gateway(trained_pas)
        policed = _gateway(
            trained_pas,
            policy=_policy(trained_pas, corpus, strategies=("static",), epsilon=0.0),
        )
        for request in requests:
            a, b = plain.ask(request), policed.ask(request)
            assert b.strategy == "static"
            assert (a.response, a.complement, a.complement_cached, a.status) == (
                b.response,
                b.complement,
                b.complement_cached,
                b.status,
            )
            exported = b.as_dict()
            assert exported.pop("strategy") == "static"
            assert exported == a.as_dict()
        # Cache tiers saw the exact same traffic.
        assert plain.stats.cache_hits == policed.stats.cache_hits

    def test_policy_metrics_registered_only_with_policy(
        self, trained_pas, corpus, requests
    ):
        gateway = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        gateway.ask(requests[0])
        names = _metric_names(gateway)
        assert "pas_policy_pulls_total" in names
        assert "pas_policy_reward" in names


# --------------------------------------------------------------------- #
# 2. determinism
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_two_runs_are_bit_identical(self, trained_pas, corpus, requests):
        def run():
            gateway = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
            responses = [gateway.ask(r) for r in (requests * 3)]
            return responses, gateway.policy.snapshot(), gateway.stats.as_dict()

        (resp_a, snap_a, stats_a), (resp_b, snap_b, stats_b) = run(), run()
        assert [r.as_dict() for r in resp_a] == [r.as_dict() for r in resp_b]
        assert snap_a == snap_b
        assert stats_a == stats_b
        assert {r.strategy for r in resp_a} > {"static"}  # epsilon really explores

    def test_scalar_and_batch_paths_agree(self, trained_pas, corpus, requests):
        scalar = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        batched = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        scalar_responses = [scalar.ask(r) for r in (requests * 2)]
        batched_responses = batched.ask_batch(requests * 2)
        assert [r.as_dict() for r in scalar_responses] == [
            r.as_dict() for r in batched_responses
        ]
        assert scalar.policy.snapshot() == batched.policy.snapshot()

    def test_resumed_policy_continues_bit_identically(
        self, trained_pas, corpus, requests
    ):
        gateway = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        for request in requests:
            gateway.ask(request)
        live = gateway.policy
        resumed = AugmentationPolicy.from_config(
            trained_pas, PolicyConfig.from_dict(live.as_dict()), corpus=corpus
        )
        assert resumed.snapshot() == live.snapshot()
        # Same context/tick stream from here on → same decisions, same
        # state evolution, bit for bit.
        for tick, request in enumerate(requests * 2, start=gateway._clock):
            context = live.context_for(request.prompt, request.tenant)
            assert resumed.context_for(request.prompt, request.tenant) == context
            strategy = live.select(context, tick)
            assert resumed.select(context, tick) == strategy
            complement = live.complement_for(request.prompt, strategy)
            response = f"echo {request.prompt}"
            assert live.observe(
                request.prompt, context, strategy, complement, response
            ) == resumed.observe(request.prompt, context, strategy, complement, response)
        assert resumed.snapshot() == live.snapshot()


# --------------------------------------------------------------------- #
# 3. failure and edge semantics
# --------------------------------------------------------------------- #


class TestFailureSemantics:
    def test_unaugmented_requests_bypass_the_policy(
        self, trained_pas, corpus, requests
    ):
        gateway = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        response = gateway.ask(
            ServeRequest(prompt=requests[0].prompt, model=MODEL, augment=False)
        )
        assert response.status == "ok"
        assert response.strategy is None
        assert gateway.policy.bandit.total_pulls == 0

    def test_degraded_serves_carry_no_strategy_and_never_update(
        self, trained_pas, corpus, requests
    ):
        config = GatewayConfig(
            seed=CHAOS_SEED,
            fault_plan=FaultPlan(seed=CHAOS_SEED, augment_failure_rate=0.9),
        )
        gateway = PasGateway(
            trained_pas, config, policy=_policy(trained_pas, corpus)
        )
        responses = [gateway.ask(r) for r in requests]
        degraded = [r for r in responses if r.status == "degraded"]
        ok = [r for r in responses if r.status == "ok"]
        assert degraded, "fault plan at 0.9 must degrade some serves"
        assert all(r.strategy is None for r in degraded)
        assert all("strategy" not in r.as_dict() for r in degraded)
        assert all(r.strategy is not None for r in ok)
        # Only the ok, on-corpus serves paid the bandit.
        assert gateway.policy.bandit.total_pulls == len(ok)

    def test_off_corpus_prompts_are_served_but_not_learned_from(
        self, trained_pas, corpus
    ):
        gateway = _gateway(trained_pas, policy=_policy(trained_pas, corpus))
        response = gateway.ask(
            ServeRequest(prompt="tell me something entirely off-corpus.", model=MODEL)
        )
        assert response.status == "ok"
        assert response.strategy in gateway.policy.strategies
        counter = gateway._m_policy_pulls
        assert counter.total() == 1  # the pull is still visible in metrics
        assert gateway.policy.bandit.total_pulls == 0  # ...but nothing learned

    def test_policy_select_span_is_traced(self, trained_pas, corpus, requests):
        obs = Observability.enabled()
        gateway = _gateway(
            trained_pas, policy=_policy(trained_pas, corpus), obs=obs
        )
        gateway.ask(requests[0])
        spans = [
            span
            for trace in obs.tracer.store.as_dicts()
            for span in trace["spans"]
        ]
        select = [s for s in spans if s["name"] == "policy.select"]
        assert len(select) == 1
        assert select[0]["attrs"]["strategy"] in gateway.policy.strategies
        assert select[0]["attrs"]["tenant"] in {"acme", "anonymous"}


# --------------------------------------------------------------------- #
# 4. router threading and response export
# --------------------------------------------------------------------- #


class TestRouterAndTypes:
    def test_router_shares_one_policy_across_replicas(
        self, trained_pas, corpus, requests
    ):
        policy = _policy(trained_pas, corpus)
        router = Router(
            trained_pas, RouterConfig(n_replicas=3), policy=policy
        )
        assert router.policy is policy
        assert all(replica.policy is policy for replica in router.replicas)
        for i, request in enumerate(requests):
            router.replicas[i % router.n_replicas].ask(request)
        # Learning pooled fleet-wide: every replica's ok serves landed in
        # the one shared bandit, whatever replica handled them.
        served_ok = sum(
            replica.stats.requests - replica.stats.failures
            for replica in router.replicas
        )
        assert policy.bandit.total_pulls == served_ok > 0

    def test_router_rejects_policy_with_adopted_replicas(self, trained_pas):
        replica = _gateway(trained_pas)
        with pytest.raises(TypeError, match="adopted gateways"):
            Router(replicas=[replica], policy=object())

    def test_serve_response_strategy_round_trips(self):
        tagged = ServeResponse(
            request_id="r1",
            model=MODEL,
            response="x",
            complement="y",
            complement_cached=False,
            prompt_tokens=1,
            completion_tokens=1,
            status="ok",
            error=None,
            attempts=1,
            strategy="salted",
        )
        assert tagged.as_dict()["strategy"] == "salted"
        assert ServeResponse.from_dict(tagged.as_dict()) == tagged
        untagged = ServeResponse.from_dict(
            {k: v for k, v in tagged.as_dict().items() if k != "strategy"}
        )
        assert untagged.strategy is None
        assert "strategy" not in untagged.as_dict()

    def test_enabled_policy_requires_judge_seed(self, trained_pas):
        with pytest.raises(ConfigError, match="judge_seed"):
            AugmentationPolicy.from_config(
                trained_pas, PolicyConfig(enabled=True, judge_seed=None)
            )
