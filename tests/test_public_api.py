"""Tests for the top-level package API (README quickstart path)."""

import repro
from repro import PasEnhancedLLM, SimulatedLLM, build_default_dataset, build_default_pas


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_pipeline_all_exports_resolve(self):
        import repro.pipeline as pipeline

        for name in pipeline.__all__:
            assert hasattr(pipeline, name), name

    def test_pipeline_surface_exported(self):
        from repro import PipelineConfig, PipelineRunner, RunnerConfig

        config = PipelineConfig(runner=RunnerConfig(checkpoint_every=8))
        assert PipelineRunner(config).config is config

    def test_quickstart_path(self, trained_pas):
        """The README example, using the session-trained PAS."""
        target = SimulatedLLM("gpt-4-0613")
        enhanced = PasEnhancedLLM(pas=trained_pas, target=target)
        answer = enhanced.ask("How do I implement an lru cache in python?")
        assert isinstance(answer, str)
        assert answer

    def test_build_default_dataset_deterministic(self):
        a = build_default_dataset(n_prompts=120, seed=8)
        b = build_default_dataset(n_prompts=120, seed=8)
        assert [p.complement_text for p in a] == [p.complement_text for p in b]

    def test_build_default_pas_trains(self):
        pas = build_default_pas(n_prompts=120, seed=8)
        assert pas.is_trained
        assert pas.n_training_pairs > 0
