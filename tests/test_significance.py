"""Tests for the paired-significance harness."""

import pytest

from repro.experiments import significance


class TestPairedSignTest:
    def test_identical_outcomes_p_one(self):
        assert significance.paired_sign_test([1.0, 0.0, 0.5], [1.0, 0.0, 0.5]) == 1.0

    def test_unanimous_difference_small_p(self):
        a = [1.0] * 20
        b = [0.0] * 20
        assert significance.paired_sign_test(a, b) < 1e-4

    def test_symmetric(self):
        a = [1.0, 1.0, 0.0, 0.5, 1.0, 0.0, 1.0, 1.0]
        b = [0.0, 0.5, 0.0, 0.5, 1.0, 1.0, 0.0, 0.0]
        assert significance.paired_sign_test(a, b) == pytest.approx(
            significance.paired_sign_test(b, a)
        )

    def test_balanced_disagreement_large_p(self):
        a = [1.0, 0.0] * 10
        b = [0.0, 1.0] * 10
        assert significance.paired_sign_test(a, b) > 0.5

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            significance.paired_sign_test([1.0], [1.0, 0.0])

    def test_p_value_in_range(self):
        a = [1.0, 0.5, 0.0, 1.0, 1.0]
        b = [0.0, 0.5, 0.0, 0.0, 1.0]
        p = significance.paired_sign_test(a, b)
        assert 0.0 <= p <= 1.0


class TestSignificanceRun:
    @pytest.fixture(scope="class")
    def result(self, quick_ctx):
        return significance.run(quick_ctx)

    def test_twelve_comparisons(self, result):
        assert len(result.comparisons) == 12  # 6 models x 2 arms

    def test_pas_vs_none_mostly_significant(self, result):
        # PAS's gain over the baseline is large; most models should clear
        # the 0.05 sign test even at quick scale.
        assert result.n_significant("none") >= 4

    def test_cis_bracket_point_estimates(self, result):
        for c in result.comparisons:
            assert c.pas_ci[0] <= c.pas_score <= c.pas_ci[1]
            assert c.arm_ci[0] <= c.arm_score <= c.arm_ci[1]

    def test_render(self, result):
        text = significance.render(result)
        assert "sign-test p" in text
        assert "significant at 0.05" in text
