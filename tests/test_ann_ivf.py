"""Tests for the IVF-flat index."""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.ivf import IvfFlatIndex
from repro.errors import IndexError_, NotFittedError


def _points(n=300, dim=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


def _built(points, **kwargs):
    index = IvfFlatIndex(dim=points.shape[1], **kwargs)
    index.train(points)
    for i, p in enumerate(points):
        index.add(p, key=i)
    return index


class TestLifecycle:
    def test_add_before_train_rejected(self):
        index = IvfFlatIndex(dim=4)
        with pytest.raises(NotFittedError):
            index.add(np.ones(4), key=0)

    def test_search_before_train_rejected(self):
        with pytest.raises(NotFittedError):
            IvfFlatIndex(dim=4).search(np.ones(4), 1)

    def test_empty_train_rejected(self):
        with pytest.raises(IndexError_):
            IvfFlatIndex(dim=4).train(np.zeros((0, 4)))

    @pytest.mark.parametrize("kwargs", [
        {"dim": 0},
        {"dim": 4, "n_lists": 0},
        {"dim": 4, "n_probe": 0},
        {"dim": 4, "metric": "dot"},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(IndexError_):
            IvfFlatIndex(**kwargs)

    def test_len(self):
        points = _points(20)
        assert len(_built(points, n_lists=4)) == 20


class TestSearch:
    def test_empty_index(self):
        index = IvfFlatIndex(dim=4)
        index.train(np.ones((3, 4)))
        assert index.search(np.ones(4), 5) == []

    def test_exact_match_found(self):
        points = _points(200, seed=1)
        index = _built(points, n_lists=8, n_probe=3)
        hits = index.search(points[17], 1)
        assert hits[0][0] == 17

    def test_results_sorted(self):
        points = _points(150, seed=2)
        index = _built(points, n_lists=8, n_probe=4)
        hits = index.search(_points(1, seed=3)[0], 10)
        dists = [d for _, d in hits]
        assert dists == sorted(dists)

    def test_full_probe_equals_bruteforce(self):
        points = _points(120, dim=6, seed=4)
        index = _built(points, n_lists=6, n_probe=6)
        brute = BruteForceIndex(dim=6)
        # cosine metric normalises internally: feed normalised to brute
        normed = points / np.linalg.norm(points, axis=1, keepdims=True)
        for i, p in enumerate(normed):
            brute.add(p, key=i)
        query = _points(1, dim=6, seed=5)[0]
        ivf_keys = [k for k, _ in index.search(query, 10)]
        brute_keys = [k for k, _ in brute.search(query / np.linalg.norm(query), 10)]
        assert ivf_keys == brute_keys

    def test_recall_grows_with_probes(self):
        points = _points(400, dim=8, seed=6)
        index = _built(points, n_lists=16, n_probe=1)
        brute = BruteForceIndex(dim=8, metric="l2")
        for i, p in enumerate(points):
            brute.add(p, key=i)
        queries = _points(25, dim=8, seed=7)

        def recall(n_probe):
            total = 0.0
            for q in queries:
                exact = {k for k, _ in brute.search(q, 10)}
                # use l2 brute as reference ordering proxy; rebuild ivf l2
                got = {k for k, _ in index.search(q, 10, n_probe=n_probe)}
                total += len(got & exact) / 10
            return total / len(queries)

        # cosine vs l2 orderings differ; compare relative growth only
        assert recall(8) >= recall(1)

    def test_k_must_be_positive(self):
        points = _points(10)
        index = _built(points, n_lists=2)
        with pytest.raises(IndexError_):
            index.search(points[0], 0)

    def test_dim_mismatch(self):
        points = _points(10, dim=4)
        index = _built(points, n_lists=2)
        with pytest.raises(IndexError_):
            index.search(np.ones(5), 1)

    def test_deterministic(self):
        points = _points(100, seed=8)
        a = _built(points, n_lists=8, seed=3).search(points[0], 5)
        b = _built(points, n_lists=8, seed=3).search(points[0], 5)
        assert a == b
