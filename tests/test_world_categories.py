"""Tests for the category registry."""

import pytest

from repro.world.aspects import ASPECTS
from repro.world.categories import CATEGORIES, category_names


class TestCategories:
    def test_fourteen_categories(self):
        assert len(category_names()) == 14  # Figure 6

    def test_names_unique(self):
        names = category_names()
        assert len(names) == len(set(names))

    def test_qa_and_coding_have_largest_share(self):
        shares = {name: CATEGORIES[name].share for name in category_names()}
        top_two = sorted(shares, key=shares.get, reverse=True)[:2]
        assert set(top_two) == {"question_answering", "coding"}

    @pytest.mark.parametrize("name", category_names())
    def test_aspect_priors_reference_real_aspects(self, name):
        for aspect in CATEGORIES[name].aspect_prior:
            assert aspect in ASPECTS

    @pytest.mark.parametrize("name", category_names())
    def test_priors_are_probabilities(self, name):
        for prob in CATEGORIES[name].aspect_prior.values():
            assert 0.0 < prob <= 1.0

    @pytest.mark.parametrize("name", category_names())
    def test_templates_have_slots(self, name):
        for template in CATEGORIES[name].templates:
            assert "{topic}" in template or "{detail}" in template

    @pytest.mark.parametrize("name", category_names())
    def test_topics_nonempty(self, name):
        assert len(CATEGORIES[name].topics) >= 4

    def test_shares_positive(self):
        assert all(c.share > 0 for c in CATEGORIES.values())
