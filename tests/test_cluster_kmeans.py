"""Tests for k-means."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans


def _blobs(seed=0, k=3, per=20, spread=0.05):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(k, 4)) * 10
    points = np.vstack([
        center + rng.normal(scale=spread, size=(per, 4)) for center in centers
    ])
    return points, centers


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, _ = _blobs(seed=1)
        result = kmeans(points, 3, seed=1)
        # Each blob's 20 points should share an assignment.
        for blob in range(3):
            block = result.assignments[blob * 20 : (blob + 1) * 20]
            assert len(set(block.tolist())) == 1

    def test_k_clusters_produced(self):
        points, _ = _blobs(seed=2)
        result = kmeans(points, 3, seed=2)
        assert result.k == 3
        assert len(set(result.assignments.tolist())) == 3

    def test_inertia_decreases_with_k(self):
        points, _ = _blobs(seed=3)
        i1 = kmeans(points, 1, seed=3).inertia
        i3 = kmeans(points, 3, seed=3).inertia
        assert i3 < i1

    def test_k_capped_at_n(self):
        points = np.random.default_rng(4).normal(size=(5, 2))
        result = kmeans(points, 10, seed=4)
        assert result.k == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2)

    def test_deterministic(self):
        points, _ = _blobs(seed=5)
        a = kmeans(points, 3, seed=9)
        b = kmeans(points, 3, seed=9)
        assert np.allclose(a.centroids, b.centroids)
        assert (a.assignments == b.assignments).all()

    def test_single_cluster_centroid_is_mean(self):
        points = np.random.default_rng(6).normal(size=(30, 3))
        result = kmeans(points, 1, seed=6)
        assert np.allclose(result.centroids[0], points.mean(axis=0), atol=1e-9)

    def test_duplicate_points_handled(self):
        points = np.ones((10, 2))
        result = kmeans(points, 3, seed=7)
        assert result.inertia == pytest.approx(0.0)
