"""Unit tests for the append-only structured event log."""

import pytest

from repro.obs.events import NULL_EVENT_LOG, EventLog, NullEventLog
from repro.utils.io import load_jsonl


class TestEventLog:
    def test_emit_assigns_seq_and_clock_tick(self):
        tick = {"now": 7}
        log = EventLog(clock=lambda: tick["now"])
        first = log.emit("fault.injected", stage="completion")
        tick["now"] = 9
        second = log.emit("breaker.transition", model="m", state="open")
        assert (first.seq, first.tick) == (0, 7)
        assert (second.seq, second.tick) == (1, 9)
        assert second.attrs == {"model": "m", "state": "open"}
        assert len(log) == 2

    def test_bind_clock_rebinds(self):
        log = EventLog()
        assert log.emit("x").tick == 0
        log.bind_clock(lambda: 42)
        assert log.emit("x").tick == 42

    def test_ring_capacity_keeps_recent_but_counts_all(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 2
        assert log.emitted == 5
        assert [e.attrs["i"] for e in log] == [3, 4]
        # seq reveals the drop: the survivors are not seq 0 and 1.
        assert [e.seq for e in log] == [3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_by_kind_and_kinds(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [e.kind for e in log.by_kind("a")] == ["a", "a"]
        assert log.kinds() == {"a": 2, "b": 1}

    def test_as_dicts_sorted_attrs(self):
        log = EventLog()
        log.emit("e", zebra=1, apple=2)
        (d,) = log.as_dicts()
        assert list(d["attrs"]) == ["apple", "zebra"]
        assert set(d) == {"seq", "tick", "kind", "attrs"}

    def test_export_jsonl_round_trip(self, tmp_path):
        log = EventLog(clock=lambda: 3)
        log.emit("cache.evict", tier="complement", key="p")
        log.emit("serve.degraded", model="m", error="AugmentationError: x")
        path = tmp_path / "events.jsonl"
        assert log.export_jsonl(path) == 2
        assert list(load_jsonl(path)) == log.as_dicts()

    def test_clear_keeps_seq(self):
        log = EventLog()
        log.emit("a")
        log.clear()
        assert len(log) == 0
        assert log.emit("b").seq == 1


class TestNullEventLog:
    def test_surface_is_inert(self, tmp_path):
        log = NullEventLog()
        assert not log.enabled
        assert log.emit("anything", a=1) is None
        log.bind_clock(lambda: 5)
        assert len(log) == 0
        assert list(log) == []
        assert log.emitted == 0
        assert log.by_kind("anything") == []
        assert log.kinds() == {}
        assert log.as_dicts() == []
        assert log.export_jsonl(tmp_path / "x.jsonl") == 0
        log.clear()

    def test_singleton_exists(self):
        assert not NULL_EVENT_LOG.enabled
