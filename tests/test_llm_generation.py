"""Tests for the response renderer."""

import numpy as np
import pytest

from repro.llm.generation import RESPONSE_SECTIONS, extract_topic_words, render_response
from repro.world.aspects import ASPECTS, aspect_names, find_markers
from repro.world.quality import count_flaws


class TestResponseSections:
    def test_all_aspects_covered(self):
        assert set(RESPONSE_SECTIONS) == set(aspect_names())

    @pytest.mark.parametrize("aspect", aspect_names())
    def test_sections_carry_their_marker(self, aspect):
        for template in RESPONSE_SECTIONS[aspect]:
            assert aspect in find_markers(template), template

    @pytest.mark.parametrize("aspect", aspect_names())
    def test_sections_carry_no_foreign_markers(self, aspect):
        for template in RESPONSE_SECTIONS[aspect]:
            found = find_markers(template)
            assert found == {aspect}, (template, found)

    @pytest.mark.parametrize("aspect", aspect_names())
    def test_sections_carry_no_flaws(self, aspect):
        for template in RESPONSE_SECTIONS[aspect]:
            assert count_flaws(template) == 0


class TestExtractTopicWords:
    def test_content_words_extracted(self):
        words = extract_topic_words("how do I tune my database indexes quickly?")
        assert "database" in words
        assert "indexes" in words

    def test_stopwords_excluded(self):
        words = extract_topic_words("what is the which and about?")
        assert words == []

    def test_limit_respected(self):
        text = "alpha bravo charlie delta echo foxtrot golf hotel"
        assert len(extract_topic_words(text, limit=3)) == 3

    def test_no_duplicates(self):
        words = extract_topic_words("tree tree tree bark bark")
        assert words == ["tree", "bark"]


class TestRenderResponse:
    def _render(self, **kwargs):
        defaults = dict(
            prompt_text="how do i configure nginx caching?",
            covered_aspects=set(),
            n_elaborations=3,
            flawed_slots=set(),
            missed_trap=False,
            rng=np.random.default_rng(0),
        )
        defaults.update(kwargs)
        return render_response(**defaults)

    def test_covered_aspects_marked(self):
        response = self._render(covered_aspects={"depth", "examples"})
        assert {"depth", "examples"} <= find_markers(response)

    def test_uncovered_aspects_unmarked(self):
        response = self._render(covered_aspects=set())
        assert find_markers(response) == set()

    def test_flawed_slots_produce_flaws(self):
        response = self._render(flawed_slots={0, 2})
        assert count_flaws(response) == 2

    def test_missed_trap_blunders(self):
        response = self._render(missed_trap=True)
        assert count_flaws(response) >= 2

    def test_elaboration_count_scales_length(self):
        short = self._render(n_elaborations=1)
        long = self._render(n_elaborations=10)
        assert len(long.split()) > len(short.split())

    def test_topic_in_intro(self):
        response = self._render()
        assert "nginx" in response.lower()

    def test_zero_elaborations_ok(self):
        response = self._render(n_elaborations=0)
        assert response  # intro + closing still present

    def test_deterministic_given_rng(self):
        a = self._render(rng=np.random.default_rng(7))
        b = self._render(rng=np.random.default_rng(7))
        assert a == b
