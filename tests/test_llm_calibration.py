"""Tests for black-box profile estimation."""

import pytest

from repro.llm.calibration import estimate_profile
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import CapabilityProfile, get_profile


class TestEstimateProfile:
    def test_probe_count_validated(self):
        with pytest.raises(ValueError):
            estimate_profile(SimulatedLLM("gpt-4-0613"), n_probes=3)

    @pytest.mark.parametrize(
        "model", ["gpt-4-turbo-2024-04-09", "gpt-4-0613", "gpt-3.5-turbo-1106"]
    )
    def test_recovers_known_profiles(self, model):
        engine = SimulatedLLM(model)
        estimate = estimate_profile(engine, n_probes=150)
        profile = get_profile(model)
        assert estimate.close_to(profile, tolerance=0.15), (estimate, profile)

    def test_orders_models_correctly(self):
        strong = estimate_profile(SimulatedLLM("gpt-4-turbo-2024-04-09"), n_probes=100)
        weak = estimate_profile(SimulatedLLM("gpt-3.5-turbo-1106"), n_probes=100)
        assert strong.cue_sensitivity > weak.cue_sensitivity
        assert strong.instruction_following > weak.instruction_following
        assert strong.error_rate < weak.error_rate

    def test_extreme_profile_recovered(self):
        perfect = CapabilityProfile("probe-perfect", 1.0, 1.0, 0.0, 1.0)
        estimate = estimate_profile(SimulatedLLM(perfect), n_probes=60)
        assert estimate.cue_sensitivity > 0.9
        assert estimate.instruction_following > 0.9
        assert estimate.error_rate < 0.05

    def test_deterministic(self):
        engine = SimulatedLLM("gpt-4-0613")
        assert estimate_profile(engine, n_probes=40) == estimate_profile(engine, n_probes=40)
