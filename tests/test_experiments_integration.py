"""Integration tests: every experiment harness runs at quick scale and
reproduces the paper's qualitative shapes."""

import pytest

from repro.experiments import casestudies, fig1b, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.runner import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def t1(quick_ctx):
    return table1.run(quick_ctx)


@pytest.fixture(scope="module")
def t5(quick_ctx):
    return table5.run(quick_ctx)


class TestTable1:
    def test_all_arms_and_models_present(self, t1):
        assert len(t1.rows) == 18  # 3 methods x 6 models

    def test_pas_beats_baseline_on_average(self, t1):
        assert t1.pas_gain_over_none > 2.0

    def test_pas_beats_bpo_on_average(self, t1):
        assert t1.pas_gain_over_bpo > 0.0

    def test_scores_in_range(self, t1):
        for row in t1.rows:
            for metric in ("arena_hard", "alpaca_eval", "alpaca_eval_lc"):
                assert 0.0 <= getattr(row, metric) <= 100.0

    def test_baseline_model_ordering_roughly_papers(self, t1):
        baseline = {r.model: r.average for r in t1.method_rows("none")}
        assert baseline["gpt-4-turbo-2024-04-09"] > baseline["gpt-3.5-turbo-1106"]
        assert baseline["gpt-4-1106-preview"] > baseline["gpt-3.5-turbo-1106"]

    def test_render(self, t1):
        text = table1.render(t1)
        assert "Table 1" in text
        assert "PAS (vs None)" in text


class TestTable2:
    def test_same_base_pas_still_beats_bpo(self, quick_ctx):
        result = table2.run(quick_ctx)
        assert result.pas_gain_over_bpo > 0.0
        assert "Table 2" in table2.render(result)


class TestTable3:
    def test_matrix_matches_paper(self, quick_ctx):
        result = table3.run(quick_ctx)
        pas = result.row("pas")
        assert pas.satisfies_all
        bpo = result.row("bpo")
        assert bpo.needs_human_labor and bpo.llm_agnostic and bpo.task_agnostic
        for name in ("opro", "protegi"):
            row = result.row(name)
            assert not row.llm_agnostic and not row.task_agnostic
        for name in ("ppo", "dpo"):
            row = result.row(name)
            assert row.needs_human_labor and row.task_agnostic

    def test_only_pas_satisfies_all(self, quick_ctx):
        result = table3.run(quick_ctx)
        satisfying = [p.method for p in result.profiles if p.satisfies_all]
        assert satisfying == ["pas"]


class TestTable4AndFig1b:
    def test_human_eval_improves_on_average(self, quick_ctx):
        result = table4.run(quick_ctx)
        assert result.average_gain("average_score") > 0.0
        assert result.average_gain("availability_pct") >= 0.0
        assert "Table 4" in table4.render(result)

    def test_gsb_mean_win_share_above_half(self, quick_ctx):
        result = fig1b.run(quick_ctx)
        assert result.mean_win_share > 50.0
        assert "Figure 1(b)" in fig1b.render(result)


class TestTable5:
    def test_ablation_hurts(self, t5):
        assert t5.ablation_drop > 0.0

    def test_label_quality_gap(self, t5):
        assert t5.curated_label_quality > t5.raw_label_quality

    def test_render(self, t5):
        assert "wo selection" in table5.render(t5)


class TestFigures:
    def test_fig6_distribution(self, quick_ctx):
        result = fig6.run(quick_ctx)
        assert result.n_categories == 14
        assert result.n_pairs > 0
        assert "Figure 6" in fig6.render(result)

    def test_fig7_efficiency_ratios_exact(self, quick_ctx):
        result = fig7.run(quick_ctx, build_demo_corpora=False)
        assert result.efficiency["bpo"] == pytest.approx(14000 / 9000)
        assert result.efficiency["ppo"] == pytest.approx(77000 / 9000)
        assert result.efficiency["dpo"] == pytest.approx(170000 / 9000)
        assert "Figure 7" in fig7.render(result)


class TestCaseStudies:
    def test_all_cases_improve(self, quick_ctx):
        result = casestudies.run(quick_ctx)
        assert len(result.cases) == 3
        assert result.mean_improvement > 0.0

    def test_trap_case_fixed_by_pas(self, quick_ctx):
        result = casestudies.run(quick_ctx)
        trap_case = result.cases[0]
        assert trap_case.assessment_with.flaw_count < trap_case.assessment_without.flaw_count

    def test_render(self, quick_ctx):
        text = casestudies.render(casestudies.run(quick_ctx))
        assert "Case 1" in text


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "fig1b", "fig6", "fig7", "casestudies", "significance",
            "breakdown", "policy",
        }

    def test_unknown_experiment_rejected(self, quick_ctx):
        with pytest.raises(ValueError):
            run_experiment("table9", quick_ctx)

    def test_run_experiment_returns_text(self, quick_ctx):
        _, text = run_experiment("table3", quick_ctx)
        assert "flexibility" in text
