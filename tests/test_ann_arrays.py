"""Parity suite for the array-native search surface.

``search_batch_arrays`` is the hot-loop API; these tests pin it against
the tuple API and the scalar ``search`` loop — same hits, same order,
bit-identical distances — across the edge shapes the sharded fan-out has
to survive (empty shards, ``k`` larger than the corpus, exact distance
ties, one-shard delegation).
"""

import numpy as np
import pytest

from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex


def _data(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


def _strip_pads(row_keys, row_dists):
    valid = ~((row_keys == -1) & np.isinf(row_dists))
    return list(zip(row_keys[valid].tolist(), row_dists[valid].tolist()))


class TestMonolithicArrays:
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_arrays_match_tuple_api_and_scalar_loop(self, metric):
        index = HnswIndex(dim=16, metric=metric, seed=3)
        index.add_batch(_data(120, 16), range(120))
        queries = _data(20, 16, seed=4)
        keys, dists = index.search_batch_arrays(queries, 7)
        as_tuples = index.search_batch(queries, 7)
        scalar = [index.search(q, 7) for q in queries]
        assert as_tuples == scalar
        for i in range(len(queries)):
            assert _strip_pads(keys[i], dists[i]) == as_tuples[i]

    def test_array_shapes_and_dtypes(self):
        index = HnswIndex(dim=8, seed=0)
        index.add_batch(_data(30, 8), range(30))
        keys, dists = index.search_batch_arrays(_data(5, 8, seed=1), 4)
        assert keys.shape == (5, 4) and dists.shape == (5, 4)
        assert keys.dtype == np.int64 and dists.dtype == np.float64

    def test_k_larger_than_corpus_pads_tail(self):
        index = HnswIndex(dim=8, seed=0)
        index.add_batch(_data(3, 8), [10, 11, 12])
        keys, dists = index.search_batch_arrays(_data(2, 8, seed=1), 6)
        assert sorted(keys[0, :3].tolist()) == [10, 11, 12]
        assert np.all(keys[:, 3:] == -1)
        assert np.all(np.isinf(dists[:, 3:]))
        assert np.all(np.isfinite(dists[:, :3]))

    def test_empty_index_and_empty_batch(self):
        index = HnswIndex(dim=8)
        keys, dists = index.search_batch_arrays(_data(4, 8), 3)
        assert keys.shape == (4, 3) and np.all(keys == -1)
        assert np.all(np.isinf(dists))
        keys, dists = index.search_batch_arrays(np.zeros((0, 8)), 3)
        assert keys.shape == (0, 3) and dists.shape == (0, 3)


class TestShardedArrays:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_arrays_match_tuple_api_and_scalar_loop(self, n_shards):
        index = ShardedHnswIndex(dim=12, n_shards=n_shards, seed=5)
        index.add_batch(_data(90, 12), range(90))
        queries = _data(15, 12, seed=6)
        keys, dists = index.search_batch_arrays(queries, 6)
        as_tuples = index.search_batch(queries, 6)
        assert as_tuples == [index.search(q, 6) for q in queries]
        for i in range(len(queries)):
            assert _strip_pads(keys[i], dists[i]) == as_tuples[i]

    def test_single_shard_arrays_identical_to_monolithic(self):
        points, queries = _data(80, 10), _data(12, 10, seed=7)
        mono = HnswIndex(dim=10, seed=9)
        mono.add_batch(points, range(80))
        sharded = ShardedHnswIndex(dim=10, n_shards=1, seed=9)
        sharded.add_batch(points, range(80))
        mono_keys, mono_dists = mono.search_batch_arrays(queries, 5)
        shard_keys, shard_dists = sharded.search_batch_arrays(queries, 5)
        assert np.array_equal(mono_keys, shard_keys)
        assert np.array_equal(mono_dists, shard_dists)

    def test_empty_shards_contribute_nothing(self):
        index = ShardedHnswIndex(dim=8, n_shards=4, seed=0)
        index.add_batch(_data(3, 8), range(3))  # shard 3 stays empty
        keys, dists = index.search_batch_arrays(_data(4, 8, seed=1), 5)
        for i in range(4):
            hits = _strip_pads(keys[i], dists[i])
            assert sorted(key for key, _ in hits) == [0, 1, 2]
        assert np.all(keys[:, 3:] == -1)

    def test_duplicate_distance_tie_breaking(self):
        """Exact ties order by (distance, shard index, within-shard rank).

        Eight copies of one point land round-robin on four shards; with the
        query equal to the point every L2 distance is exactly 0.0, so the
        merge order is decided purely by the declared tie-break.
        """
        point = np.array([1.0, -2.0, 0.5, 3.0])
        points = np.tile(point, (8, 1))
        sharded = ShardedHnswIndex(dim=4, n_shards=4, metric="l2", seed=0)
        sharded.add_batch(points, range(8))
        hits = sharded.search(point, 8)
        assert [key for key, _ in hits] == [0, 4, 1, 5, 2, 6, 3, 7]
        assert all(d == 0.0 for _, d in hits)
        # The monolithic index breaks the same ties by insertion order.
        mono = HnswIndex(dim=4, metric="l2", seed=0)
        mono.add_batch(points, range(8))
        assert [key for key, _ in mono.search(point, 8)] == list(range(8))

    def test_scan_and_beam_shards_agree_with_bruteforce_order(self):
        """Forcing the beam path keeps the contract."""
        points, queries = _data(96, 12), _data(10, 12, seed=2)
        scan = ShardedHnswIndex(dim=12, n_shards=4, seed=1)
        beam = ShardedHnswIndex(
            dim=12, n_shards=4, seed=1, scan_threshold=0, large_shard_search="beam"
        )
        scan.add_batch(points, range(96))
        beam.add_batch(points, range(96))
        for q in queries:
            scan_hits = scan.search(q, 5, ef=128)
            beam_hits = beam.search(q, 5, ef=128)
            assert {k for k, _ in scan_hits} == {k for k, _ in beam_hits}


class TestRoutedShards:
    """The routed-scan path for shards above ``scan_threshold``."""

    def _routed(self, n=1200, dim=16, metric="cosine", probes=None, seed=5):
        index = ShardedHnswIndex(
            dim=dim,
            n_shards=4,
            m=8,
            ef_construction=32,
            metric=metric,
            seed=seed,
            scan_threshold=16,
            route_probes=probes,
        )
        points = _data(n, dim, seed=seed)
        index.add_batch(points, range(n))
        return index, points

    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_batch_matches_scalar_and_arrays(self, metric):
        index, _ = self._routed(metric=metric)
        queries = _data(12, 16, seed=6)
        scalar = [index.search(q, 5) for q in queries]
        batch = index.search_batch(queries, 5)
        keys, dists = index.search_batch_arrays(queries, 5)
        assert batch == scalar
        for i in range(len(queries)):
            assert _strip_pads(keys[i], dists[i]) == batch[i]

    def test_recall_against_exact_scan(self):
        index, points = self._routed()
        exact = ShardedHnswIndex(dim=16, n_shards=4, seed=5, scan_threshold=10**9)
        exact.add_batch(points, range(len(points)))
        queries = _data(40, 16, seed=7)
        routed_hits = index.search_batch(queries, 10)
        exact_hits = exact.search_batch(queries, 10)
        recall = np.mean(
            [
                len({k for k, _ in r} & {k for k, _ in e}) / 10
                for r, e in zip(routed_hits, exact_hits)
            ]
        )
        assert recall >= 0.9
        # Returned distances are always exact, even on the routed path.
        for qi, q in enumerate(queries):
            for key, dist in routed_hits[qi]:
                v = points[key]
                expect = 1.0 - float(v @ q) / (
                    float(np.linalg.norm(v)) * float(np.linalg.norm(q))
                )
                assert abs(dist - expect) < 1e-9

    def test_probing_everything_equals_exact_scan(self):
        index, points = self._routed(probes=10**6)
        exact = ShardedHnswIndex(dim=16, n_shards=4, seed=5, scan_threshold=10**9)
        exact.add_batch(points, range(len(points)))
        queries = _data(10, 16, seed=8)
        assert index.search_batch(queries, 6) == exact.search_batch(queries, 6)

    def test_deterministic_across_instances(self):
        a, _ = self._routed()
        b, _ = self._routed()
        queries = _data(8, 16, seed=9)
        assert a.search_batch(queries, 5) == b.search_batch(queries, 5)

    def test_router_invalidated_by_inserts(self):
        index, points = self._routed()
        query = _data(1, 16, seed=11)[0]
        before = index.search(query, 3)
        # Insert the query itself; the rebuilt router must surface it.
        index.add(query, key=999_999)
        after = index.search(query, 3)
        assert after[0][0] == 999_999
        assert after[0][1] < 1e-9
        assert before[0][0] != 999_999
