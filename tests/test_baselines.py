"""Tests for the APE baseline implementations."""

import numpy as np
import pytest

from repro.baselines.base import NoApe
from repro.baselines.bpo import BpoConfig, BpoModel, build_bpo_preference_corpus
from repro.baselines.cot import ZeroShotCot
from repro.baselines.dpo import DpoComparator
from repro.baselines.ppo import PpoComparator
from repro.errors import NotFittedError
from repro.world.aspects import parse_directives
from repro.world.prompts import PromptFactory


class TestNoApe:
    def test_identity_transform(self):
        assert NoApe().transform("hello") == ("hello", None)

    def test_flexibility(self):
        flex = NoApe().flexibility
        assert not flex.needs_human_labor
        assert flex.llm_agnostic and flex.task_agnostic


class TestZeroShotCot:
    def test_always_appends_step_directive(self):
        prompt, supplement = ZeroShotCot().transform("what is 2+2?")
        assert prompt == "what is 2+2?"
        assert parse_directives(supplement) == {"step_by_step"}

    def test_no_training_data(self):
        assert ZeroShotCot().flexibility.training_examples == 0


class TestBpoCorpus:
    def test_size(self):
        assert len(build_bpo_preference_corpus(n_pairs=50, seed=1)) == 50

    def test_chosen_extends_prompt(self):
        for record in build_bpo_preference_corpus(n_pairs=20, seed=2):
            assert record.chosen.startswith(record.prompt_text)
            assert record.rejected == record.prompt_text

    def test_chosen_carries_directives(self):
        parsed = [
            parse_directives(r.chosen)
            for r in build_bpo_preference_corpus(n_pairs=30, seed=3)
        ]
        assert sum(bool(p) for p in parsed) >= 25

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_bpo_preference_corpus(n_pairs=0)
        with pytest.raises(ValueError):
            build_bpo_preference_corpus(n_pairs=5, label_noise=1.5)

    def test_deterministic(self):
        a = build_bpo_preference_corpus(n_pairs=10, seed=4)
        b = build_bpo_preference_corpus(n_pairs=10, seed=4)
        assert [r.chosen for r in a] == [r.chosen for r in b]


class TestBpoModel:
    @pytest.fixture(scope="class")
    def bpo(self):
        return BpoModel(n_preference_pairs=300, seed=5)

    def test_rewrites_prompt_no_supplement(self, bpo, factory):
        prompt = factory.make_prompt()
        rewritten, supplement = bpo.transform(prompt.text)
        assert supplement is None
        assert rewritten

    def test_most_rewrites_keep_original_text(self, bpo):
        factory = PromptFactory(rng=np.random.default_rng(6))
        kept = 0
        for _ in range(50):
            prompt = factory.make_prompt()
            rewritten, _ = bpo.transform(prompt.text)
            kept += prompt.text in rewritten
        assert kept >= 35  # drift rates are ~10%

    def test_some_rewrites_drift(self, bpo):
        factory = PromptFactory(rng=np.random.default_rng(7))
        drifted = 0
        for _ in range(120):
            prompt = factory.make_prompt()
            rewritten, _ = bpo.transform(prompt.text)
            drifted += prompt.text not in rewritten
        assert drifted > 0

    def test_rewrites_usually_add_directives(self, bpo):
        factory = PromptFactory(rng=np.random.default_rng(8))
        with_directives = 0
        for _ in range(40):
            prompt = factory.make_prompt(cue_rate=1.0)
            rewritten, _ = bpo.transform(prompt.text)
            with_directives += bool(parse_directives(rewritten))
        assert with_directives >= 25

    def test_deterministic(self, bpo, factory):
        prompt = factory.make_prompt()
        assert bpo.transform(prompt.text) == bpo.transform(prompt.text)

    def test_flexibility_matches_paper_row(self, bpo):
        flex = bpo.flexibility
        assert flex.needs_human_labor
        assert flex.llm_agnostic
        assert flex.task_agnostic
        assert flex.training_examples == 14000

    def test_invalid_drift_config(self):
        with pytest.raises(ValueError):
            BpoConfig(truncate_rate=0.6, generic_rate=0.5).validate()


class TestPpoDpoComparators:
    def test_ppo_passthrough(self):
        assert PpoComparator().transform("x") == ("x", None)

    def test_ppo_corpus_rewards_bounded(self):
        records = PpoComparator(seed=1).build_training_corpus(30)
        assert len(records) == 30
        assert all(0.0 <= r.reward <= 1.0 for r in records)

    def test_ppo_flexibility(self):
        flex = PpoComparator().flexibility
        assert flex.needs_human_labor and not flex.llm_agnostic and flex.task_agnostic
        assert flex.training_examples == 77000

    def test_dpo_corpus_prefers_better_response(self):
        from repro.world.quality import assess_response

        comparator = DpoComparator(seed=2)
        records = comparator.build_training_corpus(20)
        assert len(records) == 20
        # chosen must never be strictly worse than rejected per the oracle —
        # verify on reconstructed prompts is impossible here, so check types.
        assert all(r.chosen != r.rejected for r in records)

    def test_dpo_flexibility(self):
        flex = DpoComparator().flexibility
        assert flex.training_examples == 170000

    def test_corpus_size_validation(self):
        with pytest.raises(ValueError):
            PpoComparator().build_training_corpus(0)
        with pytest.raises(ValueError):
            DpoComparator().build_training_corpus(-5)
