"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.UnknownModelError,
            errors.NotFittedError,
            errors.EmptyDatasetError,
            errors.GenerationError,
            errors.IndexError_,
            errors.BudgetExceededError,
            errors.AugmentationError,
            errors.DeadlineExceededError,
            errors.CircuitOpenError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_at_boundary(self):
        """One except clause suffices at an API boundary."""
        from repro.llm.profiles import get_profile

        with pytest.raises(errors.ReproError):
            get_profile("no-such-model")

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)
