"""Tests for text-table and chart rendering."""

import pytest

from repro.experiments.reporting import ascii_table, bar_chart, format_delta


class TestAsciiTable:
    def test_basic_layout(self):
        table = ascii_table(["A", "B"], [["one", 2.5]])
        assert "| A" in table
        assert "2.50" in table

    def test_title_included(self):
        assert ascii_table(["X"], [["v"]], title="My Title").startswith("My Title")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["A", "B"], [["only-one"]])

    def test_column_widths_adapt(self):
        table = ascii_table(["H"], [["a-very-long-cell-value"]])
        lines = table.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines if line.startswith(("|", "+")))

    def test_empty_rows(self):
        table = ascii_table(["A"], [])
        assert "| A" in table


class TestFormatDelta:
    def test_positive(self):
        assert format_delta(61.2, 56.9) == "61.20 (+4.30)"

    def test_negative(self):
        assert format_delta(50.0, 52.5) == "50.00 (-2.50)"

    def test_zero(self):
        assert format_delta(1.0, 1.0) == "1.00 (+0.00)"


class TestBarChart:
    def test_labels_present(self):
        chart = bar_chart(["x", "longer-label"], [1.0, 2.0])
        assert "x" in chart and "longer-label" in chart

    def test_peak_gets_full_width(self):
        chart = bar_chart(["a", "b"], [1.0, 10.0], width=20)
        lines = chart.splitlines()
        assert lines[1].count("#") == 20

    def test_zero_value_no_bar(self):
        chart = bar_chart(["z"], [0.0])
        assert "#" not in chart

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"
