"""Tests for the sharded HNSW index (parallel build/search, deterministic merge)."""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.errors import IndexError_


def _data(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


class TestConstruction:
    def test_round_robin_balance(self):
        index = ShardedHnswIndex(dim=8, n_shards=4)
        index.add_batch(_data(10, 8), range(10))
        assert index.shard_sizes == [3, 3, 2, 2]
        assert len(index) == 10

    def test_add_continues_round_robin_after_batch(self):
        index = ShardedHnswIndex(dim=8, n_shards=3)
        index.add_batch(_data(4, 8), range(4))
        index.add(_data(1, 8, seed=9)[0], key=99)  # element 4 -> shard 1
        assert index.shard_sizes == [2, 2, 1]

    def test_duplicate_key_rejected_across_shards(self):
        index = ShardedHnswIndex(dim=8, n_shards=2)
        index.add_batch(_data(2, 8), [7, 8])
        with pytest.raises(IndexError_):
            index.add(_data(1, 8)[0], key=7)  # lives on the other shard

    def test_parallel_and_serial_builds_identical(self):
        points = _data(30, 8)
        parallel = ShardedHnswIndex(dim=8, n_shards=4, seed=2)
        parallel.add_batch(points, range(30), parallel=True)
        serial = ShardedHnswIndex(dim=8, n_shards=4, seed=2)
        serial.add_batch(points, range(30), parallel=False)
        queries = _data(10, 8, seed=1)
        assert parallel.search_batch(queries, 5) == serial.search_batch(queries, 5)

    def test_validation(self):
        with pytest.raises(IndexError_):
            ShardedHnswIndex(dim=8, n_shards=0)
        with pytest.raises(IndexError_):
            ShardedHnswIndex(dim=8, max_workers=0)
        index = ShardedHnswIndex(dim=8, n_shards=2)
        with pytest.raises(IndexError_):
            index.add_batch(_data(3, 5), range(3))  # wrong dim
        with pytest.raises(IndexError_):
            index.add_batch(_data(3, 8), [1, 2])  # key count mismatch
        with pytest.raises(IndexError_):
            index.search(np.zeros(8), k=0)
        with pytest.raises(IndexError_):
            index.search(np.zeros(5), k=1)  # wrong query dim

    def test_empty_batch_is_noop(self):
        index = ShardedHnswIndex(dim=8, n_shards=2)
        index.add_batch(np.zeros((0, 8)))
        assert len(index) == 0


def _snapshot(index):
    """Byte-level state fingerprint of a sharded index."""
    return (
        len(index),
        set(index._keys_seen),
        [len(s) for s in index._shards],
        [s.vectors.tobytes() for s in index._shards],
        [list(s._keys) for s in index._shards],
        [set(s._keys_seen) for s in index._shards],
    )


class TestRejectedBatchAtomicity:
    """A rejected add_batch must leave the index byte-identical."""

    @pytest.fixture()
    def index(self):
        idx = ShardedHnswIndex(dim=8, n_shards=3, seed=0)
        idx.add_batch(_data(10, 8), range(10))
        return idx

    def test_key_clashing_with_index_rejected_upfront(self, index):
        before = _snapshot(index)
        with pytest.raises(IndexError_):
            index.add_batch(_data(4, 8, seed=1), [100, 101, 5, 102])  # 5 exists
        assert _snapshot(index) == before
        index.add_batch(_data(2, 8, seed=2), [100, 101])  # clean retry works
        assert len(index) == 12

    def test_duplicate_key_within_batch_rejected_upfront(self, index):
        before = _snapshot(index)
        with pytest.raises(IndexError_):
            index.add_batch(_data(3, 8, seed=1), [100, 101, 100])
        assert _snapshot(index) == before

    def test_monolithic_add_batch_is_atomic_too(self):
        mono = HnswIndex(dim=8, seed=0)
        mono.add_batch(_data(5, 8), range(5))
        before = (len(mono), mono.vectors.tobytes(), set(mono._keys_seen))
        with pytest.raises(IndexError_):
            mono.add_batch(_data(3, 8, seed=1), [10, 3, 11])  # 3 exists
        with pytest.raises(IndexError_):
            mono.add_batch(_data(3, 8, seed=1), [10, 10, 11])  # intra-batch dup
        assert (len(mono), mono.vectors.tobytes(), set(mono._keys_seen)) == before


class TestExecutorLifecycle:
    def test_pool_is_lazy_and_reused(self):
        index = ShardedHnswIndex(dim=8, n_shards=3, seed=0)
        assert index._pool is None
        index.add_batch(_data(12, 8), range(12))
        pool = index._pool
        assert pool is not None
        index.search_batch(_data(4, 8, seed=1), 3)
        assert index._pool is pool  # reused, not respawned per call

    def test_close_is_idempotent_and_pool_recreated_on_demand(self):
        index = ShardedHnswIndex(dim=8, n_shards=3, seed=0)
        index.add_batch(_data(12, 8), range(12))
        index.close()
        assert index._pool is None
        index.close()  # second close is a no-op
        hits = index.search_batch(_data(3, 8, seed=1), 3)
        assert len(hits) == 3  # lazily recreated
        assert index._pool is not None

    def test_context_manager_closes_pool(self):
        with ShardedHnswIndex(dim=8, n_shards=2, seed=0) as index:
            index.add_batch(_data(8, 8), range(8))
            assert index._pool is not None
        assert index._pool is None

    def test_serial_paths_never_spawn_a_pool(self):
        index = ShardedHnswIndex(dim=8, n_shards=3, seed=0)
        index.add_batch(_data(12, 8), range(12), parallel=False)
        index.search(_data(1, 8, seed=1)[0], 3)
        index.search_batch(_data(4, 8, seed=2), 3, parallel=False)
        assert index._pool is None


class TestSearchParity:
    """The batched/parallel path is bit-identical to its scalar loop."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_search_batch_matches_scalar_loop(self, n_shards, metric):
        index = ShardedHnswIndex(dim=12, n_shards=n_shards, metric=metric, seed=3)
        index.add_batch(_data(90, 12), range(90))
        queries = _data(15, 12, seed=4)
        assert index.search_batch(queries, 6) == [
            index.search(q, 6) for q in queries
        ]

    def test_single_shard_identical_to_monolithic(self):
        points, queries = _data(80, 10), _data(12, 10, seed=5)
        mono = HnswIndex(dim=10, seed=7)
        mono.add_batch(points, range(80))
        sharded = ShardedHnswIndex(dim=10, n_shards=1, seed=7)
        sharded.add_batch(points, range(80))
        assert sharded.search_batch(queries, 5) == mono.search_batch(queries, 5)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_exact_overlap_with_monolithic(self, n_shards):
        """At ef >= n both indexes are exhaustive, so top-k sets must agree."""
        points, queries = _data(96, 12), _data(20, 12, seed=6)
        mono = HnswIndex(dim=12, seed=0)
        mono.add_batch(points, range(96))
        sharded = ShardedHnswIndex(dim=12, n_shards=n_shards, seed=0)
        sharded.add_batch(points, range(96))
        overlaps = []
        for query in queries:
            exact = {key for key, _ in mono.search(query, 10, ef=128)}
            mine = {key for key, _ in sharded.search(query, 10, ef=128)}
            overlaps.append(len(mine & exact) / 10)
        assert np.mean(overlaps) == 1.0

    def test_recall_vs_bruteforce(self):
        points, queries = _data(150, 12, seed=8), _data(20, 12, seed=9)
        sharded = ShardedHnswIndex(dim=12, n_shards=3, ef_search=80, seed=0)
        sharded.add_batch(points, range(150))
        brute = BruteForceIndex(dim=12)
        for i, p in enumerate(points):
            brute.add(p, key=i)
        recalls = []
        for hits, query in zip(sharded.search_batch(queries, 10), queries):
            exact = {key for key, _ in brute.search(query, 10)}
            recalls.append(len({key for key, _ in hits} & exact) / 10)
        assert np.mean(recalls) > 0.9

    def test_results_sorted_nearest_first(self):
        index = ShardedHnswIndex(dim=8, n_shards=3, seed=1)
        index.add_batch(_data(40, 8), range(40))
        hits = index.search(_data(1, 8, seed=2)[0], 8)
        dists = [d for _, d in hits]
        assert dists == sorted(dists)


class TestEdgeShapes:
    def test_fewer_elements_than_shards(self):
        index = ShardedHnswIndex(dim=8, n_shards=4, seed=0)
        index.add_batch(_data(3, 8), range(3))
        assert index.shard_sizes == [1, 1, 1, 0]
        hits = index.search(_data(1, 8, seed=1)[0], 5)
        assert sorted(key for key, _ in hits) == [0, 1, 2]
        queries = _data(4, 8, seed=2)
        assert index.search_batch(queries, 5) == [index.search(q, 5) for q in queries]

    def test_empty_index(self):
        index = ShardedHnswIndex(dim=8, n_shards=4)
        assert index.search(np.zeros(8), 3) == []
        assert index.search_batch(_data(5, 8), 3) == [[] for _ in range(5)]
        assert index.search_batch(np.zeros((0, 8)), 3) == []

    def test_k_larger_than_population(self):
        index = ShardedHnswIndex(dim=8, n_shards=2, seed=0)
        index.add_batch(_data(5, 8), range(5))
        hits = index.search(_data(1, 8, seed=3)[0], 20)
        assert len(hits) == 5


class TestObservability:
    """The ann.search span/counter/histogram record under a live registry."""

    def _live_index(self, quantization="none"):
        from repro.obs import Observability

        obs = Observability.enabled()
        index = ShardedHnswIndex(
            dim=8, n_shards=2, seed=0, obs=obs, quantization=quantization
        )
        index.add_batch(_data(12, 8), range(12))
        return index, obs

    def test_scalar_search_records_histogram(self):
        index, obs = self._live_index()
        index.search(_data(1, 8, seed=1)[0], 3)
        hist = obs.metrics.histogram("pas_ann_search_ticks", buckets=())
        assert hist.count(mode="scalar", quantized="false") == 1
        assert obs.metrics.counter("pas_ann_searches_total").value(mode="scalar") == 1

    def test_batch_search_records_once_per_call(self):
        index, obs = self._live_index(quantization="int8")
        index.search_batch(_data(5, 8, seed=1), 3)
        index.search_batch_arrays(_data(5, 8, seed=2), 3)
        hist = obs.metrics.histogram("pas_ann_search_ticks", buckets=())
        assert hist.count(mode="batch", quantized="true") == 2
        assert hist.count(mode="scalar", quantized="true") == 0

    def test_null_obs_records_nothing(self):
        index = ShardedHnswIndex(dim=8, n_shards=2, seed=0)
        index.add_batch(_data(12, 8), range(12))
        index.search(_data(1, 8, seed=1)[0], 3)
        assert not index.obs.metrics.enabled
