"""Tests for the shared evaluation plumbing and benchmark result types."""

import pytest

from repro.baselines.base import NoApe
from repro.baselines.bpo import BpoModel
from repro.core.plug import PasApe
from repro.judge.common import respond_with_method
from repro.judge.suites import build_alpaca_suite
from repro.llm.engine import SimulatedLLM


@pytest.fixture(scope="module")
def suite():
    return build_alpaca_suite(10, seed=44)


class TestRespondWithMethod:
    def test_none_method_answers_original_prompt(self, suite):
        engine = SimulatedLLM("gpt-4-0613")
        prompt = suite.prompts[0]
        direct = engine.respond(prompt.text)
        via_method = respond_with_method(engine, NoApe(), prompt)
        assert direct == via_method

    def test_complement_method_passes_supplement(self, suite, trained_pas):
        engine = SimulatedLLM("gpt-4-0613")
        prompt = suite.prompts[0]
        complement = trained_pas.augment(prompt.text)
        via_method = respond_with_method(engine, PasApe(trained_pas), prompt)
        direct = engine.respond(prompt.text, supplement=complement or None)
        assert via_method == direct

    def test_rewrite_method_replaces_prompt(self, suite):
        engine = SimulatedLLM("gpt-4-0613")
        bpo = BpoModel(n_preference_pairs=100, seed=3)
        prompt = suite.prompts[0]
        rewritten, supplement = bpo.transform(prompt.text)
        assert supplement is None
        via_method = respond_with_method(engine, bpo, prompt)
        assert via_method == engine.respond(rewritten)


class TestBenchmarkResultTypes:
    def test_arena_result_fields(self, quick_ctx):
        result = quick_ctx.arena_hard.evaluate(
            quick_ctx.engine("gpt-4-0613"), NoApe()
        )
        assert result.model == "gpt-4-0613"
        assert result.method == "none"
        assert len(result.outcomes) == result.n_prompts
        assert all(0.0 <= o <= 1.0 for o in result.outcomes)

    def test_alpaca_result_fields(self, quick_ctx):
        result = quick_ctx.alpaca_eval.evaluate(
            quick_ctx.engine("gpt-4-0613"), NoApe()
        )
        assert 0.0 <= result.win_rate <= 100.0
        assert 0.0 <= result.lc_win_rate <= 100.0
        assert result.n_prompts == len(quick_ctx.alpaca_eval.suite)
