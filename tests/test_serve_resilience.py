"""Resilient serving: fault injection, outcomes, deadlines, breakers.

The chaos tests here are the ones CI's chaos job re-runs under several
seeds (``PAS_CHAOS_SEED`` offsets the parametrised seeds): with heavy
injected failure rates, the non-strict gateway API must never let an
exception escape, must answer every request, and must degrade — not drop —
requests whose augmentation failed.
"""

import json
import os

import pytest

from repro.errors import (
    AugmentationError,
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
)
from repro.llm.api import ChatClient, TransientApiError
from repro.llm.engine import SimulatedLLM
from repro.llm.types import Message, build_messages
from repro.resilience import NO_FAULTS, CircuitBreaker, FaultPlan, OutageWindow, RetryPolicy
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest, ServeResponse

#: CI's chaos job exports PAS_CHAOS_SEED to shift the whole seed set.
CHAOS_OFFSET = int(os.environ.get("PAS_CHAOS_SEED", "0"))
CHAOS_SEEDS = tuple(CHAOS_OFFSET + base for base in (0, 1, 2))

PROMPTS = [
    "how do i parse csv files? show me how.",
    "how do i bake bread? walk me through it.",
    "why does my regex backtrack so much? be concise.",
    "how do i profile python code? please explain it in detail.",
    "how do i sort a csv by two columns? show me how.",
    "what is a good chess opening for beginners? be concise.",
    "how do i write unit tests for async code? walk me through it.",
    "how do i pickle a numpy array safely? be concise.",
]


def _requests(prompts, model="gpt-4-0613"):
    return [ServeRequest(prompt=p, model=model) for p in prompts]


class TestFaultPlan:
    def test_noop_by_default(self):
        assert NO_FAULTS.is_noop
        assert not NO_FAULTS.completion_fails("anything", 0)
        assert not NO_FAULTS.augment_fails("anything")
        assert NO_FAULTS.latency_ticks("anything", 0) == 0
        assert not NO_FAULTS.in_outage("gpt-4-0613", 5)

    def test_decisions_deterministic_per_seed(self):
        a = FaultPlan(seed=1, completion_failure_rate=0.5, augment_failure_rate=0.5)
        b = FaultPlan(seed=1, completion_failure_rate=0.5, augment_failure_rate=0.5)
        keys = [f"prompt {i}" for i in range(50)]
        assert [a.completion_fails(k, 0) for k in keys] == [
            b.completion_fails(k, 0) for k in keys
        ]
        assert [a.augment_fails(k) for k in keys] == [b.augment_fails(k) for k in keys]

    def test_seeds_decorrelate(self):
        a = FaultPlan(seed=1, completion_failure_rate=0.5)
        b = FaultPlan(seed=2, completion_failure_rate=0.5)
        keys = [f"prompt {i}" for i in range(100)]
        assert [a.completion_fails(k, 0) for k in keys] != [
            b.completion_fails(k, 0) for k in keys
        ]

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=0, completion_failure_rate=0.3)
        hits = sum(plan.completion_fails(f"prompt {i}", 0) for i in range(500))
        assert 0.2 < hits / 500 < 0.4

    def test_outage_window(self):
        plan = FaultPlan(outages=(OutageWindow("gpt-4-0613", 3, 6),))
        assert not plan.in_outage("gpt-4-0613", 2)
        assert plan.in_outage("gpt-4-0613", 3)
        assert plan.in_outage("gpt-4-0613", 5)
        assert not plan.in_outage("gpt-4-0613", 6)
        assert not plan.in_outage("qwen2-72b-chat", 4)
        assert not plan.is_noop

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(completion_failure_rate=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(latency_spike_ticks=-1)
        with pytest.raises(ConfigError):
            OutageWindow("m", 5, 5)


class TestRetryPolicy:
    def test_backoff_caps_and_grows(self):
        policy = RetryPolicy(base_backoff=1.0, max_backoff=4.0, jitter=0.0)
        assert policy.backoff_ticks("k", 0) == 1.0
        assert policy.backoff_ticks("k", 1) == 2.0
        assert policy.backoff_ticks("k", 2) == 4.0
        assert policy.backoff_ticks("k", 5) == 4.0  # capped

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff=1.0, max_backoff=8.0, jitter=0.5, seed=3)
        again = RetryPolicy(base_backoff=1.0, max_backoff=8.0, jitter=0.5, seed=3)
        for attempt in range(4):
            pause = policy.backoff_ticks("key", attempt)
            base = min(2.0 ** attempt, 8.0)
            assert base <= pause <= base * 1.5
            assert pause == again.backoff_ticks("key", attempt)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff=2.0, max_backoff=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_ticks=0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_ticks=10)
        for tick in (1, 2):
            breaker.record_failure(tick)
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(3)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(4)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_ticks=10)
        breaker.record_failure(1)
        breaker.record_failure(2)
        breaker.record_success(3)
        breaker.record_failure(4)
        breaker.record_failure(5)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_ticks=5)
        breaker.record_failure(2)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(6)
        assert breaker.allow(7)  # 7 - 2 >= 5: the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success(7)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.transitions == [(2, "open"), (7, "half_open"), (7, "closed")]

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_ticks=5)
        breaker.record_failure(2)
        assert breaker.allow(7)
        breaker.record_failure(7)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(11)  # recovery timer restarted at tick 7
        assert breaker.allow(12)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(recovery_ticks=0)


class TestChatClientResilience:
    def _client(self, **kwargs):
        return ChatClient(engine=SimulatedLLM("gpt-4-0613"), **kwargs)

    def test_fault_plan_failures_are_retried(self):
        # Find a prompt whose first attempt fails but a later one succeeds.
        plan = FaultPlan(seed=0, completion_failure_rate=0.5)
        client = self._client(fault_plan=plan, max_retries=5)
        for i in range(50):
            prompt = f"how do i season a wok number {i}? be concise."
            if plan.completion_fails(prompt, 0) and not all(
                plan.completion_fails(prompt, a) for a in range(6)
            ):
                completion = client.complete([Message("user", prompt)])
                assert completion.retries > 0
                assert client.usage.failures > 0
                return
        pytest.fail("no prompt with a transient first-attempt failure found")

    def test_outage_fails_every_attempt(self):
        plan = FaultPlan(outages=(OutageWindow("gpt-4-0613", 0, 100),))
        client = self._client(fault_plan=plan, max_retries=2)
        with pytest.raises(TransientApiError) as excinfo:
            client.complete([Message("user", "how do i bake bread?")])
        assert excinfo.value.attempts == 3
        assert client.usage.failures == 3

    def test_deadline_cannot_fit_retries(self):
        # Every attempt fails; the deadline admits exactly two attempts
        # plus the first backoff pause (1 + 1 + 1 = 3 <= 3.5 < + 1).
        plan = FaultPlan(outages=(OutageWindow("gpt-4-0613", 0, 100),))
        policy = RetryPolicy(
            max_retries=5, base_backoff=1.0, max_backoff=1.0, jitter=0.0, deadline_ticks=3.5
        )
        client = self._client(fault_plan=plan, retry_policy=policy)
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.complete([Message("user", "how do i bake bread?")])
        assert excinfo.value.attempts == 2
        assert client.usage.failures == 2
        assert client.usage.backoff_ticks == pytest.approx(2.0)

    def test_latency_spike_consumes_deadline(self):
        spiky = FaultPlan(seed=0, latency_spike_rate=0.999, latency_spike_ticks=10)
        policy = RetryPolicy(max_retries=0, deadline_ticks=2.0)
        client = self._client(fault_plan=spiky, retry_policy=policy)
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.complete([Message("user", "how do i bake bread?")])
        assert excinfo.value.attempts == 0

    def test_retry_policy_supersedes_max_retries(self):
        plan = FaultPlan(outages=(OutageWindow("gpt-4-0613", 0, 100),))
        policy = RetryPolicy(max_retries=1, jitter=0.0)
        client = self._client(fault_plan=plan, retry_policy=policy, max_retries=9)
        with pytest.raises(TransientApiError) as excinfo:
            client.complete([Message("user", "how do i bake bread?")])
        assert excinfo.value.attempts == 2

    def test_no_plan_no_policy_is_unchanged(self):
        plain = self._client()
        completion = plain.complete([Message("user", "how do i bake bread?")])
        assert completion.retries == 0
        assert plain.usage.backoff_ticks == 0.0


class TestDegradedOutcome:
    def test_degraded_carries_raw_prompt_completion(self, trained_pas):
        plan = FaultPlan(seed=0, augment_failure_rate=0.99)
        gateway = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, seed=0, fault_plan=plan)
        )
        prompt = "how do i bake bread? walk me through it."
        assert plan.augment_fails(prompt)
        response = gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
        assert response.status == "degraded"
        assert response.ok
        assert response.complement == ""
        assert response.error.startswith("AugmentationError")
        # The plug-and-play fallback: exactly the raw-prompt completion.
        raw = SimulatedLLM("gpt-4-0613", seed=0).respond(prompt, supplement=None)
        assert response.response == raw
        assert gateway.stats.degraded == 1
        assert gateway.stats.served == 1
        assert gateway.stats.failures == 0

    def test_degraded_prompt_not_cached(self, trained_pas):
        plan = FaultPlan(seed=0, augment_failure_rate=0.99)
        gateway = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, fault_plan=plan)
        )
        prompt = "how do i bake bread? walk me through it."
        gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
        gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
        assert len(gateway._complement_cache) == 0
        assert gateway.stats.degraded == 2

    def test_strict_raises_augmentation_error(self, trained_pas):
        plan = FaultPlan(seed=0, augment_failure_rate=0.99)
        gateway = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, fault_plan=plan, strict=True)
        )
        prompt = "how do i bake bread? walk me through it."
        with pytest.raises(AugmentationError):
            gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))


class TestBreakerInGateway:
    #: Hard outage long enough to trip the breaker, short enough to recover.
    OUTAGE_PLAN = FaultPlan(outages=(OutageWindow("gpt-4-0613", 0, 12),))
    CONFIG = GatewayConfig(
        cache_size=8,
        fault_plan=OUTAGE_PLAN,
        max_retries=0,
        breaker_threshold=3,
        breaker_recovery_ticks=4,
    )

    def _run(self, trained_pas, n=20):
        gateway = PasGateway(pas=trained_pas, config=self.CONFIG)
        responses = [
            gateway.ask(ServeRequest(prompt=p, model="gpt-4-0613"))
            for p in (PROMPTS * 3)[:n]
        ]
        return gateway, responses

    def test_breaker_trips_fast_fails_and_recovers(self, trained_pas):
        gateway, responses = self._run(trained_pas)
        breaker = gateway.breaker_for("gpt-4-0613")
        # Ticks 1-3 fail against the outage and open the circuit at tick 3.
        assert [r.status for r in responses[:3]] == ["failed"] * 3
        assert breaker.transitions[0] == (3, "open")
        # While open, requests are rejected without touching the client.
        rejected = [r for r in responses if r.error and r.error.startswith("CircuitOpenError")]
        assert rejected
        assert all(r.attempts == 0 for r in rejected)
        # Probes at ticks 7 and 11 land inside the outage and re-open; the
        # probe after the outage closes the circuit and traffic resumes.
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips >= 2
        assert responses[-1].status == "ok"
        assert gateway.stats.breaker_state == {"gpt-4-0613": "closed"}
        assert gateway.stats.breaker_trips == {"gpt-4-0613": breaker.trips}

    def test_transitions_bit_reproducible(self, trained_pas):
        first, _ = self._run(trained_pas)
        second, _ = self._run(trained_pas)
        assert (
            first.breaker_for("gpt-4-0613").transitions
            == second.breaker_for("gpt-4-0613").transitions
        )

    def test_strict_raises_circuit_open(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=self.CONFIG)
        for p in PROMPTS[:3]:  # trip the breaker
            gateway.ask(ServeRequest(prompt=p, model="gpt-4-0613"))
        with pytest.raises(CircuitOpenError):
            gateway.ask(
                ServeRequest(prompt=PROMPTS[3], model="gpt-4-0613"), strict=True
            )


CHAOS_PLAN_KWARGS = dict(
    completion_failure_rate=0.35,
    augment_failure_rate=0.25,
    outages=(OutageWindow("gpt-4-0613", 10, 18),),
)


class TestChaos:
    """The acceptance chaos property: heavy faults, zero escaped exceptions."""

    def _gateway(self, trained_pas, seed):
        return PasGateway(
            pas=trained_pas,
            config=GatewayConfig(
                cache_size=8,
                embed_cache_size=8,
                seed=0,
                max_retries=1,
                fault_plan=FaultPlan(seed=seed, **CHAOS_PLAN_KWARGS),
                retry_policy=RetryPolicy(max_retries=1, deadline_ticks=16.0, seed=seed),
                breaker_threshold=3,
                breaker_recovery_ticks=6,
            ),
        )

    def _traffic(self):
        prompts = (PROMPTS * 4)[: len(PROMPTS) * 3]
        models = ["gpt-4-0613", "qwen2-72b-chat"]
        return [
            ServeRequest(prompt=p, model=models[i % 2], request_id=str(i))
            for i, p in enumerate(prompts)
        ]

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_every_request_answered_without_exceptions(self, trained_pas, seed):
        gateway = self._gateway(trained_pas, seed)
        requests = self._traffic()
        responses = gateway.ask_batch(requests)  # must not raise
        assert len(responses) == len(requests)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        for response in responses:
            assert response.status in ("ok", "degraded", "failed")
            if response.status == "degraded":
                raw = SimulatedLLM(response.model, seed=0).respond(
                    requests[int(response.request_id)].prompt, supplement=None
                )
                assert response.response == raw
                assert response.complement == ""
            if response.status == "failed":
                assert response.error
        # Stats invariants under fire (the failures-vs-served contract).
        stats = gateway.stats
        counts = {s: sum(r.status == s for r in responses) for s in ("ok", "degraded", "failed")}
        assert stats.requests == len(requests)
        assert stats.failures == counts["failed"]
        assert stats.degraded == counts["degraded"]
        assert stats.served == counts["ok"] + counts["degraded"]
        assert stats.requests - stats.failures == stats.served

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_batch_matches_scalar_loop_under_faults(self, trained_pas, seed):
        requests = self._traffic()
        scalar = self._gateway(trained_pas, seed)
        batched = self._gateway(trained_pas, seed)
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        assert list(batched._complement_cache._data) == list(scalar._complement_cache._data)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_breaker_timeline_reproducible(self, trained_pas, seed):
        runs = []
        for _ in range(2):
            gateway = self._gateway(trained_pas, seed)
            gateway.ask_batch(self._traffic())
            runs.append(
                {
                    model: gateway.breaker_for(model).transitions
                    for model in gateway.registered_models
                }
            )
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_microbatcher_surfaces_outcomes(self, trained_pas, seed):
        gateway = self._gateway(trained_pas, seed)
        batcher = MicroBatcher(gateway.ask_batch, max_batch=5, max_wait=3)
        responses = batcher.run_arrivals(enumerate(self._traffic(), start=1))
        assert len(responses) == len(self._traffic())
        assert sum(r.n_ok + r.n_degraded + r.n_failed for r in batcher.records) == len(
            responses
        )
        assert sum(r.n_failed for r in batcher.records) == gateway.stats.failures


class TestNoopPlanParity:
    """A wired-in no-op FaultPlan must change nothing at all."""

    def test_noop_plan_strict_matches_plain_gateway(self, trained_pas):
        requests = _requests(PROMPTS + PROMPTS[:3])
        plain = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=4, embed_cache_size=4)
        )
        wired = PasGateway(
            pas=trained_pas,
            config=GatewayConfig(
                cache_size=4,
                embed_cache_size=4,
                strict=True,
                fault_plan=NO_FAULTS,
                retry_policy=RetryPolicy(),
            ),
        )
        assert wired.ask_batch(requests) == plain.ask_batch(requests)
        assert wired.stats == plain.stats
        assert list(wired._complement_cache._data) == list(plain._complement_cache._data)
        assert [
            (key, value.tobytes()) for key, value in wired._embed_cache._data.items()
        ] == [(key, value.tobytes()) for key, value in plain._embed_cache._data.items()]
        assert all(r.status == "ok" and r.error is None for r in wired.ask_batch(requests))


class TestAugmentFlagOffBatch:
    """ServeRequest(augment=False) through ask_batch (satellite coverage)."""

    def test_matches_scalar_loop_and_touches_no_caches(self, trained_pas):
        requests = [
            ServeRequest(prompt=p, model="gpt-4-0613", augment=False)
            for p in PROMPTS + PROMPTS[:2]
        ]
        scalar = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, embed_cache_size=8)
        )
        batched = PasGateway(
            pas=trained_pas, config=GatewayConfig(cache_size=8, embed_cache_size=8)
        )
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats
        assert batched.stats.augmented == 0
        assert batched.stats.cache_hits == 0
        for gateway in (scalar, batched):
            assert len(gateway._complement_cache) == 0
            assert gateway._complement_cache.hits == gateway._complement_cache.misses == 0
            assert len(gateway._embed_cache) == 0
            assert gateway._embed_cache.hits == gateway._embed_cache.misses == 0

    def test_mixed_augment_flags_match_scalar(self, trained_pas):
        requests = [
            ServeRequest(prompt=p, model="gpt-4-0613", augment=(i % 2 == 0))
            for i, p in enumerate(PROMPTS * 2)
        ]
        scalar = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4))
        batched = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=4))
        assert batched.ask_batch(requests) == [scalar.ask(r) for r in requests]
        assert batched.stats == scalar.stats


class TestStructuredExport:
    def test_serve_response_as_dict_round_trips_json(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        response = gateway.ask(
            ServeRequest(prompt=PROMPTS[0], model="gpt-4-0613", request_id="r1")
        )
        payload = response.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert list(payload) == [
            "request_id",
            "model",
            "status",
            "response",
            "complement",
            "complement_cached",
            "augmented",
            "prompt_tokens",
            "completion_tokens",
            "attempts",
            "error",
        ]
        assert payload["status"] == "ok"
        assert payload["attempts"] == 1

    def test_gateway_stats_as_dict_round_trips_json(self, trained_pas):
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=8))
        gateway.ask_batch(_requests(PROMPTS[:4]))
        payload = gateway.stats.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["requests"] == 4
        assert payload["served"] == 4
        assert payload["breaker_state"] == {"gpt-4-0613": "closed"}
        # Stable key order: two exports enumerate identically.
        assert list(payload) == list(gateway.stats.as_dict())

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            ServeResponse(
                request_id=None,
                model="m",
                response="",
                complement="",
                complement_cached=False,
                prompt_tokens=0,
                completion_tokens=0,
                status="exploded",
            )


class TestBuildMessages:
    def test_complement_rides_as_system_turn(self):
        messages = build_messages("the prompt", "the complement")
        assert [(m.role, m.content) for m in messages] == [
            ("system", "the complement"),
            ("user", "the prompt"),
        ]

    def test_empty_complement_is_user_only(self):
        assert [(m.role, m.content) for m in build_messages("p")] == [("user", "p")]
