"""Tests for the simulated human-evaluation panel and metrics."""

import numpy as np
import pytest

from repro.humaneval.metrics import gsb, scenario_metrics
from repro.humaneval.panel import Annotator, AnnotatorPanel
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory


@pytest.fixture(scope="module")
def panel():
    return AnnotatorPanel(n_annotators=5, seed=1)


@pytest.fixture(scope="module")
def rated_prompts():
    factory = PromptFactory(rng=np.random.default_rng(10))
    engine = SimulatedLLM("qwen2-72b-chat")
    prompts = [factory.make_prompt() for _ in range(20)]
    responses = [engine.respond(p.text) for p in prompts]
    return prompts, responses


class TestAnnotator:
    def test_score_in_range(self, rated_prompts):
        annotator = Annotator(annotator_id=0, bias=0.0)
        prompts, responses = rated_prompts
        for p, r in zip(prompts, responses):
            assert 1 <= annotator.score(p, r) <= 5

    def test_deterministic(self, rated_prompts):
        annotator = Annotator(annotator_id=1, bias=0.1)
        p, r = rated_prompts[0][0], rated_prompts[1][0]
        assert annotator.score(p, r) == annotator.score(p, r)

    def test_bias_shifts_scores(self, rated_prompts):
        prompts, responses = rated_prompts
        lenient = Annotator(annotator_id=2, bias=1.5)
        harsh = Annotator(annotator_id=2, bias=-1.5)
        lenient_total = sum(lenient.score(p, r) for p, r in zip(prompts, responses))
        harsh_total = sum(harsh.score(p, r) for p, r in zip(prompts, responses))
        assert lenient_total > harsh_total


class TestPanel:
    def test_size(self, panel):
        assert len(panel) == 5

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AnnotatorPanel(n_annotators=0)

    def test_consensus_in_range(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        for p, r in zip(prompts, responses):
            assert 1.0 <= panel.consensus(p, r) <= 5.0

    def test_same_seed_same_panel(self, rated_prompts):
        p, r = rated_prompts[0][0], rated_prompts[1][0]
        a = AnnotatorPanel(seed=3).consensus(p, r)
        b = AnnotatorPanel(seed=3).consensus(p, r)
        assert a == b

    def test_different_seed_different_panel(self, rated_prompts):
        prompts, responses = rated_prompts
        a = [AnnotatorPanel(seed=4).consensus(p, r) for p, r in zip(prompts, responses)]
        b = [AnnotatorPanel(seed=5).consensus(p, r) for p, r in zip(prompts, responses)]
        assert a != b


class TestGsb:
    def test_shares_sum_to_hundred(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        result = gsb(panel, prompts, responses, responses, scenario="self")
        assert result.good + result.same + result.bad == pytest.approx(100.0)

    def test_self_comparison_all_same(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        result = gsb(panel, prompts, responses, responses)
        assert result.same == 100.0
        assert result.win_share == 50.0

    def test_better_arm_wins(self, panel, rated_prompts):
        from repro.core.golden import render_complement

        prompts, responses = rated_prompts
        engine = SimulatedLLM("qwen2-72b-chat")
        better = [
            engine.respond(p.text, supplement=render_complement(set(p.needs), salt="h"))
            for p in prompts
        ]
        result = gsb(panel, prompts, better, responses)
        assert result.good > result.bad

    def test_empty(self, panel):
        result = gsb(panel, [], [], [])
        assert result.n == 0
        assert result.win_share == 50.0

    def test_misaligned_rejected(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        with pytest.raises(ValueError):
            gsb(panel, prompts, responses[:-1], responses)


class TestScenarioMetrics:
    def test_metric_ranges(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        metrics = scenario_metrics(panel, prompts, responses, scenario="x")
        assert 0.0 <= metrics.full_mark_pct <= 100.0
        assert 1.0 <= metrics.average_score <= 5.0
        assert 0.0 <= metrics.availability_pct <= 100.0
        assert metrics.n == len(prompts)

    def test_empty(self, panel):
        metrics = scenario_metrics(panel, [], [])
        assert metrics.n == 0

    def test_misaligned_rejected(self, panel, rated_prompts):
        prompts, responses = rated_prompts
        with pytest.raises(ValueError):
            scenario_metrics(panel, prompts, responses[:-1])
