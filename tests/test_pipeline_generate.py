"""Tests for Algorithm 1: few-shot generation, the critic, regeneration."""

import numpy as np
import pytest

from repro.core.golden import build_golden_data, render_complement
from repro.errors import ConfigError
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import CapabilityProfile
from repro.pipeline.collect import SelectedPrompt
from repro.pipeline.generate import (
    FEW_SHOT_GENERATION_PROMPT,
    SELECTION_CRITIC_PROMPT,
    FewShotGenerator,
    GenerationConfig,
    PairCritic,
    PairGenerator,
)
from repro.world.aspects import parse_directives
from repro.world.prompts import PromptFactory

_PERFECT_CRITIC = SimulatedLLM(
    CapabilityProfile("perfect-critic", 1.0, 1.0, 0.0, 1.0)
)


@pytest.fixture(scope="module")
def golden():
    return build_golden_data(seed=1)


@pytest.fixture(scope="module")
def generator(golden):
    return FewShotGenerator(
        SimulatedLLM("teacher-gpt-4"), golden, GenerationConfig()
    )


def _selected(factory, **kwargs):
    prompt = factory.make_prompt(**kwargs)
    return SelectedPrompt(prompt=prompt, predicted_category=prompt.category, quality=1.0)


class TestGenerationConfig:
    @pytest.mark.parametrize("kwargs", [
        {"spurious_rate": -0.1},
        {"drop_rate": 1.1},
        {"direct_answer_rate": 2.0},
        {"max_rounds": -1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            GenerationConfig(**kwargs).validate()


class TestPromptTemplates:
    def test_figure4_template_fields(self):
        assert "{examples}" in FEW_SHOT_GENERATION_PROMPT
        assert "{prompt}" in FEW_SHOT_GENERATION_PROMPT

    def test_figure5_template_fields(self):
        assert "{prompt}" in SELECTION_CRITIC_PROMPT
        assert "{ape}" in SELECTION_CRITIC_PROMPT

    def test_render_few_shot_prompt_includes_exemplars(self, generator, factory):
        prompt = factory.make_prompt(category="coding")
        rendered = generator.render_few_shot_prompt(prompt.text, "coding")
        assert prompt.text in rendered
        assert rendered.count("<Prompt>") >= 5  # golden exemplars + task


class TestFewShotGenerator:
    def test_output_parses_as_directives_usually(self, generator, factory):
        parsed = 0
        for i in range(40):
            prompt = factory.make_prompt(cue_rate=1.0)
            draft = generator.generate(prompt.text, prompt.category, salt=i)
            if parse_directives(draft):
                parsed += 1
        # everything except the direct-answer failure mode parses
        assert parsed >= 30

    def test_deterministic_per_salt(self, generator, factory):
        prompt = factory.make_prompt()
        a = generator.generate(prompt.text, prompt.category, salt=3)
        b = generator.generate(prompt.text, prompt.category, salt=3)
        assert a == b

    def test_salt_varies_output(self, generator, factory):
        prompt = factory.make_prompt(cue_rate=1.0)
        drafts = {generator.generate(prompt.text, prompt.category, salt=i) for i in range(8)}
        assert len(drafts) > 1

    def test_never_empty(self, generator, factory):
        for i in range(20):
            prompt = factory.make_prompt()
            assert generator.generate(prompt.text, prompt.category, salt=i).strip()


class TestPairCritic:
    def test_empty_ape_rejected(self):
        critic = PairCritic(_PERFECT_CRITIC)
        verdict = critic.critique("any prompt", "   ")
        assert not verdict.is_correct
        assert "empty" in verdict.reason

    def test_direct_answer_rejected(self):
        from repro.pipeline.generate import _DIRECT_ANSWER_TEXT

        critic = PairCritic(_PERFECT_CRITIC)
        verdict = critic.critique("how do i sort?", _DIRECT_ANSWER_TEXT)
        assert not verdict.is_correct

    def test_excessive_demands_rejected(self):
        critic = PairCritic(_PERFECT_CRITIC)
        from repro.world.aspects import render_directive

        ape = " ".join(
            render_directive(a)
            for a in ("depth", "examples", "structure", "format")
        )
        verdict = critic.critique("please explain it in detail", ape)
        assert not verdict.is_correct

    def test_conflict_rejected(self):
        critic = PairCritic(_PERFECT_CRITIC)
        ape = render_complement({"depth"}, salt="x")
        verdict = critic.critique("answer briefly. be concise.", ape)
        assert not verdict.is_correct
        assert "depth" in verdict.reason

    def test_superfluous_rejected(self):
        critic = PairCritic(_PERFECT_CRITIC)
        ape = render_complement({"format"}, salt="y")
        verdict = critic.critique("please explain it in detail", ape)
        assert not verdict.is_correct

    def test_grounded_supplement_accepted(self):
        critic = PairCritic(_PERFECT_CRITIC)
        ape = render_complement({"depth"}, salt="z")
        verdict = critic.critique("please explain it in detail", ape)
        assert verdict.is_correct

    def test_too_long_ape_rejected(self):
        critic = PairCritic(_PERFECT_CRITIC, max_ape_words=10)
        ape = render_complement({"depth", "examples", "structure"}, salt="w")
        verdict = critic.critique("please explain it in detail, make it well organized", ape)
        assert not verdict.is_correct


class TestPairGenerator:
    @pytest.fixture(scope="class")
    def pair_generator(self):
        return PairGenerator(config=GenerationConfig(curate=True))

    def test_build_pair_returns_pair_or_none(self, pair_generator):
        factory = PromptFactory(rng=np.random.default_rng(31))
        outcomes = [pair_generator.build_pair(_selected(factory)) for _ in range(30)]
        built = [p for p in outcomes if p is not None]
        assert built  # most prompts should succeed
        for pair in built:
            assert pair.complement_text
            assert parse_directives(pair.complement_text)

    def test_curation_improves_label_quality(self):
        factory_a = PromptFactory(rng=np.random.default_rng(33))
        selected = [_selected(factory_a) for _ in range(120)]
        curated = PairGenerator(config=GenerationConfig(curate=True)).build_dataset(selected)
        raw = PairGenerator(config=GenerationConfig(curate=False)).build_dataset(selected)
        assert curated.mean_label_quality() > raw.mean_label_quality() + 0.05

    def test_uncurated_never_drops(self):
        factory = PromptFactory(rng=np.random.default_rng(35))
        selected = [_selected(factory) for _ in range(40)]
        raw = PairGenerator(config=GenerationConfig(curate=False)).build_dataset(selected)
        assert raw.n_dropped == 0
        assert len(raw) == 40

    def test_max_rounds_zero_still_terminates(self):
        factory = PromptFactory(rng=np.random.default_rng(37))
        selected = [_selected(factory) for _ in range(20)]
        generator = PairGenerator(config=GenerationConfig(curate=True, max_rounds=0))
        dataset = generator.build_dataset(selected)
        assert len(dataset) + dataset.n_dropped == 20

    def test_regeneration_rounds_recorded(self, pair_generator):
        factory = PromptFactory(rng=np.random.default_rng(39))
        selected = [_selected(factory) for _ in range(50)]
        dataset = pair_generator.build_dataset(selected)
        assert any(p.regeneration_rounds > 0 for p in dataset)
