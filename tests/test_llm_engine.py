"""Tests for the simulated LLM engine."""

import numpy as np
import pytest

from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import CapabilityProfile
from repro.world.aspects import find_markers, render_directive
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response, count_flaws


def _perfect(name="perfect"):
    return SimulatedLLM(
        CapabilityProfile(name, cue_sensitivity=1.0, instruction_following=1.0,
                          error_rate=0.0, verbosity=1.0)
    )


def _blind(name="blind"):
    return SimulatedLLM(
        CapabilityProfile(name, cue_sensitivity=0.0, instruction_following=1.0,
                          error_rate=0.0, verbosity=1.0)
    )


class TestDeterminism:
    def test_same_call_same_output(self):
        eng = SimulatedLLM("gpt-4-0613")
        assert eng.respond("how do i sort a list?") == eng.respond("how do i sort a list?")

    def test_different_prompts_differ(self):
        eng = SimulatedLLM("gpt-4-0613")
        assert eng.respond("how do i sort a list?") != eng.respond("how do i sort a dict?")

    def test_supplement_changes_output(self):
        eng = SimulatedLLM("gpt-4-0613")
        plain = eng.respond("how do i sort a list?")
        guided = eng.respond("how do i sort a list?", supplement=render_directive("examples"))
        assert plain != guided

    def test_seed_changes_output(self):
        a = SimulatedLLM("gpt-4-0613", seed=0).respond("how do i sort a list?")
        b = SimulatedLLM("gpt-4-0613", seed=1).respond("how do i sort a list?")
        assert a != b


class TestInferNeeds:
    def test_perfect_model_sees_all_cues(self):
        eng = _perfect()
        inferred = eng.infer_needs("please explain it in detail and walk me through it")
        assert inferred == {"depth", "step_by_step"}

    def test_blind_model_sees_nothing(self):
        eng = _blind()
        assert eng.infer_needs("please explain it in detail") == set()

    def test_intermediate_sensitivity_partial(self):
        eng = SimulatedLLM("gpt-3.5-turbo-1106")
        factory = PromptFactory(rng=np.random.default_rng(0))
        prompts = [factory.make_prompt(cue_rate=1.0) for _ in range(80)]
        seen = sum(len(eng.infer_needs(p.text) & p.needs) for p in prompts)
        total = sum(len(p.needs) for p in prompts)
        rate = seen / total
        assert 0.2 < rate < 0.7  # around cue_sensitivity=0.42


class TestRespond:
    def test_directives_are_followed_by_perfect_model(self):
        eng = _perfect()
        supplement = render_directive("edge_cases") + " " + render_directive("examples")
        response = eng.respond("write a parser for my csv files", supplement=supplement)
        markers = find_markers(response)
        assert {"edge_cases", "examples"} <= markers

    def test_in_prompt_directives_also_followed(self):
        eng = _perfect()
        rewritten = "write a parser for my csv files. " + render_directive("edge_cases")
        assert "edge_cases" in find_markers(eng.respond(rewritten))

    def test_topic_echoed(self):
        eng = _perfect()
        response = eng.respond("how do i tune my database indexes?")
        assert "database" in response.lower()

    def test_zero_error_model_has_no_flaws(self):
        eng = _perfect()
        for i in range(10):
            assert count_flaws(eng.respond(f"question number {i} about testing")) == 0

    def test_high_error_model_emits_flaws(self):
        eng = SimulatedLLM(
            CapabilityProfile("sloppy", 0.5, 0.5, error_rate=0.9, verbosity=1.5)
        )
        flaws = sum(count_flaws(eng.respond(f"prompt {i} about some topic words")) for i in range(10))
        assert flaws > 10

    def test_missed_trap_produces_blunder(self):
        eng = _blind()
        response = eng.respond("a riddle about two trains: what happens?")
        assert count_flaws(response) >= 2  # the confident blunder

    def test_seen_trap_no_blunder(self):
        eng = _perfect()
        response = eng.respond("a riddle about two trains: what happens?")
        assert "logic_trap" in find_markers(response)
        assert count_flaws(response) == 0

    def test_brevity_shortens_response(self):
        eng = _perfect()
        base = "tell me about container orchestration tradeoffs"
        long = eng.respond(base)
        short = eng.respond(base, supplement=render_directive("brevity"))
        assert len(short.split()) < len(long.split())

    def test_verification_directive_reduces_flaws(self):
        eng = SimulatedLLM(
            CapabilityProfile("sloppy2", 0.0, 1.0, error_rate=0.6, verbosity=1.2)
        )
        prompts = [f"prompt {i} about interesting machinery" for i in range(20)]
        plain = sum(count_flaws(eng.respond(p)) for p in prompts)
        checked = sum(
            count_flaws(eng.respond(p, supplement=render_directive("verification")))
            for p in prompts
        )
        assert checked < plain

    def test_directive_improves_oracle_score(self, factory):
        eng = SimulatedLLM("gpt-4-0613")
        gains = []
        for _ in range(30):
            prompt = factory.make_prompt(cue_rate=0.3)
            from repro.core.golden import render_complement

            supplement = render_complement(set(prompt.needs), salt="test")
            plain = assess_response(prompt, eng.respond(prompt.text)).score
            guided = assess_response(
                prompt, eng.respond(prompt.text, supplement=supplement)
            ).score
            gains.append(guided - plain)
        assert np.mean(gains) > 0.3


class TestGradePromptQuality:
    def test_junk_scores_low(self, factory):
        eng = SimulatedLLM("baichuan-13b")
        grades = [eng.grade_prompt_quality(factory.make_junk().text) for _ in range(20)]
        assert max(grades) < 7.0

    def test_real_prompts_score_high(self, factory):
        eng = SimulatedLLM("baichuan-13b")
        grades = [eng.grade_prompt_quality(factory.make_prompt().text) for _ in range(20)]
        assert min(grades) > 7.0

    def test_empty_text(self):
        assert SimulatedLLM("baichuan-13b").grade_prompt_quality("") == 0.0

    def test_bounded(self, factory):
        eng = SimulatedLLM("baichuan-13b")
        for _ in range(10):
            grade = eng.grade_prompt_quality(factory.make_prompt().text)
            assert 0.0 <= grade <= 10.0
