"""Tests for the plug-and-play wrapper and the APE adapter."""

import pytest

from repro.core.plug import PasApe, PasEnhancedLLM
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM


@pytest.fixture()
def enhanced(trained_pas):
    return PasEnhancedLLM(pas=trained_pas, target=SimulatedLLM("gpt-4-0613"))


class TestPasEnhancedLLM:
    def test_ask_returns_text(self, enhanced, factory):
        prompt = factory.make_prompt()
        assert enhanced.ask(prompt.text)

    def test_plain_vs_enhanced_differ_when_augmented(self, enhanced, factory):
        prompt = factory.make_prompt(cue_rate=1.0)
        if enhanced.pas.augment(prompt.text):
            assert enhanced.ask(prompt.text) != enhanced.ask_plain(prompt.text)

    def test_works_with_chat_client_target(self, trained_pas, factory):
        client = ChatClient(engine=SimulatedLLM("gpt-3.5-turbo-1106"))
        enhanced = PasEnhancedLLM(pas=trained_pas, target=client)
        prompt = factory.make_prompt()
        assert enhanced.ask(prompt.text)
        assert client.usage.requests == 1

    def test_client_usage_counts_supplement_tokens(self, trained_pas, factory):
        client = ChatClient(engine=SimulatedLLM("gpt-3.5-turbo-1106"))
        enhanced = PasEnhancedLLM(pas=trained_pas, target=client)
        prompt = factory.make_prompt(cue_rate=1.0)
        complement = trained_pas.augment(prompt.text)
        enhanced.ask(prompt.text)
        if complement:
            plain_tokens = len(prompt.text.split())
            assert client.usage.prompt_tokens > plain_tokens


class TestPasApe:
    def test_transform_keeps_prompt(self, trained_pas, factory):
        ape = PasApe(trained_pas)
        prompt = factory.make_prompt()
        new_prompt, supplement = ape.transform(prompt.text)
        assert new_prompt == prompt.text
        assert supplement is None or supplement

    def test_flexibility_row_matches_paper(self, trained_pas):
        flex = PasApe(trained_pas).flexibility
        assert not flex.needs_human_labor
        assert flex.llm_agnostic
        assert flex.task_agnostic
        assert flex.satisfies_all
        assert flex.training_examples == 9000

    def test_custom_name(self, trained_pas):
        assert PasApe(trained_pas, name="pas-x").name == "pas-x"
