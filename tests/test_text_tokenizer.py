"""Tests for the word tokenizer."""

from repro.text.tokenizer import Tokenizer


class TestTokenize:
    def test_words_and_punctuation(self):
        assert Tokenizer().tokenize("Hello, world!") == ["hello", ",", "world", "!"]

    def test_lowercases(self):
        assert Tokenizer().tokenize("ABC") == ["abc"]

    def test_apostrophe(self):
        assert Tokenizer().tokenize("don't") == ["don't"]

    def test_empty(self):
        assert Tokenizer().tokenize("") == []


class TestEncode:
    def test_markers_added(self):
        tok = Tokenizer()
        encoded = tok.encode("hi", add_markers=True)
        assert encoded[0] == tok.bos
        assert encoded[-1] == tok.eos

    def test_no_markers_by_default(self):
        tok = Tokenizer()
        assert tok.bos not in tok.encode("hi")


class TestDetokenize:
    def test_punctuation_attaches(self):
        tok = Tokenizer()
        assert tok.detokenize(["hello", ",", "world", "!"]) == "hello, world!"

    def test_markers_removed(self):
        tok = Tokenizer()
        assert tok.detokenize([tok.bos, "hi", tok.eos]) == "hi"

    def test_roundtrip_simple_sentence(self):
        tok = Tokenizer()
        text = "the quick brown fox jumps."
        assert tok.detokenize(tok.tokenize(text)) == text


class TestCount:
    def test_counts_all_tokens(self):
        assert Tokenizer().count("one two, three") == 4

    def test_empty(self):
        assert Tokenizer().count("") == 0
