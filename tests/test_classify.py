"""Tests for feature hashing + Naive Bayes + the category classifier."""

import numpy as np
import pytest

from repro.classify.features import FeatureHasher
from repro.classify.model import CategoryClassifier
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.errors import EmptyDatasetError, NotFittedError
from repro.world.prompts import PromptFactory


class TestFeatureHasher:
    def test_counts_non_negative(self):
        vec = FeatureHasher(64).transform("some words appear here some words")
        assert (vec >= 0).all()

    def test_repeated_words_increase_counts(self):
        h = FeatureHasher(64)
        once = h.transform("apple")
        thrice = h.transform("apple apple apple")
        assert thrice.sum() >= once.sum()

    def test_batch_shape(self):
        batch = FeatureHasher(32).transform_batch(["a b", "c d"])
        assert batch.shape == (2, 32)

    def test_empty_batch(self):
        assert FeatureHasher(32).transform_batch([]).shape == (0, 32)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FeatureHasher(0)


class TestNaiveBayes:
    def _toy(self):
        x = np.array([[3.0, 0.0], [4.0, 1.0], [0.0, 3.0], [1.0, 4.0]])
        y = ["a", "a", "b", "b"]
        return MultinomialNaiveBayes().fit(x, y)

    def test_separable_data_classified(self):
        nb = self._toy()
        assert nb.predict(np.array([[5.0, 0.0]])) == ["a"]
        assert nb.predict(np.array([[0.0, 5.0]])) == ["b"]

    def test_predict_one(self):
        assert self._toy().predict_one(np.array([5.0, 0.0])) == "a"

    def test_classes_sorted(self):
        assert self._toy().classes == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            MultinomialNaiveBayes().fit(np.zeros((0, 3)), [])

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.ones((2, 2)), ["a"])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.array([[-1.0, 2.0]]), ["a"])

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MultinomialNaiveBayes().predict(np.ones((1, 2)))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)

    def test_posterior_shape(self):
        nb = self._toy()
        assert nb.log_posterior(np.ones((3, 2))).shape == (3, 2)


class TestCategoryClassifier:
    @pytest.fixture(scope="class")
    def clf(self):
        return CategoryClassifier().fit_synthetic(n_train=800, seed=11)

    def test_accuracy_on_fresh_prompts(self, clf):
        factory = PromptFactory(rng=np.random.default_rng(12))
        prompts = [factory.make_prompt() for _ in range(200)]
        assert clf.accuracy(prompts) > 0.7

    def test_predict_single(self, clf):
        assert clf.predict("how do i implement an lru cache in python?") == "coding"

    def test_predict_batch_consistent(self, clf):
        texts = ["translate this legal clause into french", "solve this problem about a probability puzzle"]
        assert clf.predict_batch(texts) == [clf.predict(t) for t in texts]

    def test_empty_batch(self, clf):
        assert clf.predict_batch([]) == []

    def test_empty_fit_rejected(self):
        with pytest.raises(EmptyDatasetError):
            CategoryClassifier().fit([], [])

    def test_accuracy_empty(self, clf):
        assert clf.accuracy([]) == 0.0

    def test_is_fitted_flag(self):
        clf = CategoryClassifier()
        assert not clf.is_fitted
        clf.fit(["some text here"], ["coding"])
        assert clf.is_fitted
