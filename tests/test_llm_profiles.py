"""Tests for the capability-profile registry."""

import pytest

from repro.errors import UnknownModelError
from repro.llm.profiles import PROFILES, TARGET_MODELS, CapabilityProfile, get_profile, model_names


class TestRegistry:
    def test_all_paper_target_models_present(self):
        for name in TARGET_MODELS:
            assert name in PROFILES

    def test_pas_base_models_present(self):
        assert "qwen2-7b-chat" in PROFILES
        assert "llama-2-7b-instruct" in PROFILES

    def test_pipeline_workers_present(self):
        assert "baichuan-13b" in PROFILES
        assert "teacher-gpt-4" in PROFILES

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            get_profile("gpt-99")

    def test_get_profile_roundtrip(self):
        for name in model_names():
            assert get_profile(name).name == name


class TestCapabilityOrdering:
    """The profile ordering is what makes Table 1's baseline column come out
    in the paper's order."""

    def test_turbo_strongest_cue_sensitivity(self):
        turbo = get_profile("gpt-4-turbo-2024-04-09")
        assert all(
            turbo.cue_sensitivity >= get_profile(m).cue_sensitivity
            for m in TARGET_MODELS
        )

    def test_gpt35_weakest_target(self):
        gpt35 = get_profile("gpt-3.5-turbo-1106")
        others = [m for m in TARGET_MODELS if m != "gpt-3.5-turbo-1106"]
        assert all(
            gpt35.cue_sensitivity <= get_profile(m).cue_sensitivity for m in others
        )
        assert all(gpt35.error_rate >= get_profile(m).error_rate for m in others)

    def test_qwen_7b_stronger_base_than_llama2_7b(self):
        qwen = get_profile("qwen2-7b-chat")
        llama = get_profile("llama-2-7b-instruct")
        assert qwen.sft_retention > llama.sft_retention
        assert qwen.sft_confusion < llama.sft_confusion


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("cue_sensitivity", 1.5),
        ("instruction_following", -0.1),
        ("error_rate", 2.0),
        ("verbosity", 0.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        kwargs = dict(
            name="x",
            cue_sensitivity=0.5,
            instruction_following=0.5,
            error_rate=0.1,
            verbosity=1.0,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            CapabilityProfile(**kwargs)

    def test_retention_bounded(self):
        for profile in PROFILES.values():
            assert 0.0 < profile.sft_retention <= 1.0
            assert 0.0 <= profile.sft_confusion < 1.0
