"""Tests for the vocabulary."""

import pytest

from repro.text.vocab import Vocabulary


def _built(tokens_list):
    v = Vocabulary()
    for toks in tokens_list:
        v.observe(toks)
    v.finalize()
    return v


class TestVocabulary:
    def test_unk_is_id_zero(self):
        v = _built([["a", "b"]])
        assert v.token_of(0) == v.unk

    def test_frequency_ordering(self):
        v = _built([["b", "b", "a"]])
        assert v.id_of("b") < v.id_of("a")

    def test_ties_break_lexicographically(self):
        v = _built([["b", "a"]])
        assert v.id_of("a") < v.id_of("b")

    def test_oov_maps_to_unk(self):
        v = _built([["a"]])
        assert v.id_of("zzz") == 0

    def test_min_count_filters(self):
        v = Vocabulary()
        v.observe(["rare", "common", "common"])
        v.finalize(min_count=2)
        assert "common" in v
        assert "rare" not in v

    def test_max_size_caps(self):
        v = Vocabulary()
        v.observe(list("abcdefgh"))
        v.finalize(max_size=4)
        assert len(v) == 4  # unk + top 3

    def test_encode(self):
        v = _built([["x", "y"]])
        assert v.encode(["x", "zzz"]) == [v.id_of("x"), 0]

    def test_lookup_before_finalize_raises(self):
        v = Vocabulary()
        v.observe(["a"])
        with pytest.raises(RuntimeError):
            v.id_of("a")

    def test_observe_after_finalize_raises(self):
        v = _built([["a"]])
        with pytest.raises(RuntimeError):
            v.observe(["b"])

    def test_double_finalize_raises(self):
        v = _built([["a"]])
        with pytest.raises(RuntimeError):
            v.finalize()

    def test_count_of(self):
        v = _built([["a", "a"]])
        assert v.count_of("a") == 2
        assert v.count_of("nope") == 0
