"""Tests for the byte-pair-encoding tokenizer."""

import pytest

from repro.errors import NotFittedError
from repro.text.bpe import BpeTokenizer

_CORPUS = [
    "the lower llama lowers the lowest tower",
    "new newer newest newly renewed",
    "walking talking stalking walking walking",
    "lower tower power shower lower lower",
]


@pytest.fixture(scope="module")
def bpe():
    return BpeTokenizer(n_merges=60).fit(_CORPUS)


class TestTraining:
    def test_empty_corpus_rejected(self):
        with pytest.raises(NotFittedError):
            BpeTokenizer().fit([])

    def test_use_before_fit(self):
        with pytest.raises(NotFittedError):
            BpeTokenizer().encode("hello")

    def test_invalid_merges(self):
        with pytest.raises(ValueError):
            BpeTokenizer(n_merges=-1)

    def test_learns_at_most_n_merges(self, bpe):
        assert 0 < len(bpe.merges) <= 60

    def test_merges_deterministic(self):
        a = BpeTokenizer(n_merges=30).fit(_CORPUS)
        b = BpeTokenizer(n_merges=30).fit(_CORPUS)
        assert a.merges == b.merges

    def test_zero_merges_is_character_model(self):
        bpe0 = BpeTokenizer(n_merges=0).fit(_CORPUS)
        assert bpe0.encode_word("abc") == ["a", "b", "c", "</w>"]


class TestEncoding:
    def test_frequent_word_compresses(self, bpe):
        # "lower" appears many times; it should encode to few symbols.
        assert len(bpe.encode_word("lower")) <= 3

    def test_unseen_word_still_encodes(self, bpe):
        symbols = bpe.encode_word("zyxwv")
        assert "".join(symbols).replace("</w>", "") == "zyxwv"

    def test_decode_roundtrip(self, bpe):
        text = "the lower tower walking newest"
        assert bpe.decode(bpe.encode(text)) == text

    def test_roundtrip_normalises_case(self, bpe):
        assert bpe.decode(bpe.encode("The LOWER Tower")) == "the lower tower"

    def test_count_positive(self, bpe):
        assert bpe.count("the lower tower") > 0
        assert bpe.count("") == 0

    def test_more_merges_fewer_tokens(self):
        small = BpeTokenizer(n_merges=5).fit(_CORPUS)
        large = BpeTokenizer(n_merges=80).fit(_CORPUS)
        text = " ".join(_CORPUS)
        assert large.count(text) <= small.count(text)

    def test_compression_ratio(self, bpe):
        ratio = bpe.compression_ratio("the lower lower lower")
        assert ratio >= 1.0
        assert bpe.compression_ratio("") == 0.0

    def test_symbols_reconstruct_words(self, bpe):
        for word in ("walking", "newest", "power"):
            joined = "".join(bpe.encode_word(word))
            assert joined == word + "</w>"
