"""Tests for the n-gram language model."""

import math

import pytest

from repro.errors import NotFittedError
from repro.text.ngram import NgramLanguageModel

_CORPUS = [
    "the cat sat on the mat",
    "the dog sat on the rug",
    "the cat chased the dog",
    "a bird sat on the fence",
]


@pytest.fixture(scope="module")
def lm():
    return NgramLanguageModel(order=3).fit(_CORPUS)


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"order": 0},
        {"add_k": 0.0},
        {"add_k": -1.0},
        {"backoff": 0.0},
        {"backoff": 1.0},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NgramLanguageModel(**kwargs)

    def test_empty_corpus_rejected(self):
        with pytest.raises(NotFittedError):
            NgramLanguageModel().fit([])

    def test_use_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            NgramLanguageModel().token_logprob(["a"], "b")


class TestProbabilities:
    def test_logprob_is_negative(self, lm):
        assert lm.logprob("the cat sat") < 0.0

    def test_seen_sequence_more_probable_than_garbage(self, lm):
        assert lm.logprob("the cat sat on the mat") > lm.logprob(
            "mat the on sat cat the"
        )

    def test_token_logprob_finite(self, lm):
        lp = lm.token_logprob(["the"], "unseen-token-xyz")
        assert math.isfinite(lp)

    def test_conditional_prefers_observed_continuation(self, lm):
        lp_seen = lm.token_logprob(["the"], "cat")
        lp_unseen = lm.token_logprob(["the"], "fence")
        assert lp_seen > lp_unseen


class TestPerplexity:
    def test_positive(self, lm):
        assert lm.perplexity("the cat sat") > 1.0

    def test_in_domain_lower_than_out_of_domain(self, lm):
        assert lm.perplexity("the cat sat on the mat") < lm.perplexity(
            "zygote quark flibber jabberwock"
        )

    def test_fluency_bounded(self, lm):
        for text in _CORPUS + ["total nonsense zzz qqq"]:
            assert 0.0 < lm.fluency(text) <= 1.0

    def test_fluency_orders_by_familiarity(self, lm):
        assert lm.fluency("the cat sat on the mat") > lm.fluency(
            "qq ww ee rr tt yy uu"
        )


class TestUnigramModel:
    def test_order_one_works(self):
        lm1 = NgramLanguageModel(order=1).fit(_CORPUS)
        assert lm1.perplexity("the cat") > 1.0

    def test_vocab_size_counts_markers(self):
        lm1 = NgramLanguageModel(order=1).fit(["a b"])
        assert lm1.vocab_size == 4  # a, b, <s>, </s>
