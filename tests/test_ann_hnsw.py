"""Tests for the HNSW index, including recall against brute force."""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.errors import IndexError_


def _random_points(n, dim, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"dim": 0},
        {"dim": 4, "m": 1},
        {"dim": 4, "ef_construction": 0},
        {"dim": 4, "ef_search": 0},
        {"dim": 4, "metric": "hamming"},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(IndexError_):
            HnswIndex(**kwargs)


class TestBasicOps:
    def test_empty_search(self):
        index = HnswIndex(dim=4)
        assert index.search(np.zeros(4), 3) == []

    def test_single_element(self):
        index = HnswIndex(dim=3)
        index.add(np.array([1.0, 0.0, 0.0]), key=42)
        hits = index.search(np.array([1.0, 0.0, 0.0]), 1)
        assert hits[0][0] == 42
        assert hits[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_len(self):
        index = HnswIndex(dim=2)
        index.add(np.ones(2), key=0)
        index.add(np.zeros(2) + 0.5, key=1)
        assert len(index) == 2

    def test_duplicate_key_rejected(self):
        index = HnswIndex(dim=2)
        index.add(np.ones(2), key=0)
        with pytest.raises(IndexError_):
            index.add(np.zeros(2), key=0)

    def test_dim_mismatch_on_add(self):
        index = HnswIndex(dim=3)
        with pytest.raises(IndexError_):
            index.add(np.ones(4), key=0)

    def test_dim_mismatch_on_search(self):
        index = HnswIndex(dim=3)
        index.add(np.ones(3), key=0)
        with pytest.raises(IndexError_):
            index.search(np.ones(2), 1)

    def test_k_must_be_positive(self):
        index = HnswIndex(dim=2)
        with pytest.raises(IndexError_):
            index.search(np.ones(2), 0)

    def test_results_sorted_by_distance(self):
        index = HnswIndex(dim=2, seed=1)
        pts = _random_points(50, 2, seed=5)
        for i, p in enumerate(pts):
            index.add(p, key=i)
        hits = index.search(pts[0], 10)
        dists = [d for _, d in hits]
        assert dists == sorted(dists)

    def test_returns_at_most_k(self):
        index = HnswIndex(dim=2)
        for i, p in enumerate(_random_points(20, 2)):
            index.add(p, key=i)
        assert len(index.search(np.zeros(2), 5)) == 5

    def test_k_larger_than_index(self):
        index = HnswIndex(dim=2)
        for i, p in enumerate(_random_points(3, 2)):
            index.add(p, key=i)
        assert len(index.search(np.zeros(2), 10)) == 3


class TestRecall:
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_high_recall_vs_bruteforce(self, metric):
        dim, n, k = 16, 400, 10
        points = _random_points(n, dim, seed=7)
        hnsw = HnswIndex(dim=dim, metric=metric, ef_search=80, seed=3)
        brute = BruteForceIndex(dim=dim, metric=metric)
        for i, p in enumerate(points):
            hnsw.add(p, key=i)
            brute.add(p, key=i)
        queries = _random_points(30, dim, seed=8)
        recalls = []
        for q in queries:
            approx = {key for key, _ in hnsw.search(q, k)}
            exact = {key for key, _ in brute.search(q, k)}
            recalls.append(len(approx & exact) / k)
        assert np.mean(recalls) > 0.9

    def test_exact_match_always_found(self):
        dim = 8
        points = _random_points(200, dim, seed=11)
        index = HnswIndex(dim=dim, seed=2)
        for i, p in enumerate(points):
            index.add(p, key=i)
        for i in (0, 50, 199):
            hits = index.search(points[i], 1)
            assert hits[0][0] == i

    def test_higher_ef_never_lowers_single_query_quality_much(self):
        dim, n = 8, 300
        points = _random_points(n, dim, seed=13)
        index = HnswIndex(dim=dim, seed=4)
        brute = BruteForceIndex(dim=dim)
        for i, p in enumerate(points):
            index.add(p, key=i)
            brute.add(p, key=i)
        q = _random_points(1, dim, seed=14)[0]
        exact = {key for key, _ in brute.search(q, 10)}
        low = {key for key, _ in index.search(q, 10, ef=10)}
        high = {key for key, _ in index.search(q, 10, ef=200)}
        assert len(high & exact) >= len(low & exact)


class TestKnnGraph:
    def test_excludes_self(self):
        index = HnswIndex(dim=4, seed=0)
        for i, p in enumerate(_random_points(30, 4)):
            index.add(p, key=i)
        graph = index.knn_graph(5)
        for key, neighbors in graph.items():
            assert key not in {nk for nk, _ in neighbors}

    def test_covers_all_keys(self):
        index = HnswIndex(dim=4, seed=0)
        for i, p in enumerate(_random_points(25, 4)):
            index.add(p, key=i)
        assert set(index.knn_graph(3)) == set(range(25))


class TestDeterminism:
    def test_same_seed_same_results(self):
        points = _random_points(100, 8, seed=21)

        def build():
            index = HnswIndex(dim=8, seed=9)
            for i, p in enumerate(points):
                index.add(p, key=i)
            return index.search(points[3], 10)

        assert build() == build()


class TestBatchOps:
    def test_add_batch_matches_scalar_adds(self):
        points = _random_points(60, 8, seed=11)
        scalar = HnswIndex(dim=8, seed=2)
        for i, p in enumerate(points):
            scalar.add(p, key=i)
        batched = HnswIndex(dim=8, seed=2)
        batched.add_batch(points, range(len(points)))
        query = _random_points(1, 8, seed=12)[0]
        assert batched.search(query, 10) == scalar.search(query, 10)

    def test_add_batch_default_keys(self):
        index = HnswIndex(dim=4)
        index.add_batch(_random_points(5, 4))
        assert sorted(key for key, _ in index.search(np.zeros(4), 5)) == [0, 1, 2, 3, 4]

    def test_add_batch_empty_is_noop(self):
        index = HnswIndex(dim=4)
        index.add_batch(np.zeros((0, 4)))
        assert len(index) == 0

    def test_add_batch_key_count_mismatch(self):
        index = HnswIndex(dim=4)
        with pytest.raises(IndexError_):
            index.add_batch(_random_points(3, 4), keys=[0, 1])

    def test_add_batch_dim_mismatch(self):
        index = HnswIndex(dim=4)
        with pytest.raises(IndexError_):
            index.add_batch(_random_points(3, 5))

    def test_search_batch_matches_per_query_search(self):
        index = HnswIndex(dim=6, seed=3)
        index.add_batch(_random_points(80, 6, seed=13), range(80))
        queries = _random_points(16, 6, seed=14)
        assert index.search_batch(queries, 5) == [index.search(q, 5) for q in queries]

    def test_search_batch_empty_batch(self):
        index = HnswIndex(dim=4)
        index.add_batch(_random_points(5, 4))
        assert index.search_batch(np.zeros((0, 4)), 3) == []
        assert index.search_batch([], 3) == []

    def test_search_batch_empty_index(self):
        index = HnswIndex(dim=4)
        assert index.search_batch(_random_points(3, 4), 2) == [[], [], []]

    def test_search_batch_dim_mismatch(self):
        index = HnswIndex(dim=4)
        index.add(np.ones(4), key=0)
        with pytest.raises(IndexError_):
            index.search_batch(_random_points(3, 5), 2)

    def test_search_batch_k_must_be_positive(self):
        index = HnswIndex(dim=4)
        with pytest.raises(IndexError_):
            index.search_batch(_random_points(2, 4), 0)

    def test_vectors_property_is_readonly_view(self):
        index = HnswIndex(dim=4)
        index.add_batch(_random_points(5, 4))
        assert index.vectors.shape == (5, 4)
        with pytest.raises(ValueError):
            index.vectors[0, 0] = 99.0

    def test_interleaved_add_and_search(self):
        # searches pack the layer-0 adjacency; later adds must invalidate it
        index = HnswIndex(dim=4, seed=5)
        points = _random_points(40, 4, seed=15)
        index.add_batch(points[:20], range(20))
        index.search(points[0], 3)
        index.add_batch(points[20:], range(20, 40))
        keys = {key for key, _ in index.search_batch(points, 1)[0]}
        assert keys <= set(range(40))
        hits = index.search(points[30], 1)
        assert hits[0][0] == 30
