"""Adaptive-policy quality benchmark: the ``policy.uplift`` gate.

Runs the serving-loop ablation (:mod:`repro.experiments.policy_ablation`)
at quick scale: per workload family, the bandit learns over the family's
traffic, then its exploit-only choice is judged pairwise against the
no-augment control alongside static PAS.  Two numbers merge into
``BENCH_serving.json``:

* ``policy.uplift`` — best family's (adaptive − static) judged win-rate,
  **gated >= 0** by ``check_bench_regression.py``: learning which
  augmentation strategy to serve must never lose to serving the static
  complement blindly;
* per-family ``adaptive_minus_static`` — trend-only (a family where
  static is genuinely near-optimal is allowed to show a small negative
  parity cost; the contract is on the best family).

The whole ablation is seed-pure, so the benchmark also asserts two runs
at one seed produce identical tables::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_policy.py -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from check_bench_regression import merge_write

from repro.experiments.policy_ablation import run_ablation

SEED = 0

RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def ablation(ctx):
    return run_ablation(ctx.pas, seed=SEED)


def test_policy_uplift(benchmark, ctx, ablation):
    result = benchmark.pedantic(
        run_ablation, args=(ctx.pas,), kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    assert result.as_dict() == ablation.as_dict()  # seed-pure: reruns agree
    assert result.uplift >= 0.0
    best = next(row for row in result.rows if row.family == result.best_family)
    RESULTS["policy"] = {
        "uplift": result.uplift,
        "best_family": result.best_family,
        "win_adaptive": best.win_adaptive,
        "win_static": best.win_static,
        "families": {
            row.family: {
                "adaptive_minus_static": row.uplift,
                "win_adaptive": row.win_adaptive,
                "win_static": row.win_static,
            }
            for row in result.rows
        },
    }


def test_every_family_learns_an_arm(ablation):
    for row in ablation.rows:
        assert row.arm_shares, f"{row.family}: no arms pulled at evaluation"
        assert abs(sum(row.arm_shares.values()) - 1.0) < 1e-9


def teardown_module(module) -> None:
    if RESULTS:
        merge_write(Path(__file__).parent.parent / "BENCH_serving.json", RESULTS)
