"""Horizontal scale-out bench: one overloaded gateway vs a routed fleet.

``test_bench_serving_engine.py`` measures how much stall *one* gateway
can hide by overlapping completions; this module measures what replicas
buy on top.  The trace saturates a single gateway (arrivals faster than
one replica's slot capacity drains), then the same trace runs through a
4-replica :class:`~repro.serve.router.Router` under the least-loaded
policy.  Every replica holds the same trained PAS model and the same
config, so responses are content-identical — only the schedule changes.

The headline number is ``router.speedup``: single-gateway makespan over
fleet makespan, in logical ticks.  Both runs are seed-pure, so the ratio
is deterministic and ``check_bench_regression.py`` gates it at >= 1.0
like every other ``speedup`` key (the quick tier asserts >= 2x locally —
4 replicas on a saturating trace measure ~3x, and the slack absorbs
latency-model retuning).

``router_affinity`` records the cache story as un-gated trend keys: the
fleet-wide complement-cache hit rate under consistent-hash placement vs
least-loaded placement on a Zipf-skewed trace (affinity keeps repeats on
the replica that already cached them) plus the shared-scope hit rate.

Quick tier::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_router.py -q

Results deep-merge into ``BENCH_serving.json`` under ``router`` /
``router_affinity``.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write
from repro import build_default_dataset
from repro.core.pas import PasModel
from repro.serve.config import ServingConfig
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.router import Router, RouterConfig
from repro.serve.traffic import TrafficConfig, TrafficGenerator
from repro.world.prompts import PromptFactory

N_REQUESTS = 300
N_UNIQUE_PROMPTS = 32
N_REPLICAS = 4
MAX_INFLIGHT = 8  # per replica

RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def trained_pas():
    dataset = build_default_dataset(n_prompts=150, seed=3, curate=True)
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(dataset)


def _prompt_pool(n: int, seed: int) -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


def _config(router: RouterConfig) -> ServingConfig:
    return ServingConfig(
        router=router,
        gateway=GatewayConfig(seed=5),
        engine=EngineConfig(max_inflight=MAX_INFLIGHT),
    )


@pytest.fixture(scope="module")
def saturating_trace():
    """Arrivals fast enough to drown one gateway's slot capacity."""
    config = TrafficConfig(
        n_requests=N_REQUESTS, seed=11, process="poisson", mean_gap_ticks=0.25
    )
    return TrafficGenerator(_prompt_pool(N_UNIQUE_PROMPTS, 2), config).trace()


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Persist everything RESULTS accumulated once the module finishes."""
    yield
    payload = {
        "scale": {
            "quick": {
                "router_n_requests": N_REQUESTS,
                "router_n_unique_prompts": N_UNIQUE_PROMPTS,
                "router_n_replicas": N_REPLICAS,
                "router_max_inflight": MAX_INFLIGHT,
            },
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        **RESULTS,
    }
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", payload)


def test_fleet_speedup(trained_pas, saturating_trace):
    """The gated number: N replicas beat one gateway on the same trace."""
    single = ServingEngine(
        PasGateway(trained_pas, config=GatewayConfig(seed=5)),
        EngineConfig(max_inflight=MAX_INFLIGHT),
    ).run(saturating_trace)

    config = _config(RouterConfig(n_replicas=N_REPLICAS, policy="least_loaded"))
    router = Router(trained_pas, config)
    start = time.perf_counter()
    fleet = ServingEngine(router, config).run(saturating_trace)
    wall_s = time.perf_counter() - start

    ratio = single.stats.makespan_ticks / fleet.stats.makespan_ticks
    RESULTS["router"] = {
        "speedup": ratio,
        "n_replicas": N_REPLICAS,
        "max_inflight_per_replica": MAX_INFLIGHT,
        "single_makespan_ticks": single.stats.makespan_ticks,
        "fleet_makespan_ticks": fleet.stats.makespan_ticks,
        "served_per_ktick": fleet.stats.served_per_ktick,
        "latency_p50": fleet.stats.latency_p50,
        "latency_p99": fleet.stats.latency_p99,
        "queue_wait_p99": fleet.stats.queue_wait_p99,
        "routed_per_replica": router.stats.routed,
        "wall_requests_per_s": N_REQUESTS / wall_s,
    }
    # 4 replicas on a saturating trace measure ~3x; >= 2x leaves slack.
    assert ratio >= 2.0
    assert fleet.stats.served == N_REQUESTS
    # Content parity: same completions, different schedule.
    assert [r.response for r in fleet.responses] == [
        r.response for r in single.responses
    ]
    # Balance actually spread the work.
    assert min(router.stats.routed) > 0


def test_affinity_cache_hit_rates(trained_pas):
    """Trend keys: hash affinity preserves locality that balance scatters."""
    trace_config = TrafficConfig(
        n_requests=N_REQUESTS,
        seed=13,
        process="poisson",
        mean_gap_ticks=0.5,
        zipf_exponent=1.2,
    )
    trace = TrafficGenerator(_prompt_pool(N_UNIQUE_PROMPTS, 2), trace_config).trace()

    def hit_rate(policy: str, cache_scope: str = "replica") -> float:
        config = _config(
            RouterConfig(
                n_replicas=N_REPLICAS, policy=policy, cache_scope=cache_scope
            )
        )
        router = Router(trained_pas, config)
        ServingEngine(router, config).run(trace)
        return router.cache_hit_rate

    affinity = hit_rate("hash")
    balance = hit_rate("least_loaded")
    shared = hit_rate("least_loaded", cache_scope="shared")
    RESULTS["router_affinity"] = {
        "hash_hit_rate": affinity,
        "least_loaded_hit_rate": balance,
        "shared_cache_hit_rate": shared,
        "zipf_exponent": trace_config.zipf_exponent,
    }
    assert affinity >= balance
    assert shared >= balance
