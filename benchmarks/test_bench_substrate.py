"""Microbenchmarks of the substrate layers (throughput, not paper shapes)."""

import numpy as np

from repro.embedding.model import EmbeddingModel
from repro.ann.hnsw import HnswIndex
from repro.llm.engine import SimulatedLLM
from repro.text.ngram import NgramLanguageModel
from repro.world.prompts import CorpusConfig, PromptFactory


def _texts(n=100, seed=0):
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


def test_embedding_throughput(benchmark):
    model = EmbeddingModel()
    texts = _texts(100)
    result = benchmark(model.embed_batch, texts)
    assert result.shape[0] == 100


def test_hnsw_build(benchmark):
    points = np.random.default_rng(1).normal(size=(500, 64))

    def build():
        index = HnswIndex(dim=64, seed=0)
        for i, p in enumerate(points):
            index.add(p, key=i)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(index) == 500


def test_hnsw_query_throughput(benchmark):
    points = np.random.default_rng(2).normal(size=(800, 64))
    index = HnswIndex(dim=64, seed=0)
    for i, p in enumerate(points):
        index.add(p, key=i)
    queries = np.random.default_rng(3).normal(size=(50, 64))

    def search_all():
        return [index.search(q, 10) for q in queries]

    results = benchmark(search_all)
    assert len(results) == 50


def test_engine_respond_throughput(benchmark):
    engine = SimulatedLLM("gpt-4-0613")
    texts = _texts(50, seed=4)

    def respond_all():
        return [engine.respond(t) for t in texts]

    responses = benchmark(respond_all)
    assert all(responses)


def test_ngram_fit_and_score(benchmark):
    texts = _texts(200, seed=5)

    def fit_and_score():
        lm = NgramLanguageModel(order=3).fit(texts)
        return [lm.fluency(t) for t in texts[:50]]

    scores = benchmark.pedantic(fit_and_score, rounds=1, iterations=1)
    assert all(0.0 < s <= 1.0 for s in scores)


def test_corpus_generation(benchmark):
    def build():
        factory = PromptFactory(rng=np.random.default_rng(6))
        return factory.make_corpus(CorpusConfig(n_prompts=500))

    corpus = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(corpus) == 500
