"""Continuous-serving bench: overlapped completions vs the compat path.

``test_bench_throughput.py`` measures the *batched* serving path — how
fast ``ask_batch`` and the micro-batcher chew through a trace when every
completion is free.  This module measures the thing the event-loop engine
was built for: completions that *cost ticks*.  Under the simulated
latency model every in-flight request holds a slot for a deterministic
number of logical ticks, so the compat path (``max_inflight=1``) stalls
on every completion while the overlapped engine keeps ``max_inflight``
of them in the air.

The headline number is ``serving_engine.speedup``: compat makespan over
overlapped makespan on the *same* traffic trace, in logical ticks.  Both
runs are seed-pure, so the ratio is deterministic — no timer noise — and
``check_bench_regression.py`` gates it at >= 1.0 like every other
``speedup`` key (the quick tier asserts >= 2x locally, and measures
~7x at ``max_inflight=8``).

Latency percentiles (``latency_p50`` / ``latency_p99``,
``queue_wait_p50`` / ``queue_wait_p99``) are recorded as *trend* keys:
the regression gate prints them but never fails on them, because a p99
is a property of the traffic shape, not a win/loss ratio.

The million-request tier (``PAS_BENCH_SCALE=large``) runs a synthetic
day — diurnal arrivals, two tenant classes, admission control and
deadline shedding — with ``keep_responses=False``, and reports sustained
wall-clock requests/sec plus an informational ``overlap_ratio`` (total
completion ticks over makespan: how much serialized stall the engine
actually hid).  Quick tier::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving_engine.py -q

Results deep-merge into ``BENCH_serving.json`` under ``serving_engine``
(and ``serving_engine_1m`` + ``scale.large`` for the big tier).
"""

from __future__ import annotations

import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write
from repro import build_default_dataset
from repro.core.pas import PasModel
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.traffic import TenantProfile, TrafficConfig, TrafficGenerator
from repro.world.prompts import PromptFactory

# Quick tier: enough traffic that the event heap and batcher see every
# trigger, small enough for CI smoke.
N_REQUESTS = 300
N_UNIQUE_PROMPTS = 32
MAX_INFLIGHT = 8

# Large tier: the million-request synthetic day.
N_REQUESTS_LARGE = 1_000_000
N_UNIQUE_PROMPTS_LARGE = 512
MEAN_GAP_LARGE = 2.0
MAX_QUEUE_LARGE = 4096

RESULTS: dict[str, object] = {}

_LARGE_ONLY = pytest.mark.skipif(
    os.environ.get("PAS_BENCH_SCALE", "").lower() != "large",
    reason="million-request tier only runs with PAS_BENCH_SCALE=large",
)


# --------------------------------------------------------------------- #
# shared fixtures
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def trained_pas():
    dataset = build_default_dataset(n_prompts=150, seed=3, curate=True)
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(dataset)


def _prompt_pool(n: int, seed: int) -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


def _gateway(pas: PasModel, **overrides) -> PasGateway:
    return PasGateway(pas=pas, config=GatewayConfig(seed=5, **overrides))


@pytest.fixture(scope="module")
def quick_trace():
    """A poisson trace over a Zipf-skewed pool — the cache-friendly shape."""
    config = TrafficConfig(
        n_requests=N_REQUESTS, seed=11, process="poisson", mean_gap_ticks=1.0
    )
    return TrafficGenerator(_prompt_pool(N_UNIQUE_PROMPTS, 2), config).trace()


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Persist everything RESULTS accumulated once the module finishes."""
    yield
    scale: dict[str, object] = {
        "quick": {
            "engine_n_requests": N_REQUESTS,
            "engine_n_unique_prompts": N_UNIQUE_PROMPTS,
            "engine_max_inflight": MAX_INFLIGHT,
        },
    }
    if "serving_engine_1m" in RESULTS:
        scale["large"] = {
            "engine_n_requests": N_REQUESTS_LARGE,
            "engine_n_unique_prompts": N_UNIQUE_PROMPTS_LARGE,
            "engine_mean_gap_ticks": MEAN_GAP_LARGE,
            "engine_max_queue": MAX_QUEUE_LARGE,
        }
    payload = {
        "scale": scale,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        **RESULTS,
    }
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", payload)


# --------------------------------------------------------------------- #
# quick tier
# --------------------------------------------------------------------- #


def test_overlap_speedup(trained_pas, quick_trace):
    """The gated number: overlapped makespan beats compat on the same trace."""
    compat = ServingEngine(
        _gateway(trained_pas), EngineConfig(max_inflight=1)
    ).run(quick_trace)
    start = time.perf_counter()
    overlapped = ServingEngine(
        _gateway(trained_pas), EngineConfig(max_inflight=MAX_INFLIGHT)
    ).run(quick_trace)
    wall_s = time.perf_counter() - start

    ratio = compat.stats.makespan_ticks / overlapped.stats.makespan_ticks
    RESULTS["serving_engine"] = {
        "speedup": ratio,
        "max_inflight": MAX_INFLIGHT,
        "compat_makespan_ticks": compat.stats.makespan_ticks,
        "makespan_ticks": overlapped.stats.makespan_ticks,
        "served_per_ktick": overlapped.stats.served_per_ktick,
        "latency_p50": overlapped.stats.latency_p50,
        "latency_p99": overlapped.stats.latency_p99,
        "queue_wait_p50": overlapped.stats.queue_wait_p50,
        "queue_wait_p99": overlapped.stats.queue_wait_p99,
        "peak_inflight": overlapped.stats.peak_inflight,
        "occupancy": overlapped.stats.occupancy,
        "shed_rate": overlapped.stats.shed_rate,
        "wall_requests_per_s": N_REQUESTS / wall_s,
    }
    # The ISSUE gate: >= 2x at max_inflight=8 on the quick trace (measured
    # ~7x; the slack absorbs future latency-model retuning).
    assert ratio >= 2.0
    assert overlapped.stats.served == N_REQUESTS
    assert overlapped.stats.peak_inflight > 1
    assert compat.stats.peak_inflight == 1


def test_bursty_shedding(trained_pas):
    """Bursty overload with admission + deadlines: p99 stays bounded.

    With no shedding a burst at 8x the base rate pushes queue waits (and
    so tail latency) toward the burst length; with a deadline budget and
    a queue bound the engine sheds the overflow instead.  Both p99s are
    recorded as un-gated trend keys; the bench only asserts the shape —
    shedding happened, and it kept the tail below the unshed tail.
    """
    config = TrafficConfig(
        n_requests=N_REQUESTS,
        seed=13,
        process="bursty",
        mean_gap_ticks=1.0,
        burst_factor=8.0,
        burst_len=48,
        idle_len=16,
    )
    trace = TrafficGenerator(_prompt_pool(N_UNIQUE_PROMPTS, 2), config).trace()

    unshed = ServingEngine(
        _gateway(trained_pas), EngineConfig(max_inflight=MAX_INFLIGHT)
    ).run(trace)
    shed = ServingEngine(
        _gateway(trained_pas),
        EngineConfig(
            max_inflight=MAX_INFLIGHT,
            max_queue=32,
            deadline_ticks=64,
        ),
    ).run(trace)

    RESULTS["serving_engine_bursty"] = {
        "unshed_latency_p99": unshed.stats.latency_p99,
        "unshed_queue_wait_p99": unshed.stats.queue_wait_p99,
        "shed_latency_p99": shed.stats.latency_p99,
        "shed_queue_wait_p99": shed.stats.queue_wait_p99,
        "shed_rate": shed.stats.shed_rate,
        "shed_by_reason": dict(shed.stats.shed),
    }
    assert shed.stats.shed_total > 0
    assert shed.stats.queue_wait_p99 <= unshed.stats.queue_wait_p99
    assert shed.stats.arrived == shed.stats.served + shed.stats.failed


# --------------------------------------------------------------------- #
# large tier: the million-request synthetic day
# --------------------------------------------------------------------- #


@pytest.mark.slow
@_LARGE_ONLY
def test_million_request_day(trained_pas):
    """A full synthetic day of traffic through the overlapped engine.

    Diurnal arrivals near the engine's saturation point, two tenant
    classes (interactive traffic carries a deadline and outranks batch),
    admission control bounding the queue, ``keep_responses=False`` so
    memory stays flat.  The serialized baseline is free: total busy
    ticks (slot-holding time summed over every served request) *is* the
    compat makespan at saturation, so ``overlap_ratio`` (serialized
    ticks / actual makespan) reports how much stall the engine hid
    without a second million-request run.
    """
    tenants = (
        TenantProfile(
            name="interactive",
            weight=0.7,
            priority=1,
            deadline_ticks=256,
        ),
        TenantProfile(name="batch", weight=0.3, priority=0),
    )
    config = TrafficConfig(
        n_requests=N_REQUESTS_LARGE,
        seed=17,
        process="diurnal",
        mean_gap_ticks=MEAN_GAP_LARGE,
        period_ticks=N_REQUESTS_LARGE,  # one full day over the trace
        amplitude=0.8,
        tenants=tenants,
    )
    build_start = time.perf_counter()
    trace = TrafficGenerator(
        _prompt_pool(N_UNIQUE_PROMPTS_LARGE, 4), config
    ).trace()
    trace_build_s = time.perf_counter() - build_start

    engine = ServingEngine(
        _gateway(trained_pas),
        EngineConfig(
            max_inflight=MAX_INFLIGHT,
            max_queue=MAX_QUEUE_LARGE,
            shed_policy="reject",
            keep_responses=False,
        ),
    )
    start = time.perf_counter()
    result = engine.run(trace)
    wall_s = time.perf_counter() - start
    stats = result.stats

    serialized_ticks = sum(stats.busy_ticks.values())
    RESULTS["serving_engine_1m"] = {
        "n_requests": N_REQUESTS_LARGE,
        "trace_build_s": trace_build_s,
        "run_s": wall_s,
        "wall_requests_per_s": N_REQUESTS_LARGE / wall_s,
        "served": stats.served,
        "shed_rate": stats.shed_rate,
        "shed_by_reason": dict(stats.shed),
        "makespan_ticks": stats.makespan_ticks,
        "served_per_ktick": stats.served_per_ktick,
        "overlap_ratio": serialized_ticks / stats.makespan_ticks,
        "latency_p50": stats.latency_p50,
        "latency_p99": stats.latency_p99,
        "queue_wait_p50": stats.queue_wait_p50,
        "queue_wait_p99": stats.queue_wait_p99,
        "peak_inflight": stats.peak_inflight,
        "occupancy": stats.occupancy,
    }
    assert stats.arrived == N_REQUESTS_LARGE
    assert stats.arrived == stats.served + stats.failed
    assert result.responses == []
    # The engine must actually overlap at scale: hiding less than 2x the
    # serialized stall would mean the event loop degenerated to lockstep.
    assert serialized_ticks / stats.makespan_ticks >= 2.0
