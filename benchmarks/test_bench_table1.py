"""Bench E1 — regenerate Table 1 (PAS vs BPO vs none, six target LLMs)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, ctx):
    result = run_once(benchmark, table1.run, ctx)
    print()
    print(table1.render(result))
    # Paper shapes: PAS beats the baseline by ~8 points and BPO by ~6.
    assert result.pas_gain_over_none > 2.0
    assert result.pas_gain_over_bpo > 0.0
    # Every single model must improve under PAS vs no APE (Table 1 rows).
    baseline = {r.model: r.average for r in result.method_rows("none")}
    for row in result.method_rows("pas"):
        assert row.average > baseline[row.model] - 1.0
