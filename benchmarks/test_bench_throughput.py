"""Throughput benchmarks for the batched hot paths.

Unlike the paper-shape benches, these measure raw items/sec: index build,
batched vs. scalar k-NN search, batch embedding/augmentation, and gateway
requests/sec at quick scale.  The scalar k-NN baseline is
:class:`ScalarReferenceHnsw`, a faithful copy of the pre-vectorization
``HnswIndex`` (one ``_distance`` call per neighbour per hop) kept here so
the speedup has a stable reference; the other baselines are per-item calls
to the production scalar APIs, which the batched paths must match bit for
bit (see ``tests/test_batch_parity.py``).

Results are written to ``BENCH_serving.json`` at the repo root so later
PRs have a perf trajectory to regress against:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_throughput.py -q
"""

from __future__ import annotations

import heapq
import math
import platform
from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write
from repro import build_default_dataset
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.core.pas import PasModel
from repro.embedding.model import EmbeddingModel
from repro.obs import Observability
from repro.serve.gateway import GatewayConfig, PasGateway, derive_stage_timings
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest
from repro.utils.timing import speedup, time_call, time_pair
from repro.world.prompts import PromptFactory

# Quick-scale workload: large enough that per-call overhead is amortised,
# small enough that the whole module doubles as a CI smoke test.
N_CORPUS = 400
N_INDEX = 400
N_QUERIES = 120
K = 10
N_REQUESTS = 240
N_UNIQUE_PROMPTS = 40
N_SHARDS = 4

RESULTS: dict[str, object] = {}


class _RefNode:
    __slots__ = ("key", "vector", "neighbors")

    def __init__(self, key: int, vector: np.ndarray, max_layer: int):
        self.key = key
        self.vector = vector
        self.neighbors: list[list[int]] = [[] for _ in range(max_layer + 1)]

    @property
    def max_layer(self) -> int:
        return len(self.neighbors) - 1


class ScalarReferenceHnsw:
    """The pre-vectorization HNSW: per-node arrays, per-neighbour distances.

    This is the implementation ``repro.ann.hnsw`` shipped before the
    batched refactor, trimmed to add + search.  It exists only as the
    benchmark baseline — do not use it outside this module.
    """

    def __init__(self, dim: int, m: int = 16, ef_construction: int = 200,
                 ef_search: int = 50, metric: str = "cosine", seed: int = 0):
        self.dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.metric = metric
        self._level_mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self._nodes: list[_RefNode] = []
        self._entry: int | None = None

    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        if self.metric == "l2":
            diff = a - b
            return float(diff @ diff)
        na = float(np.linalg.norm(a))
        nb = float(np.linalg.norm(b))
        if na < 1e-12 or nb < 1e-12:
            return 1.0
        return 1.0 - float(a @ b) / (na * nb)

    def _draw_level(self) -> int:
        u = max(float(self._rng.random()), 1e-12)
        return int(-math.log(u) * self._level_mult)

    def _search_layer(self, query, entry_ids, ef, layer):
        visited = set(entry_ids)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for nid in entry_ids:
            d = self._distance(query, self._nodes[nid].vector)
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        while candidates:
            d_cand, nid = heapq.heappop(candidates)
            if d_cand > -results[0][0] and len(results) >= ef:
                break
            for nb in self._nodes[nid].neighbors[layer]:
                if nb in visited:
                    continue
                visited.add(nb)
                d = self._distance(query, self._nodes[nb].vector)
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nb))
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-nd, nid) for nd, nid in results]

    def _select_neighbors(self, candidates, m):
        selected: list[tuple[float, int]] = []
        for d, nid in sorted(candidates):
            if len(selected) >= m:
                break
            vec = self._nodes[nid].vector
            if any(self._distance(vec, self._nodes[sid].vector) < d for _, sid in selected):
                continue
            selected.append((d, nid))
        if len(selected) < m:
            chosen = {nid for _, nid in selected}
            for d, nid in sorted(candidates):
                if len(selected) >= m:
                    break
                if nid not in chosen:
                    selected.append((d, nid))
                    chosen.add(nid)
        return [nid for _, nid in selected]

    def _link(self, source, target, layer, cap):
        nbrs = self._nodes[source].neighbors[layer]
        if target == source or target in nbrs:
            return
        nbrs.append(target)
        if len(nbrs) > cap:
            src_vec = self._nodes[source].vector
            cands = [(self._distance(src_vec, self._nodes[n].vector), n) for n in nbrs]
            self._nodes[source].neighbors[layer] = self._select_neighbors(cands, cap)

    def add(self, vector: np.ndarray, key: int) -> None:
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        level = self._draw_level()
        node = _RefNode(key, vec, level)
        node_id = len(self._nodes)
        self._nodes.append(node)
        if self._entry is None:
            self._entry = node_id
            return
        entry = self._entry
        top = self._nodes[entry].max_layer
        curr = entry
        for layer in range(top, level, -1):
            improved = True
            while improved:
                improved = False
                d_curr = self._distance(vec, self._nodes[curr].vector)
                for nb in self._nodes[curr].neighbors[layer]:
                    if self._distance(vec, self._nodes[nb].vector) < d_curr:
                        curr = nb
                        d_curr = self._distance(vec, self._nodes[curr].vector)
                        improved = True
        entries = [curr]
        for layer in range(min(level, top), -1, -1):
            found = self._search_layer(vec, entries, self.ef_construction, layer)
            cap = self.m0 if layer == 0 else self.m
            neighbors = self._select_neighbors(found, self.m)
            node.neighbors[layer] = list(neighbors)
            for nb in neighbors:
                self._link(nb, node_id, layer, cap)
            entries = [nid for _, nid in sorted(found)[: self.ef_construction]]
        if level > top:
            self._entry = node_id

    def search(self, query: np.ndarray, k: int, ef: int | None = None):
        if self._entry is None:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        ef = max(ef if ef is not None else self.ef_search, k)
        curr = self._entry
        for layer in range(self._nodes[curr].max_layer, 0, -1):
            improved = True
            while improved:
                improved = False
                d_curr = self._distance(query, self._nodes[curr].vector)
                for nb in self._nodes[curr].neighbors[layer]:
                    if self._distance(query, self._nodes[nb].vector) < d_curr:
                        curr = nb
                        d_curr = self._distance(query, self._nodes[curr].vector)
                        improved = True
        found = self._search_layer(query, [curr], ef, 0)
        found.sort()
        return [(self._nodes[nid].key, d) for d, nid in found[:k]]


# --------------------------------------------------------------------- #
# shared workload fixtures
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def texts():
    factory = PromptFactory(rng=np.random.default_rng(0))
    return [factory.make_prompt().text for _ in range(N_CORPUS)]


@pytest.fixture(scope="module")
def embedder():
    return EmbeddingModel()


@pytest.fixture(scope="module")
def corpus_vectors(texts, embedder):
    return embedder.embed_batch(texts[:N_INDEX])


@pytest.fixture(scope="module")
def query_vectors(embedder):
    factory = PromptFactory(rng=np.random.default_rng(1))
    return embedder.embed_batch(
        [factory.make_prompt().text for _ in range(N_QUERIES)]
    )


@pytest.fixture(scope="module")
def trained_pas():
    dataset = build_default_dataset(n_prompts=150, seed=3, curate=True)
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(dataset)


@pytest.fixture(scope="module")
def zipf_traffic(trained_pas):
    """Heavy-tailed serving traffic over a fixed unique-prompt pool."""
    factory = PromptFactory(rng=np.random.default_rng(2))
    pool = [factory.make_prompt().text for _ in range(N_UNIQUE_PROMPTS)]
    weights = np.array([1.0 / rank for rank in range(1, N_UNIQUE_PROMPTS + 1)])
    rng = np.random.default_rng(3)
    picks = rng.choice(N_UNIQUE_PROMPTS, size=N_REQUESTS, p=weights / weights.sum())
    return [pool[i] for i in picks]


@pytest.fixture(scope="module")
def cold_traffic(trained_pas):
    """All-unique traffic: every request misses both cache tiers.

    The complement cache is useless here, so this is the workload where
    batching augmentation (the micro-batcher's job) has the most to win.
    """
    factory = PromptFactory(rng=np.random.default_rng(7))
    return [factory.make_prompt().text for _ in range(N_REQUESTS)]


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Persist everything RESULTS accumulated once the module finishes.

    Deep-merge-write via :func:`check_bench_regression.merge_write`: other
    bench modules (``test_bench_obs.py``, ``test_bench_ann_scale.py``)
    contribute their own top-level keys — and their own tier under
    ``scale`` — to the same file.
    """
    yield
    payload = {
        "scale": {
            "quick": {
                "n_corpus": N_CORPUS,
                "n_index": N_INDEX,
                "n_queries": N_QUERIES,
                "k": K,
                "n_requests": N_REQUESTS,
                "n_unique_prompts": N_UNIQUE_PROMPTS,
                "dim": EmbeddingModel().dim,
            },
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        **RESULTS,
    }
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", payload)


# --------------------------------------------------------------------- #
# benches
# --------------------------------------------------------------------- #


def test_embed_batch_throughput(texts, embedder):
    scalar = time_call(
        lambda: [embedder.embed(t) for t in texts],
        label="embed scalar loop", n_items=len(texts), repeats=3,
    )
    batched = time_call(
        lambda: embedder.embed_batch(texts),
        label="embed_batch", n_items=len(texts), repeats=3,
    )
    RESULTS["embed"] = {
        "scalar_texts_per_s": scalar.items_per_s,
        "batched_texts_per_s": batched.items_per_s,
        "speedup": speedup(scalar, batched),
    }
    assert speedup(scalar, batched) > 1.5


def test_index_build_throughput(corpus_vectors):
    def build_batched():
        index = HnswIndex(dim=corpus_vectors.shape[1], seed=0)
        index.add_batch(corpus_vectors, range(corpus_vectors.shape[0]))
        return index

    def build_scalar():
        index = ScalarReferenceHnsw(dim=corpus_vectors.shape[1], seed=0)
        for i, row in enumerate(corpus_vectors):
            index.add(row, key=i)
        return index

    batched = time_call(
        build_batched, label="add_batch build",
        n_items=corpus_vectors.shape[0], repeats=2, warmup=1,
    )
    scalar = time_call(
        build_scalar, label="scalar-reference build",
        n_items=corpus_vectors.shape[0], repeats=2, warmup=0,
    )
    RESULTS["index_build"] = {
        "batched_vectors_per_s": batched.items_per_s,
        "scalar_vectors_per_s": scalar.items_per_s,
        "speedup": speedup(scalar, batched),
    }
    # Construction time is dominated by the select-neighbours heuristic
    # (tiny candidate sets), not by distance evaluation, so batching buys
    # far less here than on the search side; just require no regression.
    assert speedup(scalar, batched) > 1.0


def test_knn_search_throughput(corpus_vectors, query_vectors):
    index = HnswIndex(dim=corpus_vectors.shape[1], seed=0)
    index.add_batch(corpus_vectors, range(corpus_vectors.shape[0]))
    reference = ScalarReferenceHnsw(dim=corpus_vectors.shape[1], seed=0)
    for i, row in enumerate(corpus_vectors):
        reference.add(row, key=i)

    batched = time_call(
        lambda: index.search_batch(query_vectors, K),
        label="search_batch", n_items=query_vectors.shape[0], repeats=3,
    )
    scalar = time_call(
        lambda: [reference.search(q, K) for q in query_vectors],
        label="scalar-reference search loop",
        n_items=query_vectors.shape[0], repeats=2,
    )

    # Both graphs draw identical levels (same RNG stream); distances agree
    # to the last ulp or so, so the result sets should essentially match.
    batch_hits = index.search_batch(query_vectors, K)
    ref_hits = [reference.search(q, K) for q in query_vectors]
    overlap = np.mean([
        len({key for key, _ in b} & {key for key, _ in r}) / K
        for b, r in zip(batch_hits, ref_hits)
    ])
    RESULTS["knn_search"] = {
        "batched_queries_per_s": batched.items_per_s,
        "scalar_queries_per_s": scalar.items_per_s,
        "speedup": speedup(scalar, batched),
        "overlap_vs_scalar_reference": float(overlap),
    }
    assert overlap > 0.95
    assert speedup(scalar, batched) > 2.0


def test_augment_batch_throughput(trained_pas, zipf_traffic):
    batch = trained_pas.augment_batch(zipf_traffic)
    scalar_out = [trained_pas.augment(p) for p in zipf_traffic]
    assert batch == scalar_out  # determinism contract, end to end

    scalar = time_call(
        lambda: [trained_pas.augment(p) for p in zipf_traffic],
        label="augment scalar loop", n_items=len(zipf_traffic), repeats=2,
    )
    batched = time_call(
        lambda: trained_pas.augment_batch(zipf_traffic),
        label="augment_batch", n_items=len(zipf_traffic), repeats=3,
    )
    unique = sorted(set(zipf_traffic))
    scalar_unique = time_call(
        lambda: [trained_pas.augment(p) for p in unique],
        label="augment scalar loop (unique)", n_items=len(unique), repeats=2,
    )
    batched_unique = time_call(
        lambda: trained_pas.augment_batch(unique),
        label="augment_batch (unique)", n_items=len(unique), repeats=3,
    )
    RESULTS["augment"] = {
        "scalar_prompts_per_s": scalar.items_per_s,
        "batched_prompts_per_s": batched.items_per_s,
        "speedup": speedup(scalar, batched),
        "unique_only_speedup": speedup(scalar_unique, batched_unique),
    }
    assert speedup(scalar, batched) > 2.0


def test_sharded_index_throughput(corpus_vectors, query_vectors):
    """Sharded vs monolithic HNSW: both build *and* search must win.

    K round-robin shards build K graphs of n/K nodes; insertion cost grows
    with graph size, so the sharded build is faster even on one core.
    Search used to lose at this scale (K beams at full ef each cost ~K
    times the monolithic beam); the fan-out now answers shards this small
    with one exact vectorised scan each, which is both cheaper than the
    monolithic beam *and* exhaustive — so the speedup is asserted and the
    overlap contract tightens to exactly 1.0 (the sharded result can only
    be at least as exact as the single index's).
    """

    def build_single():
        index = HnswIndex(dim=corpus_vectors.shape[1], seed=0)
        index.add_batch(corpus_vectors, range(corpus_vectors.shape[0]))
        return index

    def build_sharded():
        index = ShardedHnswIndex(dim=corpus_vectors.shape[1], n_shards=N_SHARDS, seed=0)
        index.add_batch(corpus_vectors, range(corpus_vectors.shape[0]))
        return index

    single_build = time_call(
        build_single, label="monolithic build",
        n_items=corpus_vectors.shape[0], repeats=2, warmup=1,
    )
    sharded_build = time_call(
        build_sharded, label="sharded build",
        n_items=corpus_vectors.shape[0], repeats=2, warmup=1,
    )

    single = build_single()
    sharded = build_sharded()
    single_search = time_call(
        lambda: single.search_batch(query_vectors, K),
        label="monolithic search_batch", n_items=query_vectors.shape[0], repeats=3,
    )
    sharded_search = time_call(
        lambda: sharded.search_batch(query_vectors, K),
        label="sharded search_batch", n_items=query_vectors.shape[0], repeats=3,
    )

    single_hits = single.search_batch(query_vectors, K)
    sharded_hits = sharded.search_batch(query_vectors, K)
    overlap = np.mean([
        len({key for key, _ in a} & {key for key, _ in b}) / K
        for a, b in zip(single_hits, sharded_hits)
    ])
    RESULTS["sharded_index"] = {
        "n_shards": N_SHARDS,
        "build": {
            "single_vectors_per_s": single_build.items_per_s,
            "sharded_vectors_per_s": sharded_build.items_per_s,
            "speedup": speedup(single_build, sharded_build),
        },
        "search": {
            "single_queries_per_s": single_search.items_per_s,
            "sharded_queries_per_s": sharded_search.items_per_s,
            "speedup": speedup(single_search, sharded_search),
        },
        "overlap_vs_single_shard": float(overlap),
    }
    assert overlap == 1.0
    assert speedup(single_build, sharded_build) > 1.0
    assert speedup(single_search, sharded_search) > 1.0


def test_scheduler_throughput(trained_pas, cold_traffic):
    """Micro-batching a cold request stream vs serving it one by one."""
    requests = [
        ServeRequest(prompt=p, model="gpt-4-0613") for p in cold_traffic
    ]

    def serve_scalar():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1024))
        return [gateway.ask(r) for r in requests]

    def serve_scheduled():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1024))
        batcher = MicroBatcher(gateway.ask_batch, max_batch=32, max_wait=8)
        return batcher.run_arrivals(enumerate(requests, start=1))

    assert serve_scheduled() == serve_scalar()  # partition parity, end to end

    scalar, scheduled = time_pair(
        serve_scalar, serve_scheduled,
        labels=("gateway ask loop (cold)", "micro-batched (cold)"),
        n_items=len(requests), repeats=3,
    )
    probe = MicroBatcher(
        PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1024)).ask_batch,
        max_batch=32, max_wait=8,
    )
    probe.run_arrivals(enumerate(requests, start=1))
    RESULTS["scheduler"] = {
        "max_batch": probe.max_batch,
        "max_wait": probe.max_wait,
        "scalar_requests_per_s": scalar.items_per_s,
        "scheduled_requests_per_s": scheduled.items_per_s,
        "speedup": speedup(scalar, scheduled),
        "batches": probe.stats.batches,
        "mean_batch_size": probe.stats.mean_batch_size,
        "mean_occupancy": probe.stats.mean_occupancy,
        "occupancy_p50": probe.stats.occupancy_p50,
        "occupancy_p99": probe.stats.occupancy_p99,
        "mean_wait_ticks": float(
            np.mean([record.mean_wait_ticks for record in probe.records])
        ),
        "max_wait_ticks": float(
            max(record.max_wait_ticks for record in probe.records)
        ),
        "triggers": probe.stats.triggers,
    }
    assert RESULTS["scheduler"]["mean_wait_ticks"] <= probe.max_wait
    assert speedup(scalar, scheduled) > 1.0


def test_two_tier_cache_throughput(trained_pas, zipf_traffic):
    """The embedding memo tier under an eviction-thrashed complement LRU.

    With the complement cache far smaller than the unique-prompt pool,
    most requests re-augment; the embedding tier lets those re-augments
    skip the hashing pass (the bulk of augmentation cost).
    """
    requests = [
        ServeRequest(prompt=p, model="gpt-4-0613") for p in zipf_traffic
    ]
    small = 8  # complement LRU capacity << N_UNIQUE_PROMPTS

    def serve_one_tier():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=small, embed_cache_size=0))
        return [gateway.ask(r) for r in requests]

    def serve_two_tier():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=small, embed_cache_size=1024))
        return [gateway.ask(r) for r in requests]

    assert serve_one_tier() == serve_two_tier()  # the memo tier is transparent

    one_tier, two_tier = time_pair(
        serve_one_tier, serve_two_tier,
        labels=("complement LRU only", "complement LRU + embed memo"),
        n_items=len(requests), repeats=3,
    )
    probe = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=small, embed_cache_size=1024))
    for request in requests:
        probe.ask(request)
    RESULTS["two_tier_cache"] = {
        "complement_cache_size": small,
        "one_tier_requests_per_s": one_tier.items_per_s,
        "two_tier_requests_per_s": two_tier.items_per_s,
        "speedup": speedup(one_tier, two_tier),
        "complement_hit_rate": probe.cache_hit_rate,
        "embed_hit_rate": probe.embed_cache_hit_rate,
    }
    assert speedup(one_tier, two_tier) > 1.0


def test_gateway_throughput(trained_pas, zipf_traffic):
    requests = [
        ServeRequest(prompt=p, model="gpt-4-0613") for p in zipf_traffic
    ]

    def serve_scalar():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1024))
        return [gateway.ask(r) for r in requests]

    def serve_batched():
        gateway = PasGateway(pas=trained_pas, config=GatewayConfig(cache_size=1024))
        return gateway.ask_batch(requests)

    assert serve_scalar() == serve_batched()  # replay parity, end to end

    # The end-to-end win is small (completion dominates; see
    # stage_fraction below), so this ratio needs more interleaved rounds
    # than the wide-margin benches to keep scheduler jitter from flipping
    # its sign.
    scalar, batched = time_pair(
        serve_scalar, serve_batched,
        labels=("gateway ask loop", "gateway ask_batch"),
        n_items=len(requests), repeats=8,
    )
    probe = PasGateway(
        pas=trained_pas,
        config=GatewayConfig(cache_size=1024),
        obs=Observability.enabled(wall=True),
    )
    probe.ask_batch(requests)
    stage_s = derive_stage_timings(probe.obs.tracer)
    stage_total = sum(stage_s.values())
    RESULTS["gateway"] = {
        "scalar_requests_per_s": scalar.items_per_s,
        "batched_requests_per_s": batched.items_per_s,
        "speedup": speedup(scalar, batched),
        "cache_hit_rate": probe.cache_hit_rate,
        "augmentation_rate": probe.stats.augmentation_rate,
        # Where a batched request's time actually goes: the completion
        # stage dominates, which is why batching the augment stage moves
        # the end-to-end number so little (the 1.06x of PR 1).
        "stage_seconds": {stage: float(s) for stage, s in stage_s.items()},
        "stage_fraction": {
            stage: (float(s) / stage_total if stage_total else 0.0)
            for stage, s in stage_s.items()
        },
    }
    assert speedup(scalar, batched) > 1.0
