"""Bench — per-category breakdown of PAS's gains (analysis extension)."""

from conftest import run_once

from repro.experiments import breakdown


def test_breakdown(benchmark, ctx):
    result = run_once(benchmark, breakdown.run, ctx)
    print()
    print(breakdown.render(result))
    # PAS should lead in the majority of categories, and the trap-heavy
    # ones should be among its best.
    assert result.n_categories_ahead > len(result.categories) / 2
    top_three = sorted(result.categories, key=lambda c: -c.pas_win_rate)[:3]
    assert {"reasoning", "math", "coding", "extraction", "knowledge", "analysis"} & {
        c.category for c in top_three
    }
