"""Bench — paired significance of the Table 1 comparisons."""

from conftest import run_once

from repro.experiments import significance


def test_significance(benchmark, ctx):
    result = run_once(benchmark, significance.run, ctx)
    print()
    print(significance.render(result))
    # PAS's gain over no-APE should be statistically solid on most models
    # even at bench scale; vs BPO the gap is smaller, so just require the
    # machinery produced sane p-values.
    assert result.n_significant("none") >= 4
    assert all(0.0 <= c.p_value <= 1.0 for c in result.comparisons)
