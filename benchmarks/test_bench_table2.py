"""Bench E2 — regenerate Table 2 (PAS vs BPO on the same LLaMA-2-7B base)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, ctx):
    result = run_once(benchmark, table2.run, ctx)
    print()
    print(table2.render(result))
    # Paper shape: even on BPO's own base model, PAS wins on average (+3.41).
    assert result.pas_gain_over_bpo > 0.0
