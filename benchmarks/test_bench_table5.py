"""Bench E5 — regenerate Table 5 (selection/regeneration ablation)."""

from conftest import run_once

from repro.experiments import table5


def test_table5(benchmark, ctx):
    result = run_once(benchmark, table5.run, ctx)
    print()
    print(table5.render(result))
    # Paper shape: removing selection + regeneration costs ~3.8 points.
    assert result.ablation_drop > 0.0
    assert result.curated_label_quality > result.raw_label_quality
