"""Fail CI when a freshly measured benchmark speedup drops below 1.0.

Walks a bench JSON (``BENCH_serving.json``) recursively and collects every
key whose name is ``speedup`` or ends in ``_speedup``; any such value
below the threshold is a regression — a batched/parallel path that is now
slower than the scalar baseline it replaced.

Only robust wins may live under ``speedup``-named keys — the gate is a
contract on naming as much as on performance.  Since the scan/split-ef
rework of the sharded fan-out, ``sharded_index.search.speedup`` is such a
key: sharded search must beat the monolithic index even on one core, at
both the quick tier and the 100k tier.

Latency-percentile keys (``*_p50`` / ``*_p99``) are *trend* keys: the
gate prints them so CI logs carry a tail-latency trajectory PR over PR,
but never fails on them — a p99 is a property of the traffic shape and
the latency model, not a win/loss ratio, so thresholding it would turn
every traffic retune into a false regression.

This module also owns the bench writers' merge helper
(:func:`merge_write`): every bench module read-modify-writes the same
``BENCH_serving.json`` with a *deep* merge, so sibling modules — and
sibling tiers under the shared ``scale`` key — never clobber each other.

The gate also walks ``overhead``-named keys the other way: values like
``obs_off_overhead`` (per-item cost of an instrumented-but-disabled path
over its pre-instrumentation baseline) must stay **at or below** 1.05 —
observability left off must be within noise of free.

``uplift``-named keys carry the adaptive-policy contract: the bandit's
judged win-rate minus static PAS's on its best workload family
(``policy.uplift``, written by ``test_bench_policy.py``) must stay **at
or above** 0.0 — learned strategy selection never loses to serving the
static complement blindly.

Usage::

    python benchmarks/check_bench_regression.py BENCH_serving.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

THRESHOLD = 1.0

#: Ratio ceiling for ``*_overhead`` keys (instrumented-off vs baseline).
OVERHEAD_THRESHOLD = 1.05

#: Floor for ``uplift``-named keys (adaptive-minus-static win-rate gaps).
UPLIFT_THRESHOLD = 0.0

__all__ = [
    "collect_overheads",
    "collect_speedups",
    "collect_trends",
    "collect_uplifts",
    "deep_merge",
    "main",
    "merge_write",
]


def deep_merge(base: dict, update: dict) -> dict:
    """Recursively merge ``update`` into ``base`` (in place, returned).

    Dict values merge key by key; everything else is last-writer-wins.
    This is what keeps e.g. ``scale.quick`` and ``scale.large`` alive when
    the two bench tiers run in either order.
    """
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            deep_merge(base[key], value)
        else:
            base[key] = value
    return base


def merge_write(path: Path, payload: dict) -> None:
    """Deep-merge ``payload`` into the JSON document at ``path``."""
    merged = json.loads(path.read_text()) if path.is_file() else {}
    deep_merge(merged, payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def _collect(node: object, matches, prefix: str = "") -> list[tuple[str, float]]:
    """All ``(dotted.path, value)`` pairs for keys where ``matches(key)``."""
    found: list[tuple[str, float]] = []
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if matches(str(key)) and isinstance(value, (int, float)):
                found.append((path, float(value)))
            else:
                found.extend(_collect(value, matches, path))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            found.extend(_collect(item, matches, f"{prefix}[{i}]"))
    return found


def collect_speedups(node: object, prefix: str = "") -> list[tuple[str, float]]:
    """All ``(dotted.path, value)`` pairs for speedup-named keys in ``node``."""
    return _collect(
        node, lambda key: key == "speedup" or key.endswith("_speedup"), prefix
    )


def collect_overheads(node: object, prefix: str = "") -> list[tuple[str, float]]:
    """All ``(dotted.path, value)`` pairs for overhead-named keys in ``node``."""
    return _collect(
        node, lambda key: key == "overhead" or key.endswith("_overhead"), prefix
    )


def collect_uplifts(node: object, prefix: str = "") -> list[tuple[str, float]]:
    """All ``(dotted.path, value)`` pairs for uplift-named keys in ``node``.

    ``uplift`` keys record adaptive-minus-static judged win-rate gaps
    (:mod:`repro.experiments.policy_ablation`); learning which strategy to
    serve must never lose to serving the static complement blindly, so
    these are gated **at or above** :data:`UPLIFT_THRESHOLD`.
    """
    return _collect(
        node, lambda key: key == "uplift" or key.endswith("_uplift"), prefix
    )


def collect_trends(node: object, prefix: str = "") -> list[tuple[str, float]]:
    """All latency-percentile keys — reported, never gated."""
    return _collect(
        node, lambda key: key.endswith("_p50") or key.endswith("_p99"), prefix
    )


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_bench_regression.py <bench.json>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        print(f"bench file not found: {path}", file=sys.stderr)
        return 2
    payload = json.loads(path.read_text())
    speedups = collect_speedups(payload)
    if not speedups:
        print(f"no speedup keys found in {path}", file=sys.stderr)
        return 2
    overheads = collect_overheads(payload)
    offenders = [(key, value) for key, value in speedups if value < THRESHOLD]
    for key, value in sorted(speedups):
        marker = "FAIL" if value < THRESHOLD else "ok"
        print(f"  {marker:>4}  {key} = {value:.3f}")
    over_offenders = [
        (key, value) for key, value in overheads if value > OVERHEAD_THRESHOLD
    ]
    for key, value in sorted(overheads):
        marker = "FAIL" if value > OVERHEAD_THRESHOLD else "ok"
        print(f"  {marker:>4}  {key} = {value:.3f} (ceiling {OVERHEAD_THRESHOLD})")
    uplifts = collect_uplifts(payload)
    uplift_offenders = [
        (key, value) for key, value in uplifts if value < UPLIFT_THRESHOLD
    ]
    for key, value in sorted(uplifts):
        marker = "FAIL" if value < UPLIFT_THRESHOLD else "ok"
        print(f"  {marker:>4}  {key} = {value:+.3f} (floor {UPLIFT_THRESHOLD})")
    failed = False
    if offenders:
        names = ", ".join(key for key, _ in offenders)
        print(
            f"{len(offenders)} speedup(s) below {THRESHOLD}: {names}",
            file=sys.stderr,
        )
        failed = True
    if over_offenders:
        names = ", ".join(key for key, _ in over_offenders)
        print(
            f"{len(over_offenders)} overhead(s) above {OVERHEAD_THRESHOLD}: {names}",
            file=sys.stderr,
        )
        failed = True
    if uplift_offenders:
        names = ", ".join(key for key, _ in uplift_offenders)
        print(
            f"{len(uplift_offenders)} uplift(s) below {UPLIFT_THRESHOLD}: {names}",
            file=sys.stderr,
        )
        failed = True
    trends = collect_trends(payload)
    if trends:
        print(f"  trend (not gated): {len(trends)} latency percentile(s)")
        for key, value in sorted(trends):
            print(f"  trnd  {key} = {value:.3f}")
    if failed:
        return 1
    summary = f"all {len(speedups)} speedups >= {THRESHOLD}"
    if overheads:
        summary += f"; all {len(overheads)} overheads <= {OVERHEAD_THRESHOLD}"
    if uplifts:
        summary += f"; all {len(uplifts)} uplifts >= {UPLIFT_THRESHOLD}"
    print(summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
