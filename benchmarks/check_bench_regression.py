"""Fail CI when a freshly measured benchmark speedup drops below 1.0.

Walks a bench JSON (``BENCH_serving.json``) recursively and collects every
key whose name is ``speedup`` or ends in ``_speedup``; any such value
below the threshold is a regression — a batched/parallel path that is now
slower than the scalar baseline it replaced.

Only robust wins may live under ``speedup``-named keys.  Metrics that are
legitimately below 1.0 in some environments (e.g. the sharded index's
single-core search ratio) must be recorded under a different name, such
as ``throughput_ratio_vs_single`` — the gate is a contract on naming as
much as on performance.

Usage::

    python benchmarks/check_bench_regression.py BENCH_serving.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

THRESHOLD = 1.0

__all__ = ["collect_speedups", "main"]


def collect_speedups(node: object, prefix: str = "") -> list[tuple[str, float]]:
    """All ``(dotted.path, value)`` pairs for speedup-named keys in ``node``."""
    found: list[tuple[str, float]] = []
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if (key == "speedup" or str(key).endswith("_speedup")) and isinstance(
                value, (int, float)
            ):
                found.append((path, float(value)))
            else:
                found.extend(collect_speedups(value, path))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            found.extend(collect_speedups(item, f"{prefix}[{i}]"))
    return found


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_bench_regression.py <bench.json>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        print(f"bench file not found: {path}", file=sys.stderr)
        return 2
    payload = json.loads(path.read_text())
    speedups = collect_speedups(payload)
    if not speedups:
        print(f"no speedup keys found in {path}", file=sys.stderr)
        return 2
    offenders = [(key, value) for key, value in speedups if value < THRESHOLD]
    for key, value in sorted(speedups):
        marker = "FAIL" if value < THRESHOLD else "ok"
        print(f"  {marker:>4}  {key} = {value:.3f}")
    if offenders:
        names = ", ".join(key for key, _ in offenders)
        print(
            f"{len(offenders)} speedup(s) below {THRESHOLD}: {names}",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(speedups)} speedups >= {THRESHOLD}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
