"""Bench — judge-bias sweeps (mechanism checks for the evaluation layer).

Two sweeps that certify the evaluation machinery measures what it claims:

* **length bias** — as the judge's verbosity bias grows, the *raw*
  AlpacaEval win rate of a verbose arm inflates while the *LC* win rate
  stays comparatively stable (the whole point of the LC variant);
* **judge noise** — as observation noise grows, the PAS-vs-none gap
  shrinks toward (but does not cross) zero, showing the measured gaps are
  signal, not artifacts of a particular noise level.
"""

import pytest
from conftest import run_once

from repro.baselines.base import NoApe
from repro.core.plug import PasApe
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.judge import JudgeConfig, LlmJudge
from repro.judge.suites import build_alpaca_suite


class TestLengthBiasSweep:
    @pytest.mark.parametrize("length_bias", [0.0, 0.3, 0.9])
    def test_raw_inflates_lc_stays(self, benchmark, ctx, length_bias):
        suite = build_alpaca_suite(80, seed=71)
        judge = LlmJudge(JudgeConfig(length_bias=length_bias, noise_sigma=0.2))
        bench = AlpacaEvalBenchmark(suite, judge=judge)
        engine = ctx.engine("gpt-4-1106-preview")  # verbose profile

        def run():
            return bench.evaluate(engine, PasApe(ctx.pas))

        result = run_once(benchmark, run)
        print(
            f"\nlength_bias={length_bias}: raw {result.win_rate:.1f} "
            f"LC {result.lc_win_rate:.1f} (gap {result.win_rate - result.lc_win_rate:+.1f})"
        )
        assert 0.0 <= result.lc_win_rate <= 100.0

    def test_gap_grows_with_bias(self, benchmark, ctx):
        suite = build_alpaca_suite(80, seed=71)
        engine = ctx.engine("gpt-4-1106-preview")

        def sweep():
            gaps = {}
            for bias in (0.0, 0.9):
                judge = LlmJudge(JudgeConfig(length_bias=bias, noise_sigma=0.2))
                result = AlpacaEvalBenchmark(suite, judge=judge).evaluate(
                    engine, PasApe(ctx.pas)
                )
                gaps[bias] = result.win_rate - result.lc_win_rate
            return gaps

        gaps = run_once(benchmark, sweep)
        # PAS responses are longer than the reference's; more bias → more
        # raw inflation → a larger raw-minus-LC gap.
        assert gaps[0.9] > gaps[0.0]


class TestNoiseSweep:
    @pytest.mark.parametrize("noise", [0.1, 0.5, 1.2])
    def test_gap_shrinks_with_noise_but_stays_positive(self, benchmark, ctx, noise):
        suite = build_alpaca_suite(80, seed=72)
        judge = LlmJudge(JudgeConfig(noise_sigma=noise))
        bench = AlpacaEvalBenchmark(suite, judge=judge)
        engine = ctx.engine("gpt-4-0613")

        def run():
            pas = bench.evaluate(engine, PasApe(ctx.pas)).win_rate
            none = bench.evaluate(engine, NoApe()).win_rate
            return pas - none

        gap = run_once(benchmark, run)
        print(f"\nnoise_sigma={noise}: PAS-vs-none gap {gap:+.1f}")
        assert gap > 0.0
