"""Shared benchmark fixtures.

Benchmarks run the experiment harnesses at *quick* scale: large enough to
show every paper shape, small enough that ``pytest benchmarks/
--benchmark-only`` completes in minutes.  EXPERIMENTS.md records the
full-scale numbers produced by ``pas-repro --scale full``.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext, ScaleConfig


@pytest.fixture(scope="session")
def ctx():
    context = ExperimentContext(scale=ScaleConfig.quick(), seed=0)
    # Pre-build the shared artifacts so per-bench timings measure the
    # experiment itself, not the first-touch dataset construction.
    context.curated_dataset
    context.raw_dataset
    context.pas
    context.bpo
    return context


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
