"""Bench E8 — regenerate the case studies (Figures 2, 8, 9)."""

from conftest import run_once

from repro.experiments import casestudies


def test_casestudies(benchmark, ctx):
    result = run_once(benchmark, casestudies.run, ctx)
    print()
    print(casestudies.render(result))
    assert result.mean_improvement > 0.0
    trap = result.cases[0]
    # Case study 1's point: PAS flips the trap from blunder to careful.
    assert trap.assessment_without.flaw_count >= 2
    assert trap.assessment_with.flaw_count < trap.assessment_without.flaw_count
