"""Bench E4b — regenerate Figure 1(b) (GSB win shares per scenario)."""

from conftest import run_once

from repro.experiments import fig1b


def test_fig1b(benchmark, ctx):
    result = run_once(benchmark, fig1b.run, ctx)
    print()
    print(fig1b.render(result))
    # Paper shape: PAS wins the majority of decisive judgements (58-64%).
    assert result.mean_win_share > 50.0
    assert len(result.scenarios) == 8
