"""Ablation benches for the design choices called out in DESIGN.md §5.

A1 — dedup off: duplicates survive into the training mix.
A2 — k-NN neighbourhood size: predictor accuracy across k.
A3 — regeneration cap: marginal value of each critic round.
A4 — critic quality: how good must IsCorrectPair be to earn its keep?
A5 — HNSW ef-search: recall/latency trade-off vs exact search.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.core.golden import build_golden_data
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import CapabilityProfile
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.pipeline.collect import CollectionConfig, PromptCollector, SelectedPrompt
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.world.prompts import CorpusConfig, PromptFactory


def _selected_prompts(n=150, seed=0):
    factory = PromptFactory(rng=np.random.default_rng(seed))
    out = []
    for _ in range(n):
        p = factory.make_prompt()
        out.append(SelectedPrompt(prompt=p, predicted_category=p.category, quality=1.0))
    return out


class TestA1DedupOff:
    def test_dedup_removes_duplicate_mass(self, benchmark):
        factory = PromptFactory(rng=np.random.default_rng(1))
        corpus = factory.make_corpus(CorpusConfig(n_prompts=300))

        def run():
            with_dedup = PromptCollector(seed=1).collect(corpus)
            without = PromptCollector(
                config=CollectionConfig(skip_dedup=True), seed=1
            ).collect(corpus)
            return with_dedup, without

        with_dedup, without = run_once(benchmark, run)
        from repro.pipeline.diagnostics import dedup_report

        on = dedup_report(corpus, with_dedup)
        off = dedup_report(corpus, without)
        print(
            f"\nA1: duplicate pairs collapsed — dedup on: {on.recall:.2f} recall, "
            f"off: {off.recall:.2f} recall"
        )
        assert on.recall > off.recall


class TestA2KnnWidth:
    @pytest.mark.parametrize("k", [1, 3, 5, 9, 15])
    def test_k_sweep(self, benchmark, ctx, k):
        predictor = SftDirectivePredictor(
            base_model="qwen2-7b-chat", config=SftConfig(k_neighbors=k), seed=0
        )
        predictor.fit(ctx.curated_dataset.training_texts())
        factory = PromptFactory(rng=np.random.default_rng(2))
        test = [(p.text, frozenset(p.needs)) for p in (factory.make_prompt() for _ in range(120))]
        accuracy = run_once(benchmark, predictor.label_accuracy, test)
        print(f"\nA2: k={k} label accuracy {accuracy:.3f}")
        assert accuracy > 0.15


class TestA3RegenerationCap:
    @pytest.mark.parametrize("max_rounds", [0, 1, 3, 5])
    def test_round_cap_sweep(self, benchmark, max_rounds):
        selected = _selected_prompts(n=120, seed=3)
        generator = PairGenerator(
            config=GenerationConfig(curate=True, max_rounds=max_rounds)
        )
        dataset = run_once(benchmark, generator.build_dataset, selected)
        print(
            f"\nA3: max_rounds={max_rounds} kept {len(dataset)} "
            f"dropped {dataset.n_dropped} labelq {dataset.mean_label_quality():.3f}"
        )
        # More regeneration rounds keep more pairs without losing quality.
        assert len(dataset) + dataset.n_dropped == 120

    def test_more_rounds_keep_more_pairs(self, benchmark):
        selected = _selected_prompts(n=120, seed=3)

        def sweep():
            kept = {}
            for rounds in (0, 5):
                generator = PairGenerator(
                    config=GenerationConfig(curate=True, max_rounds=rounds)
                )
                kept[rounds] = len(generator.build_dataset(selected))
            return kept

        kept = run_once(benchmark, sweep)
        assert kept[5] > kept[0]


class TestA4CriticQuality:
    @pytest.mark.parametrize("critic_sensitivity", [0.3, 0.6, 0.9])
    def test_critic_sweep(self, benchmark, critic_sensitivity):
        critic = SimulatedLLM(
            CapabilityProfile(
                f"critic-{critic_sensitivity}",
                cue_sensitivity=critic_sensitivity,
                instruction_following=0.9,
                error_rate=0.05,
                verbosity=1.0,
            )
        )
        generator = PairGenerator(
            critic=critic,
            golden=build_golden_data(seed=4),
            config=GenerationConfig(curate=True),
        )
        dataset = run_once(benchmark, generator.build_dataset, _selected_prompts(100, seed=4))
        print(
            f"\nA4: critic sensitivity {critic_sensitivity}: "
            f"kept {len(dataset)} labelq {dataset.mean_label_quality():.3f}"
        )
        assert len(dataset) > 0

    def test_sharper_critic_cleaner_labels(self, benchmark):
        selected = _selected_prompts(100, seed=5)

        def sweep():
            quality = {}
            for sens in (0.3, 0.95):
                critic = SimulatedLLM(
                    CapabilityProfile(f"c{sens}", sens, 0.9, 0.05, 1.0)
                )
                generator = PairGenerator(
                    critic=critic,
                    golden=build_golden_data(seed=5),
                    config=GenerationConfig(curate=True),
                )
                quality[sens] = generator.build_dataset(selected).mean_label_quality()
            return quality

        quality = run_once(benchmark, sweep)
        assert quality[0.95] >= quality[0.3] - 0.02


class TestA5HnswEf:
    @pytest.mark.parametrize("ef", [8, 32, 128])
    def test_ef_recall_latency(self, benchmark, ef):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(800, 32))
        hnsw = HnswIndex(dim=32, ef_search=ef, seed=0)
        brute = BruteForceIndex(dim=32)
        for i, p in enumerate(points):
            hnsw.add(p, key=i)
            brute.add(p, key=i)
        queries = rng.normal(size=(40, 32))
        exact = [{k for k, _ in brute.search(q, 10)} for q in queries]

        def search_all():
            return [hnsw.search(q, 10, ef=ef) for q in queries]

        results = benchmark(search_all)
        recall = float(
            np.mean(
                [
                    len({k for k, _ in hits} & ref) / 10
                    for hits, ref in zip(results, exact)
                ]
            )
        )
        print(f"\nA5: ef={ef} recall@10 {recall:.3f}")
        assert recall > 0.5
        if ef >= 128:
            assert recall > 0.95
