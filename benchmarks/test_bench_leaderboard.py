"""Bench — Arena-style Bradley-Terry leaderboard, with and without PAS.

The headline demo: plugging PAS into a mid-tier model moves it up the
model leaderboard, past models it loses to unaided.
"""

from conftest import run_once

from repro.judge.common import respond_with_method
from repro.judge.rating import leaderboard


def test_pas_moves_model_up_leaderboard(benchmark, ctx):
    target = "gpt-4-0613"
    rivals = ["gpt-4-turbo-2024-04-09", "qwen2-72b-chat", "gpt-3.5-turbo-1106"]
    judge = ctx.arena_hard.judge
    prompts = list(ctx.arena_hard.suite)[:40]

    def build_boards():
        boards = {}
        for label, method in (("plain", ctx.method_none()), ("with-pas", ctx.method_pas())):
            outcomes = []
            target_responses = [
                respond_with_method(ctx.engine(target), method, p) for p in prompts
            ]
            for rival in rivals:
                rival_responses = [
                    respond_with_method(ctx.engine(rival), ctx.method_none(), p)
                    for p in prompts
                ]
                for prompt, rt, rr in zip(prompts, target_responses, rival_responses):
                    outcomes.append((target, rival, judge.pairwise(prompt, rt, rr).outcome))
            boards[label] = leaderboard([target, *rivals], outcomes)
        return boards

    boards = run_once(benchmark, build_boards)
    for label, board in boards.items():
        print(f"\n{label} leaderboard:")
        for entry in board:
            print(f"  {entry.name:26s} {entry.rating:7.1f} ({entry.n_comparisons} games)")

    def rank(board, name):
        return [e.name for e in board].index(name)

    plain_rank = rank(boards["plain"], target)
    pas_rank = rank(boards["with-pas"], target)
    assert pas_rank <= plain_rank  # PAS never drops the model
    plain_rating = {e.name: e.rating for e in boards["plain"]}[target]
    pas_rating = {e.name: e.rating for e in boards["with-pas"]}[target]
    assert pas_rating > plain_rating
