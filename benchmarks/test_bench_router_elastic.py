"""Elastic-fleet bench: hedged retries under latency spikes, remap cost.

``test_bench_router.py`` measures what replicas buy over one gateway;
this module measures the two elastic-fleet numbers on top (ISSUE 10).

The headline number is ``router_elastic.speedup``: makespan of a
4-replica fleet under injected latency spikes *without* hedging over the
same fleet *with* tail hedging enabled, on the same trace.  A hedge
launches the straggling request on a second replica after a seed-pure
deadline and takes whichever completion lands first, so the hedged run
can only finish earlier — ``check_bench_regression.py`` gates the ratio
at >= 1.0 like every other ``speedup`` key.

``router_elastic.remap_fraction`` is an un-gated trend key: the fraction
of hash-affine keys that move when the fleet grows 4 -> 5.  Consistent
hashing pins this near 1/N (0.2 here); CI logs carry the trajectory so a
ring regression (e.g. a rehash-everything bug reading ~0.8) is visible
PR over PR without turning ring tuning into a hard failure.

Quick tier::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_router_elastic.py -q

Results deep-merge into ``BENCH_serving.json`` under ``router_elastic``.
"""

from __future__ import annotations

import platform
from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write
from repro import build_default_dataset
from repro.core.pas import PasModel
from repro.serve.config import ServingConfig
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.gateway import GatewayConfig
from repro.serve.router import FleetPlan, HedgePolicy, Router, RouterConfig
from repro.serve.traffic import TimedRequest, TrafficConfig, TrafficGenerator
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory

N_REQUESTS = 200
N_UNIQUE_PROMPTS = 32
N_REPLICAS = 4
MAX_INFLIGHT = 8  # per replica
SPIKE_RATE = 0.3
SPIKE_TICKS = 64
HEDGE_AFTER_TICKS = 4
N_REMAP_KEYS = 400

RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def trained_pas():
    dataset = build_default_dataset(n_prompts=150, seed=3, curate=True)
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(dataset)


def _prompt_pool(n: int, seed: int) -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(seed))
    return [factory.make_prompt().text for _ in range(n)]


def _config(fleet: FleetPlan) -> ServingConfig:
    return ServingConfig(
        router=RouterConfig(n_replicas=N_REPLICAS, seed=7),
        gateway=GatewayConfig(seed=5),
        engine=EngineConfig(max_inflight=MAX_INFLIGHT),
        fleet=fleet,
    )


@pytest.fixture(scope="module")
def spiky_trace():
    """Bursty arrivals; the spikes themselves come from the FleetPlan."""
    config = TrafficConfig(
        n_requests=N_REQUESTS, seed=11, process="bursty", mean_gap_ticks=1.0
    )
    return TrafficGenerator(_prompt_pool(N_UNIQUE_PROMPTS, 2), config).trace()


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Persist everything RESULTS accumulated once the module finishes."""
    yield
    payload = {
        "scale": {
            "quick": {
                "elastic_n_requests": N_REQUESTS,
                "elastic_n_replicas": N_REPLICAS,
                "elastic_spike_rate": SPIKE_RATE,
                "elastic_spike_ticks": SPIKE_TICKS,
            },
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        **RESULTS,
    }
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", payload)


def test_hedged_fleet_speedup(trained_pas, spiky_trace):
    """The gated number: hedging beats eating the spikes on the same fleet."""
    spiky = FleetPlan(spike_rate=SPIKE_RATE, spike_ticks=SPIKE_TICKS)
    hedged = FleetPlan(
        hedge=HedgePolicy(after_ticks=HEDGE_AFTER_TICKS),
        spike_rate=SPIKE_RATE,
        spike_ticks=SPIKE_TICKS,
    )

    def run(fleet: FleetPlan):
        config = _config(fleet)
        router = Router(trained_pas, config)
        return ServingEngine(router, config).run(spiky_trace), router

    slow, _ = run(spiky)
    fast, router = run(hedged)

    ratio = slow.stats.makespan_ticks / fast.stats.makespan_ticks
    hedges = dict(router.stats.hedges)
    RESULTS["router_elastic"] = {
        "speedup": ratio,
        "n_replicas": N_REPLICAS,
        "hedge_after_ticks": HEDGE_AFTER_TICKS,
        "unhedged_makespan_ticks": slow.stats.makespan_ticks,
        "hedged_makespan_ticks": fast.stats.makespan_ticks,
        "unhedged_latency_p99": slow.stats.latency_p99,
        "hedged_latency_p99": fast.stats.latency_p99,
        "hedges_launched": sum(hedges.values()),
        "hedge_wins": hedges.get("win", 0),
    }
    # First completion wins, so hedging can only shorten the schedule.
    assert ratio >= 1.0
    assert fast.stats.latency_p99 <= slow.stats.latency_p99
    assert fast.stats.served == N_REQUESTS
    assert hedges.get("win", 0) > 0


def test_remap_fraction_trend(trained_pas):
    """Un-gated trend key: growing 4 -> 5 moves ~1/5 of hash-affine keys."""
    config = _config(FleetPlan())
    router = Router(trained_pas, config)
    keys = [f"synthetic prompt number {i}? show me how." for i in range(N_REMAP_KEYS)]

    def placements() -> dict[str, int]:
        out = {}
        for key in keys:
            request = ServeRequest(prompt=key, model="gpt-4-0613")
            timed = TimedRequest(tick=1, request=request, tenant="default")
            rid = router.route(request, timed)
            router.release(rid)
            out[key] = rid
        return out

    before = placements()
    newcomer = router.add_replica()
    after = placements()
    moved = [key for key in keys if before[key] != after[key]]
    fraction = len(moved) / len(keys)
    RESULTS.setdefault("router_elastic", {})
    RESULTS["router_elastic"]["remap_fraction"] = fraction
    RESULTS["router_elastic"]["remap_ideal_fraction"] = 1 / (N_REPLICAS + 1)
    # Every moved key lands on the newcomer, and the share stays ~1/N.
    assert all(after[key] == newcomer for key in moved)
    assert 0.0 < fraction < 0.5
