"""Bench E3 — regenerate Table 3 (flexibility matrix)."""

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, ctx):
    result = run_once(benchmark, table3.run, ctx)
    print()
    print(table3.render(result))
    # Paper shape: PAS is the only method satisfying all three criteria.
    satisfying = [p.method for p in result.profiles if p.satisfies_all]
    assert satisfying == ["pas"]
