"""Bench E4a — regenerate Table 4 (human evaluation metrics)."""

from conftest import run_once

from repro.experiments import table4


def test_table4(benchmark, ctx):
    result = run_once(benchmark, table4.run, ctx)
    print()
    print(table4.render(result))
    # Paper shape: PAS improves all three panel metrics on average.
    assert result.average_gain("average_score") > 0.0
    assert result.average_gain("full_mark_pct") >= 0.0
    assert result.average_gain("availability_pct") >= 0.0
