"""Benches for the extension features beyond the paper's own artifacts.

* selection-strategy ablation (random vs top-quality vs MoDS vs InsTag)
  measured by the trained PAS model's downstream label accuracy;
* gateway complement-cache effectiveness under heavy-tailed traffic;
* the extra APE baselines (zero-shot CoT, APE instruction induction) versus
  PAS on a per-category suite.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.baselines.ape_zhou import ApeInduction
from repro.baselines.cot import ZeroShotCot
from repro.core.pas import PasModel
from repro.core.plug import PasApe
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.suites import build_alpaca_suite
from repro.pipeline.dataset import PromptPairDataset
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.pipeline.strategies import (
    ModsSelection,
    RandomSelection,
    TagDiversitySelection,
    TopQualitySelection,
    apply_strategy,
)
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


class TestSelectionStrategyAblation:
    @pytest.mark.parametrize(
        "strategy",
        [RandomSelection(seed=2), TopQualitySelection(), ModsSelection(), TagDiversitySelection()],
        ids=lambda s: s.name,
    )
    def test_strategy_to_downstream_accuracy(self, benchmark, ctx, strategy):
        """Budgeted pipeline: pick 120 collected prompts per strategy, build
        pairs, train PAS, measure directive-prediction accuracy."""
        factory = PromptFactory(rng=np.random.default_rng(61))
        pool = ctx.curated_dataset  # reuse context pairs as the prompt pool
        from repro.pipeline.collect import SelectedPrompt
        from repro.world.prompts import SyntheticPrompt

        items = [
            SelectedPrompt(
                prompt=SyntheticPrompt(
                    uid=p.prompt_uid,
                    text=p.prompt_text,
                    category=p.true_category,
                    needs=p.true_needs,
                    topic="",
                ),
                predicted_category=p.category,
                quality=0.6 + 0.4 * p.label_jaccard,
            )
            for p in pool
        ]

        def run():
            subset = apply_strategy(strategy, items, 120)
            generator = PairGenerator(config=GenerationConfig(curate=True))
            dataset = generator.build_dataset(subset)
            model = PasModel(seed=1).train(dataset)
            test = [
                (p.text, frozenset(p.needs))
                for p in (factory.make_prompt() for _ in range(100))
            ]
            return model.predictor.label_accuracy(test)

        accuracy = run_once(benchmark, run)
        print(f"\nstrategy {strategy.name}: downstream label accuracy {accuracy:.3f}")
        assert accuracy > 0.2


class TestGatewayCache:
    def test_cache_under_heavy_tailed_traffic(self, benchmark, ctx):
        gateway = PasGateway(pas=ctx.pas, config=GatewayConfig(cache_size=256))
        factory = PromptFactory(rng=np.random.default_rng(62))
        unique = [factory.make_prompt().text for _ in range(30)]
        rng = np.random.default_rng(63)
        # Zipf-ish traffic: a few prompts dominate.
        weights = 1.0 / np.arange(1, len(unique) + 1)
        weights /= weights.sum()
        traffic = [unique[i] for i in rng.choice(len(unique), size=200, p=weights)]

        def serve_all():
            for prompt in traffic:
                gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
            return gateway

        served = run_once(benchmark, serve_all)
        print(f"\ncache hit rate over 200 requests / 30 uniques: {served.cache_hit_rate:.2f}")
        assert served.cache_hit_rate > 0.5
        assert served.stats.requests == 200


class TestExtraBaselines:
    def test_cot_and_ape_induction_vs_pas(self, benchmark, ctx):
        suite = build_alpaca_suite(100, seed=64)
        bench = AlpacaEvalBenchmark(suite)
        engine = ctx.engine("gpt-3.5-turbo-1106")
        ape = ApeInduction(target_model="gpt-3.5-turbo-1106", seed=65)

        def run():
            ape.induce()
            return {
                "cot": bench.evaluate(engine, ZeroShotCot()).win_rate,
                "ape-induction": bench.evaluate(engine, ape).win_rate,
                "pas": bench.evaluate(engine, PasApe(ctx.pas)).win_rate,
            }

        scores = run_once(benchmark, run)
        print(f"\nextra baselines on gpt-3.5: {scores}")
        # The paper's claim: learned, prompt-conditional complementation
        # beats fixed or per-category instructions.
        assert scores["pas"] > scores["cot"]
        assert scores["pas"] > scores["ape-induction"]
