"""Offline curation pipeline benchmark: batched runner vs scalar loops.

One gated number:

* ``pipeline_batch_speedup`` — per-prompt cost of the frozen
  :class:`ScalarReferencePipeline` (the pre-batching per-item loops:
  ``embed`` per prompt, the pre-vectorization
  :class:`~test_bench_throughput.ScalarReferenceHnsw` built and queried
  one element at a time, ``score`` / ``predict`` per text) relative to
  :class:`~repro.pipeline.runner.PipelineRunner`, which rides the
  batched stage kernels (``embed_batch``, ``knn_graph``,
  ``score_batch``, ``predict_batch``) *and* pays the write-then-reload
  checkpoint round trip on every stage.  The regression gate
  (``check_bench_regression.py``) fails the build below 1.0: the
  industrial pipeline, checkpointing included, must never be slower
  than the per-item loops it replaced.

Both sides share one pre-fitted classifier (fitting costs more than a
whole collection pass and is identical work for either path, so it would
only dilute the ratio).  A parity assert runs before any timing: the
scalar reference must curate the exact same prompts into the exact same
pairs, or the ratio compares different work.

Results merge into ``BENCH_serving.json`` next to the serving keys:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_pipeline.py -q
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from check_bench_regression import merge_write
from test_bench_throughput import ScalarReferenceHnsw

from repro.classify.model import CategoryClassifier
from repro.embedding.model import EmbeddingModel
from repro.llm.engine import SimulatedLLM
from repro.pipeline.collect import SelectedPrompt
from repro.pipeline.config import PipelineConfig
from repro.pipeline.generate import PairGenerator
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.select import QualityScorer
from repro.utils.timing import speedup, time_pair
from repro.utils.unionfind import UnionFind
from repro.world.prompts import PromptFactory

N_PROMPTS = 140

RESULTS: dict[str, object] = {}


class ScalarReferencePipeline:
    """The pre-batching per-item curation loops, frozen.

    A faithful copy of what collection + generation cost per prompt
    before the batched kernels existed: one ``embed`` call per prompt,
    the pre-vectorization HNSW reference built and queried one element
    at a time, one grader call per survivor, one ``predict`` per text,
    then the per-item Algorithm-1 loop.  Kept here as the stable
    baseline the ``pipeline_batch_speedup`` gate measures against — do
    not "improve" it.
    """

    def __init__(self, config: PipelineConfig, classifier: CategoryClassifier):
        self.config = config
        self.embedder = EmbeddingModel()
        self.grader = SimulatedLLM(config.runner.grader_model)
        self.classifier = classifier

    def run(self, corpus):
        cfg = self.config.collection
        seed = self.config.seed

        # Stage 1: dedup — per-item embed, per-item index add + search.
        vectors = [self.embedder.embed(p.text) for p in corpus]
        index = ScalarReferenceHnsw(dim=vectors[0].shape[0], ef_search=64, seed=seed)
        for i, vector in enumerate(vectors):
            index.add(vector, i)
        uf = UnionFind(len(corpus))
        max_distance = 1.0 - cfg.dedup_threshold
        for i, vector in enumerate(vectors):
            hits = index.search(vector, cfg.dedup_neighbors + 1, ef=64)
            for other, dist in hits:
                if other != i and dist <= max_distance:
                    uf.union(i, other)
        kept: list[int] = []
        for group in sorted(uf.groups().values(), key=lambda g: g[0]):
            group.sort()
            kept.extend(group[: cfg.keep_per_group])
        survivors = [corpus[i] for i in sorted(kept)]

        # Stage 2: quality — one grader call per survivor.
        texts = [p.text for p in survivors]
        scorer = QualityScorer(grader=self.grader).fit(texts)
        graded = [
            (p, score)
            for p, score in ((p, scorer.score(p.text)) for p in survivors)
            if score >= cfg.quality_threshold
        ]

        # Stage 3: classify — one predict call per text.
        selected = [
            SelectedPrompt(
                prompt=p,
                predicted_category=self.classifier.predict(p.text),
                quality=score,
            )
            for p, score in graded
        ]

        # Stage 4: generate — the per-item Algorithm-1 loop (unchanged).
        generator = PairGenerator(config=self.config.generation)
        return selected, generator.build_dataset(selected)


@pytest.fixture(scope="module")
def corpus():
    factory = PromptFactory(rng=np.random.default_rng(5))
    return [factory.make_prompt() for _ in range(N_PROMPTS)]


@pytest.fixture(scope="module")
def classifier():
    """One pre-fitted classifier shared by both variants (fit excluded
    from timing; the runner's default would fit an identical one)."""
    return CategoryClassifier().fit_synthetic(seed=17)


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Deep-merge this module's keys into BENCH_serving.json (never clobber)."""
    yield
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", RESULTS)


def test_pipeline_batch_speedup(corpus, classifier):
    config = PipelineConfig()

    def run_scalar():
        return ScalarReferencePipeline(config, classifier).run(corpus)

    def run_batched():
        runner = PipelineRunner(config, checkpoint_dir=None, classifier=classifier)
        return runner.run(corpus)

    # Parity before timing: the reference graph draws identical levels
    # (same RNG stream) and its distances agree with the vectorized
    # kernel's, so the frozen loops must curate the exact same prompts
    # into the exact same pairs.
    selected, dataset = run_scalar()
    result = run_batched()
    assert selected == result.collection.selected
    assert dataset.pairs == result.dataset.pairs
    assert dataset.n_dropped == result.dataset.n_dropped

    scalar, batched = time_pair(
        run_scalar,
        run_batched,
        labels=("scalar loops", "batched runner"),
        n_items=len(corpus),
        repeats=5,
    )
    ratio = speedup(scalar, batched)  # scalar_per_item / batched_per_item
    RESULTS["pipeline"] = {
        "pipeline_batch_speedup": ratio,
        "scalar_prompts_per_s": scalar.items_per_s,
        "batched_prompts_per_s": batched.items_per_s,
    }
    assert ratio >= 1.0
