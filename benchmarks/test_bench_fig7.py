"""Bench E7 — regenerate Figure 7 (data-efficiency comparison)."""

import pytest
from conftest import run_once

from repro.experiments import fig7


def test_fig7(benchmark, ctx):
    result = run_once(benchmark, fig7.run, ctx)
    print()
    print(fig7.render(result))
    # These are exact reproductions (dataset sizes, not measurements).
    assert result.paper_sizes == {"pas": 9000, "bpo": 14000, "ppo": 77000, "dpo": 170000}
    assert result.efficiency["bpo"] == pytest.approx(1.56, abs=0.01)
    assert result.efficiency["ppo"] == pytest.approx(8.56, abs=0.01)
    assert result.efficiency["dpo"] == pytest.approx(18.89, abs=0.01)
    # The demo corpus builders must actually run.
    assert all(result.demo_built[m] > 0 for m in ("pas", "bpo", "ppo", "dpo"))
