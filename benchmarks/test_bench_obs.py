"""Observability overhead benchmarks for the serving gateway.

Two numbers, both over the same Zipf-distributed traffic the gateway
throughput bench uses:

* ``obs_off_overhead`` — per-request cost of the *instrumented* gateway
  with observability left at the NULL_OBS default, relative to
  :class:`ReferenceGateway`, a frozen copy of the pre-instrumentation
  scalar ``ask()`` happy path.  The regression gate
  (``check_bench_regression.py``) fails the build when this exceeds
  1.05x: observability that is off must be within noise of free.
* ``tracing_on_cost_ratio`` — per-request cost with a fully live
  :class:`~repro.obs.Observability` bundle (tracer + registry + events)
  relative to the same gateway with observability off.  Not gated — a
  live tracer is allowed to cost something — but recorded so the price
  is visible in the perf trajectory.

Results merge into ``BENCH_serving.json`` next to the throughput keys:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py -q
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write

from repro import build_default_dataset
from repro.core.pas import PasModel
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM
from repro.llm.types import build_messages
from repro.obs import Observability
from repro.resilience import CircuitBreaker
from repro.serve.cache import LruCache
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.timing import speedup, time_pair
from repro.world.prompts import PromptFactory

N_REQUESTS = 240
N_UNIQUE_PROMPTS = 40

RESULTS: dict[str, object] = {}


class ReferenceGateway:
    """The pre-observability scalar ``ask()`` happy path, frozen.

    A faithful copy of what the gateway did per request before the obs
    subsystem existed: clock tick, breaker check, complement-cache get,
    augment on miss (with the embedding memo tier), completion, flat
    dict stats.  Kept here as the stable baseline the
    ``obs_off_overhead`` gate measures against — do not "improve" it.
    """

    def __init__(self, pas, config: GatewayConfig):
        self.pas = pas
        self.config = config
        self._clock = 0
        self._clients: dict[str, ChatClient] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._complement_cache: LruCache[str, str] = LruCache(capacity=config.cache_size)
        self._embed_cache = (
            LruCache(capacity=config.embed_cache_size)
            if config.embed_cache_size > 0
            else None
        )
        self.stats = {
            "requests": 0,
            "augmented": 0,
            "cache_hits": 0,
            "prompt_tokens": 0,
            "completion_tokens": 0,
        }

    def _client_for(self, model: str) -> ChatClient:
        if model not in self._clients:
            self._clients[model] = ChatClient(
                engine=SimulatedLLM(model, seed=self.config.seed),
                failure_rate=self.config.failure_rate,
                max_retries=self.config.max_retries,
                clock=lambda: self._clock,
            )
        return self._clients[model]

    def _breaker_for(self, model: str) -> CircuitBreaker:
        if model not in self._breakers:
            self._breakers[model] = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                recovery_ticks=self.config.breaker_recovery_ticks,
            )
        return self._breakers[model]

    def ask(self, request: ServeRequest) -> ServeResponse:
        self._clock += 1
        client = self._client_for(request.model)
        breaker = self._breaker_for(request.model)
        breaker.allow(self._clock)
        cached = self._complement_cache.get(request.prompt)
        if cached is not None:
            complement, was_cached = cached, True
        else:
            complement = self.pas.augment(request.prompt, embed_cache=self._embed_cache)
            self._complement_cache.put(request.prompt, complement)
            was_cached = False
        completion = client.complete(build_messages(request.prompt, complement))
        breaker.record_success(self._clock)
        stats = self.stats
        stats["requests"] += 1
        if complement:
            stats["augmented"] += 1
        if was_cached:
            stats["cache_hits"] += 1
        stats["prompt_tokens"] += completion.prompt_tokens
        stats["completion_tokens"] += completion.completion_tokens
        return ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response=completion.content,
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=completion.prompt_tokens,
            completion_tokens=completion.completion_tokens,
            status="ok",
            error=None,
            attempts=completion.retries + 1,
        )


@pytest.fixture(scope="module")
def trained_pas():
    dataset = build_default_dataset(n_prompts=150, seed=3, curate=True)
    return PasModel(base_model="qwen2-7b-chat", seed=3).train(dataset)


@pytest.fixture(scope="module")
def zipf_requests(trained_pas):
    """The gateway bench's Zipf traffic, as ServeRequests."""
    factory = PromptFactory(rng=np.random.default_rng(2))
    pool = [factory.make_prompt().text for _ in range(N_UNIQUE_PROMPTS)]
    weights = np.array([1.0 / rank for rank in range(1, N_UNIQUE_PROMPTS + 1)])
    rng = np.random.default_rng(3)
    picks = rng.choice(N_UNIQUE_PROMPTS, size=N_REQUESTS, p=weights / weights.sum())
    return [ServeRequest(prompt=pool[i], model="gpt-4-0613") for i in picks]


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Deep-merge this module's keys into BENCH_serving.json (never clobber)."""
    yield
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", RESULTS)


def test_obs_off_overhead(trained_pas, zipf_requests):
    config = GatewayConfig(cache_size=1024)

    def serve_reference():
        gateway = ReferenceGateway(trained_pas, config)
        return [gateway.ask(r) for r in zipf_requests]

    def serve_instrumented_off():
        gateway = PasGateway(pas=trained_pas, config=config)  # NULL_OBS default
        return [gateway.ask(r) for r in zipf_requests]

    # The frozen baseline must serve the identical responses, or the ratio
    # compares different work.
    assert serve_reference() == serve_instrumented_off()

    reference, off = time_pair(
        serve_reference,
        serve_instrumented_off,
        labels=("reference gateway", "instrumented gateway, obs off"),
        n_items=len(zipf_requests),
        repeats=5,
    )
    overhead = speedup(off, reference)  # off_per_item / reference_per_item
    RESULTS["obs"] = {
        **RESULTS.get("obs", {}),
        "obs_off_overhead": overhead,
        "reference_requests_per_s": reference.items_per_s,
        "off_requests_per_s": off.items_per_s,
    }
    assert overhead < 1.05


def test_tracing_on_cost(trained_pas, zipf_requests):
    config = GatewayConfig(cache_size=1024)

    def serve_off():
        gateway = PasGateway(pas=trained_pas, config=config)
        return [gateway.ask(r) for r in zipf_requests]

    def serve_on():
        gateway = PasGateway(
            pas=trained_pas,
            config=config,
            obs=Observability.enabled(trace_capacity=N_REQUESTS),
        )
        return [gateway.ask(r) for r in zipf_requests]

    assert serve_on() == serve_off()  # tracing never touches results

    off, on = time_pair(
        serve_off,
        serve_on,
        labels=("tracing off", "tracing on"),
        n_items=len(zipf_requests),
        repeats=5,
    )
    ratio = speedup(on, off)  # on_per_item / off_per_item
    RESULTS["obs"] = {
        **RESULTS.get("obs", {}),
        "tracing_on_cost_ratio": ratio,
        "on_requests_per_s": on.items_per_s,
    }
    # Sanity only (not the gate): a live tracer on this workload should
    # cost well under 2x end to end — completion dominates.
    assert ratio < 2.0
