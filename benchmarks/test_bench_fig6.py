"""Bench E6 — regenerate Figure 6 (dataset category distribution)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6(benchmark, ctx):
    result = run_once(benchmark, fig6.run, ctx)
    print()
    print(fig6.render(result))
    # Paper shape: 14 categories, Q&A/coding among the largest.
    assert result.n_categories == 14
    top_three = list(result.counts)[:3]
    assert {"question_answering", "coding"} & set(top_three)
