"""The 100k-vector ANN bench tier: where sharded search has to prove itself.

The quick tier (``test_bench_throughput.py``, 400 vectors) hides every
real effect of corpus size: shards that small are answered by exact scans,
and beam costs are dominated by fixed per-query overhead.  This module
builds a 100_000-vector clustered corpus — the regime HNSW's diversity
heuristic is designed for, and the regime the PAS dedup/retrieval layer
actually runs in — and measures, at an honest 100k-index/1k-query shape:

* monolithic vs sharded build throughput (recorded as a plain ratio:
  the quick tier's 2x build win comes from graph-size scaling, which
  thins to a log factor at 100k and is eaten by GIL contention between
  the four Python-heavy shard builds on a single-core host),
* monolithic beam vs sharded *routed* search throughput (``speedup`` —
  gated >= 1.0 by ``check_bench_regression.py``, same as the quick
  tier), plus the split-ef beam fan-out as an informational mode (it
  pays a fixed per-shard descent cost per query, so on one core it can
  never beat one monolithic beam — the routed scan exists precisely
  because of that measurement),
* recall vs the exact :class:`BruteForceIndex` ground truth for every
  path (at this scale all of them are approximate, so overlap between
  them is no longer 1.0 by construction — recall against ground truth
  is the honest quality metric, and the sharded path must not trade
  quality for its speedup),
* the int8-quantised sharded path, forced onto the beam (the routed
  scan re-ranks on exact float rows, so only the beam actually
  exercises the int8 codes): recall against the float beam at matched
  ef, and bytes per vector.

Slow (minutes of index construction): only runs with
``PAS_BENCH_SCALE=large`` in the environment, which CI's dedicated bench
job sets::

    PAS_BENCH_SCALE=large PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_ann_scale.py -q

Results deep-merge into ``BENCH_serving.json`` under ``ann_scale_100k``
(and ``scale.large``), alongside — never clobbering — the quick tier.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from check_bench_regression import merge_write
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.utils.timing import speedup, time_pair

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("PAS_BENCH_SCALE", "").lower() != "large",
        reason="100k tier only runs with PAS_BENCH_SCALE=large",
    ),
]

N_INDEX = 100_000
N_QUERIES = 1_000
DIM = 64
K = 10
N_SHARDS = 4
N_CLUSTERS = 2_000
# Wide enough that clusters genuinely overlap: at 0.05 the corpus is
# 2 000 near-point blobs — the monolithic beam early-terminates at low
# recall and the int8 quantisation step (max|v|/127) rivals the
# intra-cluster spread, so every number degenerates.  0.5 keeps the
# clustered structure the retrieval layer sees without the degeneracy.
CLUSTER_SPREAD = 0.5
# Smaller graph parameters than the quick tier's defaults: at 100k nodes,
# m=16/efc=200 construction costs tens of minutes for recall this
# workload does not need.  These are the knobs a deployment at this scale
# would actually run with.
M = 8
EF_CONSTRUCTION = 48
EF_SEARCH = 50

RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def corpus():
    """Clustered synthetic corpus: N_CLUSTERS centers, Gaussian spread."""
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(N_CLUSTERS, DIM))
    assign = np.arange(N_INDEX) % N_CLUSTERS
    return centers[assign] + CLUSTER_SPREAD * rng.normal(size=(N_INDEX, DIM))


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(1)
    centers = np.random.default_rng(0).normal(size=(N_CLUSTERS, DIM))
    picks = rng.integers(0, N_CLUSTERS, size=N_QUERIES)
    return centers[picks] + CLUSTER_SPREAD * rng.normal(size=(N_QUERIES, DIM))


@pytest.fixture(scope="module")
def exact_topk(corpus, queries):
    """Ground-truth key sets from the exact reference index."""
    brute = BruteForceIndex(dim=DIM)
    brute.add_batch(corpus, range(N_INDEX))
    return [
        {key for key, _ in hits} for hits in brute.search_batch(queries, K)
    ]


def _mean_recall(hit_lists, exact_topk):
    return float(
        np.mean(
            [
                len({key for key, _ in hits} & exact) / K
                for hits, exact in zip(hit_lists, exact_topk)
            ]
        )
    )


@pytest.fixture(scope="module")
def built(corpus):
    """Single + sharded indexes, built once, with wall-clock build times.

    Construction at this scale runs minutes per index, so each build runs
    exactly once (no repeats) and every test shares the result.
    """
    start = time.perf_counter()
    single = HnswIndex(
        dim=DIM, m=M, ef_construction=EF_CONSTRUCTION, ef_search=EF_SEARCH, seed=0
    )
    single.add_batch(corpus, range(N_INDEX))
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = ShardedHnswIndex(
        dim=DIM,
        n_shards=N_SHARDS,
        m=M,
        ef_construction=EF_CONSTRUCTION,
        ef_search=EF_SEARCH,
        seed=0,
    )
    sharded.add_batch(corpus, range(N_INDEX))
    sharded_s = time.perf_counter() - start
    return single, sharded, single_s, sharded_s


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Deep-merge this tier's keys into BENCH_serving.json."""
    yield
    payload = {
        "scale": {
            "large": {
                "n_index": N_INDEX,
                "n_queries": N_QUERIES,
                "k": K,
                "dim": DIM,
                "n_clusters": N_CLUSTERS,
                "m": M,
                "ef_construction": EF_CONSTRUCTION,
                "ef_search": EF_SEARCH,
            },
        },
        "ann_scale_100k": RESULTS,
    }
    merge_write(Path(__file__).resolve().parents[1] / "BENCH_serving.json", payload)


def test_build_throughput(built):
    single, sharded, single_s, sharded_s = built
    assert len(single) == N_INDEX and len(sharded) == N_INDEX
    RESULTS["build"] = {
        "n_shards": N_SHARDS,
        "single_s": single_s,
        "sharded_s": sharded_s,
        "single_vectors_per_s": N_INDEX / single_s,
        "sharded_vectors_per_s": N_INDEX / sharded_s,
        # Deliberately NOT named `speedup` (ungated): building K graphs of
        # n/K nodes saves only a log factor at this scale, and on a
        # single-core host the four concurrent Python-heavy builds pay GIL
        # contention on top — measured ~0.93x here.  The build win the
        # quick tier shows (2.1x at 400 vectors) is graph-size scaling,
        # and the search speedup below is what this tier gates.
        "throughput_ratio_vs_single": single_s / sharded_s,
    }
    # Sanity bound only: sharding must not make builds pathologically slow.
    assert single_s / sharded_s > 0.7


def test_search_speedup_and_recall(built, queries, exact_topk):
    single, sharded, _, _ = built
    single_res, sharded_res = time_pair(
        lambda: single.search_batch(queries, K),
        lambda: sharded.search_batch(queries, K),
        labels=("monolithic search_batch (100k)", "sharded search_batch (100k)"),
        n_items=N_QUERIES,
        repeats=3,
    )
    single_hits = single.search_batch(queries, K)
    sharded_hits = sharded.search_batch(queries, K)
    single_recall = _mean_recall(single_hits, exact_topk)
    sharded_recall = _mean_recall(sharded_hits, exact_topk)
    overlap = float(
        np.mean(
            [
                len({k for k, _ in a} & {k for k, _ in b}) / K
                for a, b in zip(single_hits, sharded_hits)
            ]
        )
    )
    RESULTS["search"] = {
        "mode": sharded.large_shard_search,
        "route_probes_per_shard": sharded._probe_width(
            sharded._shards[0]._router_centroid_ids.shape[0]
        ),
        "single_queries_per_s": single_res.items_per_s,
        "sharded_queries_per_s": sharded_res.items_per_s,
        "speedup": speedup(single_res, sharded_res),
        "single_recall_vs_exact": single_recall,
        "sharded_recall_vs_exact": sharded_recall,
        # Two independent approximate searches at 100k: their mutual
        # overlap is informational — recall vs exact is the quality gate.
        "overlap_vs_single_shard": overlap,
    }
    assert speedup(single_res, sharded_res) > 1.0
    # The routed scan must not buy its speedup with quality.
    assert sharded_recall >= 0.9
    assert sharded_recall >= single_recall - 0.05


def test_search_beam_mode_informational(built, queries, exact_topk):
    """The split-ef beam fan-out, recorded but deliberately not gated.

    Each per-shard beam pays a fixed greedy-descent cost per query
    (~130 us measured), so four of them exceed one monolithic search on a
    single core regardless of ef splitting.  The ratio is recorded so the
    regression history shows *why* routed is the default — the key is not
    named ``*speedup`` on purpose, which keeps it out of the >= 1.0 gate.
    """
    single, sharded, _, _ = built
    sharded.large_shard_search = "beam"
    try:
        single_res, beam_res = time_pair(
            lambda: single.search_batch(queries, K),
            lambda: sharded.search_batch(queries, K),
            labels=("monolithic search_batch (100k)", "sharded beam (100k)"),
            n_items=N_QUERIES,
            repeats=1,
        )
        beam_recall = _mean_recall(sharded.search_batch(queries, K), exact_topk)
    finally:
        sharded.large_shard_search = "routed"
    RESULTS["search_beam"] = {
        "queries_per_s": beam_res.items_per_s,
        "throughput_ratio_vs_single": beam_res.items_per_s / single_res.items_per_s,
        "recall_vs_exact": beam_recall,
    }
    assert beam_recall >= 0.8


def test_int8_sharded_path(built, corpus, queries, exact_topk):
    _, sharded_float, _, _ = built
    start = time.perf_counter()
    quantized = ShardedHnswIndex(
        dim=DIM,
        n_shards=N_SHARDS,
        m=M,
        ef_construction=EF_CONSTRUCTION,
        ef_search=EF_SEARCH,
        seed=0,
        quantization="int8",
    )
    quantized.add_batch(corpus, range(N_INDEX))
    build_s = time.perf_counter() - start

    # The routed scan re-ranks on exact float rows and never touches the
    # int8 codes, so the quantisation gate forces the beam on both sides
    # at a matched ef: the delta is then purely quantisation loss.
    quantized.large_shard_search = "beam"
    sharded_float.large_shard_search = "beam"
    ef = 2 * EF_SEARCH
    try:
        start = time.perf_counter()
        hits = quantized.search_batch(queries, K, ef=ef)
        search_s = time.perf_counter() - start
        recall = _mean_recall(hits, exact_topk)
        float_recall = _mean_recall(
            sharded_float.search_batch(queries, K, ef=ef), exact_topk
        )
    finally:
        quantized.large_shard_search = "routed"
        sharded_float.large_shard_search = "routed"
    RESULTS["int8"] = {
        "build_s": build_s,
        "beam_ef": ef,
        "beam_queries_per_s": N_QUERIES / search_s,
        "recall_vs_exact": recall,
        "float_recall_vs_exact": float_recall,
        # One int8 code row + one float64 scale per vector, vs float64 rows
        # (the float copy is also kept for exact re-ranking; this ratio is
        # the traversal working set, which is what beam search touches).
        "traversal_bytes_per_vector_ratio": (DIM + 8) / (DIM * 8),
    }
    # The ISSUE gate: int8 recall >= 0.95 vs exact, and exact re-ranking
    # keeps it within a whisker of the float beam at the same ef.
    assert recall >= 0.95
    assert recall >= float_recall - 0.02
