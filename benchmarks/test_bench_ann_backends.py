"""Bench — ANN backend comparison: HNSW vs IVF-flat vs exact scan.

The collection pipeline's dedup stage can run on either approximate index;
this bench measures the recall/latency trade-off that justifies the HNSW
default (the paper's choice) on clustered prompt embeddings.
"""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.ivf import IvfFlatIndex
from repro.embedding.model import EmbeddingModel
from repro.world.prompts import CorpusConfig, PromptFactory


@pytest.fixture(scope="module")
def corpus_embeddings():
    factory = PromptFactory(rng=np.random.default_rng(80))
    corpus = factory.make_corpus(CorpusConfig(n_prompts=500))
    return EmbeddingModel().embed_batch([p.text for p in corpus])


@pytest.fixture(scope="module")
def exact(corpus_embeddings):
    index = BruteForceIndex(dim=corpus_embeddings.shape[1])
    for i, vec in enumerate(corpus_embeddings):
        index.add(vec, key=i)
    return index


def _recall(index, corpus_embeddings, exact, queries, k=10, **search_kwargs):
    total = 0.0
    for qi in queries:
        reference = {key for key, _ in exact.search(corpus_embeddings[qi], k)}
        got = {key for key, _ in index.search(corpus_embeddings[qi], k, **search_kwargs)}
        total += len(got & reference) / k
    return total / len(queries)


def test_hnsw_backend(benchmark, corpus_embeddings, exact):
    index = HnswIndex(dim=corpus_embeddings.shape[1], ef_search=48, seed=0)
    for i, vec in enumerate(corpus_embeddings):
        index.add(vec, key=i)
    queries = list(range(0, 500, 10))

    def search_all():
        return [index.search(corpus_embeddings[q], 10) for q in queries]

    benchmark(search_all)
    recall = _recall(index, corpus_embeddings, exact, queries)
    print(f"\nHNSW recall@10 on prompt embeddings: {recall:.3f}")
    assert recall > 0.9


def test_ivf_backend(benchmark, corpus_embeddings, exact):
    index = IvfFlatIndex(dim=corpus_embeddings.shape[1], n_lists=24, n_probe=6, seed=0)
    index.train(corpus_embeddings)
    for i, vec in enumerate(corpus_embeddings):
        index.add(vec, key=i)
    queries = list(range(0, 500, 10))

    def search_all():
        return [index.search(corpus_embeddings[q], 10) for q in queries]

    benchmark(search_all)
    recall = _recall(index, corpus_embeddings, exact, queries)
    print(f"\nIVF-flat recall@10 on prompt embeddings: {recall:.3f}")
    assert recall > 0.6


def test_exact_backend(benchmark, corpus_embeddings, exact):
    queries = list(range(0, 500, 10))

    def search_all():
        return [exact.search(corpus_embeddings[q], 10) for q in queries]

    results = benchmark(search_all)
    assert len(results) == len(queries)
