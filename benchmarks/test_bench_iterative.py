"""Bench — iterative-PAS rounds ablation (extension beyond the paper).

Measures the marginal oracle-quality value of response-feedback rounds on
a weak target model, where visible gaps are most common.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core.iterative import IterativePas
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response


@pytest.mark.parametrize("rounds", [1, 2, 3])
def test_iterative_rounds(benchmark, ctx, rounds):
    iterative = IterativePas(pas=ctx.pas, max_rounds=rounds)
    target = SimulatedLLM("gpt-3.5-turbo-1106")
    factory = PromptFactory(rng=np.random.default_rng(70))
    prompts = [factory.make_prompt(cue_rate=1.0) for _ in range(60)]

    def run():
        scores = [
            assess_response(p, iterative.ask(target, p.text).final_response).score
            for p in prompts
        ]
        return float(np.mean(scores))

    mean_quality = run_once(benchmark, run)
    print(f"\niterative rounds={rounds}: mean oracle quality {mean_quality:.3f}")
    assert mean_quality > 2.0
