"""LLM-as-judge evaluation benchmarks (paper §4.1)."""

from repro.judge.alpaca_eval import AlpacaEvalBenchmark, AlpacaEvalResult
from repro.judge.arena_hard import ArenaHardBenchmark, ArenaHardResult
from repro.judge.judge import JudgeConfig, LlmJudge, PairwiseVerdict
from repro.judge.rating import RatingEntry, bradley_terry, leaderboard
from repro.judge.suites import BenchmarkSuite, build_alpaca_suite, build_arena_hard_suite, build_human_eval_suite

__all__ = [
    "AlpacaEvalBenchmark",
    "AlpacaEvalResult",
    "ArenaHardBenchmark",
    "ArenaHardResult",
    "JudgeConfig",
    "LlmJudge",
    "PairwiseVerdict",
    "RatingEntry",
    "bradley_terry",
    "leaderboard",
    "BenchmarkSuite",
    "build_alpaca_suite",
    "build_arena_hard_suite",
    "build_human_eval_suite",
]
