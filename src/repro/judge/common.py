"""Shared evaluation plumbing for the benchmark harnesses."""

from __future__ import annotations

from repro.baselines.base import ApeMethod
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import SyntheticPrompt

__all__ = ["respond_with_method"]


def respond_with_method(
    engine: SimulatedLLM, method: ApeMethod, prompt: SyntheticPrompt
) -> str:
    """Answer a benchmark prompt through an APE method.

    The method decides whether the engine sees the original prompt plus a
    supplement (complement-style) or a rewritten prompt (rewrite-style).
    """
    new_prompt, supplement = method.transform(prompt.text)
    return engine.respond(new_prompt, supplement=supplement)
