"""Benchmark prompt suites.

* **Arena-Hard** — "complex and challenging scenarios ... advanced
  reasoning" (§4.1): every prompt is *hard* (multiple needs, always
  including a trap/constraint/edge-case demand).
* **AlpacaEval 2.0** — "a wide range of standard tasks": the general
  category mix of the synthetic universe.
* **Human-eval** — the eight scenario categories of Table 4 / Figure 1(b),
  mapped onto the synthetic categories that carry the same kind of load.

Suites are frozen artifacts: built once from a seed, then reused across all
method arms so comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.prompts import PromptFactory, SyntheticPrompt

__all__ = [
    "BenchmarkSuite",
    "build_arena_hard_suite",
    "build_alpaca_suite",
    "build_human_eval_suite",
    "HUMAN_EVAL_SCENARIOS",
]


@dataclass(frozen=True)
class BenchmarkSuite:
    """A named, frozen list of evaluation prompts."""

    name: str
    prompts: tuple[SyntheticPrompt, ...]

    def __len__(self) -> int:
        return len(self.prompts)

    def __iter__(self):
        return iter(self.prompts)


def build_arena_hard_suite(n_prompts: int = 150, seed: int = 500) -> BenchmarkSuite:
    """Hard multi-requirement prompts (the Arena-Hard surrogate)."""
    factory = PromptFactory(rng=np.random.default_rng(seed))
    prompts = tuple(factory.make_prompt(hard=True) for _ in range(n_prompts))
    return BenchmarkSuite(name="arena-hard", prompts=prompts)


def build_alpaca_suite(n_prompts: int = 200, seed: int = 600) -> BenchmarkSuite:
    """General-mix prompts (the AlpacaEval 2.0 surrogate)."""
    factory = PromptFactory(rng=np.random.default_rng(seed))
    prompts = tuple(factory.make_prompt() for _ in range(n_prompts))
    return BenchmarkSuite(name="alpaca-eval-2.0", prompts=prompts)


#: Table 4's eight human-evaluation scenarios → synthetic categories that
#: exercise the same competence.
HUMAN_EVAL_SCENARIOS: dict[str, str] = {
    "Analysis and Judgment": "analysis",
    "Subjective Advice": "brainstorming",
    "Subjective Recommendation": "recommendation",
    "Common Sense": "reasoning",
    "Event Query": "question_answering",
    "Entity Query": "extraction",
    "Industry Knowledge": "knowledge",
    "Academic Knowledge": "summarization",
}


def build_human_eval_suite(
    per_scenario: int = 30, seed: int = 700
) -> dict[str, BenchmarkSuite]:
    """One small suite per Table-4 scenario."""
    factory = PromptFactory(rng=np.random.default_rng(seed))
    suites: dict[str, BenchmarkSuite] = {}
    for scenario, category in HUMAN_EVAL_SCENARIOS.items():
        prompts = tuple(
            factory.make_prompt(category=category) for _ in range(per_scenario)
        )
        suites[scenario] = BenchmarkSuite(name=scenario, prompts=prompts)
    return suites
