"""Arena-Hard surrogate benchmark.

Arena-Hard judges a candidate model pairwise against a *fixed reference
model* (GPT-4-0314 in the original) on hard prompts and reports the
candidate's win rate.  The reproduction keeps the structure: reference
responses are generated once per suite by the reference engine with no
augmentation; every method arm is then judged against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import ApeMethod
from repro.judge.common import respond_with_method
from repro.judge.judge import LlmJudge
from repro.judge.suites import BenchmarkSuite
from repro.llm.engine import SimulatedLLM
from repro.utils.stats import win_rate

__all__ = ["ArenaHardResult", "ArenaHardBenchmark"]


@dataclass(frozen=True)
class ArenaHardResult:
    """Win rate (%) of one (model, method) arm against the reference."""

    model: str
    method: str
    score: float
    n_prompts: int
    outcomes: tuple[float, ...]


class ArenaHardBenchmark:
    """Pairwise-vs-reference evaluation on the hard suite."""

    def __init__(
        self,
        suite: BenchmarkSuite,
        judge: LlmJudge | None = None,
        reference_model: str = "gpt-4-0314-reference",
        seed: int = 0,
    ):
        self.suite = suite
        self.judge = judge or LlmJudge()
        self.reference = SimulatedLLM(reference_model, seed=seed)
        self._reference_responses = [
            self.reference.respond(p.text) for p in suite
        ]

    def evaluate(self, engine: SimulatedLLM, method: ApeMethod) -> ArenaHardResult:
        """Score one (target model, APE method) arm."""
        outcomes = []
        for prompt, reference_response in zip(self.suite, self._reference_responses):
            candidate = respond_with_method(engine, method, prompt)
            verdict = self.judge.pairwise(prompt, candidate, reference_response)
            outcomes.append(verdict.outcome)
        return ArenaHardResult(
            model=engine.name,
            method=method.name,
            score=win_rate(outcomes),
            n_prompts=len(outcomes),
            outcomes=tuple(outcomes),
        )
