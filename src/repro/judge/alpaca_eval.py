"""AlpacaEval 2.0 surrogate benchmark (raw and length-controlled).

AlpacaEval 2.0 judges candidates pairwise against GPT-4-1106-preview
references with a GPT-4 judge, reporting (a) the raw win rate — which
inherits the judge's verbosity bias — and (b) the length-controlled (LC)
win rate, where a logistic regression on the length difference removes the
bias.  Both numbers are computed here from the same judgements, so the
raw-vs-LC gap in Tables 1/2/5 is reproduced by construction of the judge,
not by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import ApeMethod
from repro.judge.common import respond_with_method
from repro.judge.judge import LlmJudge
from repro.judge.suites import BenchmarkSuite
from repro.llm.engine import SimulatedLLM
from repro.utils.stats import length_controlled_win_rate, win_rate

__all__ = ["AlpacaEvalResult", "AlpacaEvalBenchmark"]


@dataclass(frozen=True)
class AlpacaEvalResult:
    """Raw and LC win rates (%) of one (model, method) arm."""

    model: str
    method: str
    win_rate: float
    lc_win_rate: float
    n_prompts: int


class AlpacaEvalBenchmark:
    """Pairwise-vs-reference evaluation on the general suite."""

    def __init__(
        self,
        suite: BenchmarkSuite,
        judge: LlmJudge | None = None,
        reference_model: str = "gpt-4-1106-preview",
        seed: int = 0,
    ):
        self.suite = suite
        self.judge = judge or LlmJudge()
        self.reference = SimulatedLLM(reference_model, seed=seed)
        self._reference_responses = [
            self.reference.respond(p.text) for p in suite
        ]

    def evaluate(self, engine: SimulatedLLM, method: ApeMethod) -> AlpacaEvalResult:
        """Score one (target model, APE method) arm."""
        outcomes = []
        deltas = []
        for prompt, reference_response in zip(self.suite, self._reference_responses):
            candidate = respond_with_method(engine, method, prompt)
            verdict = self.judge.pairwise(prompt, candidate, reference_response)
            outcomes.append(verdict.outcome)
            deltas.append(verdict.length_log_ratio)
        return AlpacaEvalResult(
            model=engine.name,
            method=method.name,
            win_rate=win_rate(outcomes),
            lc_win_rate=length_controlled_win_rate(outcomes, deltas),
            n_prompts=len(outcomes),
        )
