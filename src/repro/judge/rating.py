"""Bradley–Terry ratings over pairwise judgements (Arena-style leaderboard).

Chatbot-Arena-family benchmarks aggregate pairwise verdicts into a rating
per model via the Bradley–Terry model: each player ``i`` has strength
``θ_i`` and ``P(i beats j) = σ(θ_i − θ_j)``.  The minorize-maximize (MM)
fixed point of Hunter (2004) estimates strengths from a win matrix; ties
are split half-half, matching how the win-rate accounting treats them.

Ratings are reported on the familiar Elo-like scale
(``1000 + 400·log10`` odds), anchored to a zero-mean log-strength.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RatingEntry", "bradley_terry", "leaderboard"]

_ELO_BASE = 1000.0
_ELO_SCALE = 400.0


@dataclass(frozen=True)
class RatingEntry:
    """One leaderboard row."""

    name: str
    rating: float
    n_comparisons: int


def bradley_terry(
    win_matrix: np.ndarray,
    max_iterations: int = 500,
    tol: float = 1e-10,
) -> np.ndarray:
    """MM estimate of Bradley–Terry strengths from a win-count matrix.

    ``win_matrix[i, j]`` = (possibly fractional) wins of ``i`` over ``j``.
    Returns log-strengths normalised to zero mean.  Players with no
    comparisons keep log-strength 0.
    """
    wins = np.asarray(win_matrix, dtype=np.float64)
    if wins.ndim != 2 or wins.shape[0] != wins.shape[1]:
        raise ValueError(f"win matrix must be square, got {wins.shape}")
    if (wins < 0).any():
        raise ValueError("win counts must be non-negative")
    n = wins.shape[0]
    total_wins = wins.sum(axis=1)
    pair_games = wins + wins.T

    strengths = np.ones(n, dtype=np.float64)
    for _ in range(max_iterations):
        denom = np.zeros(n)
        for i in range(n):
            with np.errstate(divide="ignore", invalid="ignore"):
                contributions = pair_games[i] / (strengths[i] + strengths)
            contributions[i] = 0.0
            contributions[pair_games[i] == 0] = 0.0
            denom[i] = contributions.sum()
        new_strengths = np.where(denom > 0, total_wins / np.maximum(denom, 1e-300), strengths)
        # Players that never won keep an epsilon strength so log() works.
        new_strengths = np.maximum(new_strengths, 1e-12)
        new_strengths /= np.exp(np.mean(np.log(new_strengths)))  # geometric-mean 1
        if np.max(np.abs(new_strengths - strengths)) < tol:
            strengths = new_strengths
            break
        strengths = new_strengths
    return np.log(strengths)


def leaderboard(
    names: list[str],
    outcomes: list[tuple[str, str, float]],
) -> list[RatingEntry]:
    """Build an Elo-scale leaderboard from (player_a, player_b, outcome)
    records, where outcome is 1.0 (a wins) / 0.5 (tie) / 0.0 (b wins) —
    or any fraction in between (both-orders averaging produces quarters).
    """
    index = {name: i for i, name in enumerate(names)}
    unknown = {a for a, _, _ in outcomes} | {b for _, b, _ in outcomes}
    missing = unknown - set(index)
    if missing:
        raise ValueError(f"outcomes reference unknown players: {sorted(missing)}")
    n = len(names)
    wins = np.zeros((n, n), dtype=np.float64)
    games = np.zeros(n, dtype=np.int64)
    for a, b, outcome in outcomes:
        if not 0.0 <= outcome <= 1.0:
            raise ValueError(f"outcome must be in [0, 1], got {outcome}")
        i, j = index[a], index[b]
        wins[i, j] += outcome
        wins[j, i] += 1.0 - outcome
        games[i] += 1
        games[j] += 1

    log_strengths = bradley_terry(wins)
    entries = [
        RatingEntry(
            name=name,
            rating=_ELO_BASE + _ELO_SCALE * log_strengths[index[name]] / math.log(10),
            n_comparisons=int(games[index[name]]),
        )
        for name in names
    ]
    return sorted(entries, key=lambda e: -e.rating)
