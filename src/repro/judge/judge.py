"""The LLM judge.

GPT-4-as-judge has two well-documented properties this simulation keeps:

* **observation noise** — repeated judgements of the same pair disagree;
* **verbosity bias** — longer answers win more often than their true
  quality justifies.  AlpacaEval 2.0's length-controlled variant exists
  precisely to regress this bias out, and the raw-vs-LC gap in Table 1
  only reproduces if the bias is present in the judge.

A pairwise verdict perceives each response's oracle quality through noise
plus ``length_bias * log(len_a / len_b)`` and declares a tie inside a
margin.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import stable_hash
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import assess_response

__all__ = ["JudgeConfig", "PairwiseVerdict", "LlmJudge"]


@dataclass(frozen=True)
class JudgeConfig:
    """Judge behaviour parameters.

    ``position_bias`` models the documented tendency of LLM judges to
    favour the first-presented answer; ``both_orders`` applies the
    benchmarks' standard mitigation (judge A-then-B and B-then-A, average
    the two verdicts), which is what Arena-Hard and AlpacaEval actually do.
    """

    noise_sigma: float = 0.32
    length_bias: float = 0.28
    tie_margin: float = 0.12
    position_bias: float = 0.08
    both_orders: bool = True
    judge_model: str = "gpt-4-judge"
    seed: int = 0

    def validate(self) -> None:
        if (
            self.noise_sigma < 0
            or self.length_bias < 0
            or self.tie_margin < 0
            or self.position_bias < 0
        ):
            raise ValueError(f"judge parameters must be non-negative: {self}")


@dataclass(frozen=True)
class PairwiseVerdict:
    """Outcome of one A-vs-B judgement."""

    outcome: float  # 1.0 A wins, 0.5 tie, 0.0 B wins
    perceived_a: float
    perceived_b: float
    length_log_ratio: float


class LlmJudge:
    """Noisy, length-biased grader over the quality oracle."""

    def __init__(self, config: JudgeConfig | None = None):
        self.config = config or JudgeConfig()
        self.config.validate()

    def _noise(self, *material: str) -> float:
        key = stable_hash("␞".join((self.config.judge_model, str(self.config.seed), *material)))
        return float(np.random.default_rng(key).normal(0.0, self.config.noise_sigma))

    def absolute_score(self, prompt: SyntheticPrompt, response: str) -> float:
        """Single-response 0-5 grade (used by the human-eval panel seeding)."""
        true_score = assess_response(prompt, response).score
        noisy = true_score + self._noise("abs", prompt.text, response)
        return float(min(max(noisy, 0.0), 5.0))

    def absolute_score_batch(
        self, prompt: SyntheticPrompt, responses: Sequence[str]
    ) -> list[float]:
        """Absolute grades for many responses to one prompt.

        One oracle pass and one vectorised clip over the batch; the noise
        draws are the same per-``(prompt, response)`` pure functions the
        scalar path uses, so the result is bit-identical to
        ``[self.absolute_score(prompt, r) for r in responses]`` (the
        parity test pins it).  This is the policy scorer's hot path —
        grading k candidates must not pay k scalar judge calls.
        """
        responses = list(responses)
        if not responses:
            return []
        true_scores = np.array(
            [assess_response(prompt, response).score for response in responses]
        )
        noise = np.array(
            [self._noise("abs", prompt.text, response) for response in responses]
        )
        return [float(x) for x in np.clip(true_scores + noise, 0.0, 5.0)]

    def _one_order(
        self, prompt: SyntheticPrompt, first: str, second: str, tag: str
    ) -> tuple[float, float, float]:
        """Judge one presentation order; returns (outcome-for-first,
        perceived-first, perceived-second)."""
        q_first = assess_response(prompt, first)
        q_second = assess_response(prompt, second)
        log_ratio = math.log(
            max(q_first.response_tokens, 1) / max(q_second.response_tokens, 1)
        )
        perceived_first = (
            q_first.score
            + self._noise(f"{tag}-first", prompt.text, first, second)
            + self.config.position_bias  # first answer reads "fresher"
        )
        perceived_second = q_second.score + self._noise(
            f"{tag}-second", prompt.text, first, second
        )
        delta = (perceived_first - perceived_second) + self.config.length_bias * log_ratio
        if delta > self.config.tie_margin:
            outcome = 1.0
        elif delta < -self.config.tie_margin:
            outcome = 0.0
        else:
            outcome = 0.5
        return outcome, perceived_first, perceived_second

    def pairwise(
        self, prompt: SyntheticPrompt, response_a: str, response_b: str
    ) -> PairwiseVerdict:
        """Judge response A against response B for the same prompt.

        With ``both_orders`` (the benchmarks' default), the pair is judged
        in both presentation orders and the verdicts averaged, cancelling
        the judge's position bias.
        """
        outcome_ab, perceived_a, perceived_b = self._one_order(
            prompt, response_a, response_b, "ab"
        )
        if self.config.both_orders:
            outcome_ba, _, _ = self._one_order(prompt, response_b, response_a, "ba")
            outcome = (outcome_ab + (1.0 - outcome_ba)) / 2.0
        else:
            outcome = outcome_ab
        log_ratio = math.log(
            max(assess_response(prompt, response_a).response_tokens, 1)
            / max(assess_response(prompt, response_b).response_tokens, 1)
        )
        return PairwiseVerdict(
            outcome=outcome,
            perceived_a=perceived_a,
            perceived_b=perceived_b,
            length_log_ratio=log_ratio,
        )
