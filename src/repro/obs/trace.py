"""Per-request traces of nested spans on the serving path's logical clock.

A *span* is one named stage of work (``gateway.ask``, ``augment``,
``complete``, ``retry[2]``, ...) with start/end ticks, a status, and flat
attributes.  A *trace* is the tree of spans produced by one request —
spans are stored flat in creation order with parent ids, root first.  The
:class:`Tracer` is a context-manager factory: the first ``span()`` on an
empty stack opens a new trace, nested calls attach children, and when the
root closes the finished trace lands in a :class:`TraceStore` ring buffer.

Timestamps come from the logical clock bound via :meth:`Tracer.bind_clock`
(the gateway binds its per-request tick counter), never from wall time, so
**identical seeds yield byte-identical trace exports** — ``as_dict()``
emits sorted attributes and no wall-clock fields, and
:meth:`Trace.from_dict` restores the exact span tree, so archived trace
exports reload losslessly.  Wall-clock stage attribution is available
separately: ``Tracer(wall=True)`` mirrors every span into a
:class:`~repro.utils.timing.StageTimer` exposed as ``tracer.timer``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.utils.io import dump_jsonl
from repro.utils.serialize import register
from repro.utils.timing import StageTimer

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "TraceStore",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "render_waterfall",
]


class Span:
    """One timed stage inside a trace."""

    __slots__ = ("name", "span_id", "parent_id", "start_tick", "end_tick", "status", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_tick: int,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_tick = start_tick
        self.end_tick: int | None = None
        self.status = "ok"
        self.attrs: dict[str, object] = {}

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ticks(self) -> int:
        end = self.end_tick if self.end_tick is not None else self.start_tick
        return end - self.start_tick

    def as_dict(self) -> dict[str, object]:
        """JSON-safe view; attributes sorted so exports are byte-stable."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "status": self.status,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"ticks={self.start_tick}..{self.end_tick}, status={self.status!r})"
        )


class Trace:
    """The span tree of one request, flat in creation order (root first)."""

    __slots__ = ("trace_id", "spans", "_next_span_id")

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self._next_span_id = 0

    def new_span(self, name: str, parent_id: int | None, start_tick: int) -> Span:
        span = Span(name, self._next_span_id, parent_id, start_tick)
        self._next_span_id += 1
        self.spans.append(span)
        return span

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def status(self) -> str:
        return self.root.status

    @property
    def start_tick(self) -> int:
        return self.root.start_tick

    @property
    def duration_ticks(self) -> int:
        return self.root.duration_ticks

    def find(self, name: str) -> list[Span]:
        """All spans with this name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def first(self, name: str) -> Span | None:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def depth_of(self, span: Span) -> int:
        """Root distance, walking parent ids (root is depth 0)."""
        depth = 0
        current = span
        while current.parent_id is not None:
            current = self.spans[current.parent_id]
            depth += 1
        return depth

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "status": self.status,
            "start_tick": self.start_tick,
            "duration_ticks": self.duration_ticks,
            "spans": [span.as_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from its :meth:`as_dict` export.

        The span tree is restored exactly — ids, parents, ticks, statuses,
        attributes — so ``from_dict(t.as_dict()).as_dict() == t.as_dict()``
        holds for every exported trace.
        """
        trace = cls(int(data["trace_id"]))
        for entry in data["spans"]:
            parent = entry["parent_id"]
            span = trace.new_span(
                entry["name"],
                None if parent is None else int(parent),
                int(entry["start_tick"]),
            )
            if span.span_id != int(entry["span_id"]):
                raise ValueError(
                    f"span ids must be dense and in creation order; expected "
                    f"{span.span_id}, got {entry['span_id']}"
                )
            span.end_tick = None if entry["end_tick"] is None else int(entry["end_tick"])
            span.status = entry["status"]
            span.attrs.update(entry["attrs"])
        if not trace.spans:
            raise ValueError("a serialized trace must contain at least one span")
        return trace

    def waterfall(self, width: int = 32) -> str:
        return render_waterfall(self, width=width)

    def __repr__(self) -> str:
        return f"Trace(id={self.trace_id}, status={self.status!r}, spans={len(self.spans)})"


register(Trace)


def render_waterfall(trace: Trace, width: int = 32) -> str:
    """ASCII waterfall: one line per span, bar scaled to the trace window.

    Most spans cover zero or one logical tick (the gateway clock ticks
    once per request), so bars get a one-cell minimum — the point of the
    rendering is the nesting and the attributes, not sub-tick precision.
    """
    if not trace.spans:
        return f"trace {trace.trace_id} (empty)"
    start = trace.start_tick
    total = max(1, trace.duration_ticks)
    header = (
        f"trace {trace.trace_id} · status={trace.status} "
        f"· ticks {start}..{start + trace.duration_ticks}"
    )
    lines = [header]
    name_width = max(
        2 * trace.depth_of(span) + len(span.name) for span in trace.spans
    )
    for span in trace.spans:
        indent = "  " * trace.depth_of(span)
        offset = round(width * (span.start_tick - start) / total)
        length = max(1, round(width * span.duration_ticks / total))
        offset = min(offset, width - 1)
        length = min(length, width - offset)
        bar = " " * offset + "#" * length + " " * (width - offset - length)
        label = f"{indent}{span.name}".ljust(name_width)
        attrs = " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs))
        tail = f" status={span.status}" + (f" {attrs}" if attrs else "")
        lines.append(
            f"  {label} |{bar}| {span.start_tick}..{span.end_tick}{tail}"
        )
    return "\n".join(lines)


class TraceStore:
    """Ring buffer of finished traces with small query helpers."""

    __slots__ = ("_traces", "added")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self.added = 0

    def add(self, trace: Trace) -> None:
        self._traces.append(trace)
        self.added += 1

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    @property
    def traces(self) -> list[Trace]:
        return list(self._traces)

    def slowest(self, n: int = 5) -> list[Trace]:
        """Longest traces first; ties broken by trace id (oldest first)."""
        return sorted(self._traces, key=lambda t: (-t.duration_ticks, t.trace_id))[:n]

    def by_status(self, status: str) -> list[Trace]:
        return [t for t in self._traces if t.status == status]

    def by_root(self, name: str) -> list[Trace]:
        return [t for t in self._traces if t.root.name == name]

    def as_dicts(self) -> list[dict[str, object]]:
        return [trace.as_dict() for trace in self._traces]

    def export_jsonl(self, path: str | Path) -> int:
        """Write buffered traces as JSON lines; returns the count."""
        return dump_jsonl(self.as_dicts(), path)

    def clear(self) -> None:
        self._traces.clear()


class _SpanContext:
    """Context manager for one span; created per ``Tracer.span`` call."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self._span.status == "ok":
            self._span.status = "error"
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Builds traces; bound to a logical clock, backed by a store.

    ``wall=True`` additionally mirrors spans into a
    :class:`~repro.utils.timing.StageTimer` (``tracer.timer``) for
    wall-clock stage attribution; the timer never leaks into exports.
    """

    enabled = True

    __slots__ = ("store", "timer", "_clock", "_stack", "_active", "_next_trace_id")

    def __init__(
        self,
        store: TraceStore | None = None,
        clock: Callable[[], int] | None = None,
        wall: bool = False,
    ):
        self.store = store if store is not None else TraceStore()
        self.timer: StageTimer | None = StageTimer() if wall else None
        self._clock: Callable[[], int] = clock if clock is not None else (lambda: 0)
        self._stack: list[Span] = []
        self._active: Trace | None = None
        self._next_trace_id = 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None between traces."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a span: a new trace if the stack is empty, else a child."""
        tick = int(self._clock())
        if not self._stack:
            self._active = Trace(self._next_trace_id)
            self._next_trace_id += 1
            span = self._active.new_span(name, None, tick)
        else:
            assert self._active is not None
            span = self._active.new_span(name, self._stack[-1].span_id, tick)
        if attrs:
            span.attrs.update(attrs)
        self._stack.append(span)
        if self.timer is not None:
            self.timer.push(name)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order (open: "
                f"{[s.name for s in self._stack]})"
            )
        if self.timer is not None:
            self.timer.pop()
        span.end_tick = int(self._clock())
        self._stack.pop()
        if not self._stack:
            assert self._active is not None
            self.store.add(self._active)
            self._active = None


class _NullSpan:
    """Absorbs span mutations; always 'ok', never stores anything."""

    __slots__ = ()

    name = "null"
    span_id = -1
    parent_id = None
    start_tick = 0
    end_tick = 0
    duration_ticks = 0

    @property
    def status(self) -> str:
        return "ok"

    @status.setter
    def status(self, value: str) -> None:
        pass

    @property
    def attrs(self) -> dict[str, object]:
        return {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def as_dict(self) -> dict[str, object]:
        return {}


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Same surface as :class:`Tracer`; every span is discarded."""

    enabled = False
    timer = None

    __slots__ = ("store",)

    def __init__(self):
        self.store = TraceStore(capacity=1)  # always empty; satisfies queries

    def bind_clock(self, clock: Callable[[], int]) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT


NULL_TRACER = NullTracer()
