"""Append-only structured event log for the serving path.

Where spans answer "what happened inside *this* request", the event log
answers "what happened to the *system* over time": fault injections,
breaker transitions, cache evictions, batch drains, failed and degraded
serves.  Producers call :meth:`EventLog.emit` with a kind and flat
attributes; consumers filter with :meth:`EventLog.by_kind` or export the
whole stream as JSON lines via ``utils/io``.

Timestamps are logical ticks from whatever clock the log is bound to
(:meth:`EventLog.bind_clock` — the gateway binds its request clock), so a
chaos run at a fixed seed produces a byte-identical event stream.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.utils.io import dump_jsonl

__all__ = ["Event", "EventLog", "NullEventLog", "NULL_EVENT_LOG"]


class Event:
    """One structured record: monotonic ``seq``, logical ``tick``, ``kind``,
    and a flat attribute dict."""

    __slots__ = ("seq", "tick", "kind", "attrs")

    def __init__(self, seq: int, tick: int, kind: str, attrs: dict[str, object]):
        self.seq = seq
        self.tick = tick
        self.kind = kind
        self.attrs = attrs

    def as_dict(self) -> dict[str, object]:
        """JSON-safe view; attributes sorted for stable exports."""
        return {
            "seq": self.seq,
            "tick": self.tick,
            "kind": self.kind,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:
        return f"Event(seq={self.seq}, tick={self.tick}, kind={self.kind!r}, attrs={self.attrs!r})"


class EventLog:
    """Bounded (or unbounded) append-only event buffer.

    ``capacity=None`` keeps everything; an integer keeps the most recent N
    (a ring, like :class:`~repro.obs.trace.TraceStore`).  ``seq`` keeps
    counting across evictions, so exports reveal when the ring dropped
    early events.
    """

    enabled = True

    __slots__ = ("_events", "_clock", "_seq")

    def __init__(
        self,
        capacity: int | None = None,
        clock: Callable[[], int] | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._clock: Callable[[], int] = clock if clock is not None else (lambda: 0)
        self._seq = 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Stamp future events with ``clock()`` (e.g. the gateway's ticks)."""
        self._clock = clock

    def emit(self, kind: str, **attrs: object) -> Event:
        event = Event(self._seq, int(self._clock()), kind, attrs)
        self._seq += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (>= ``len`` once the ring wraps)."""
        return self._seq

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self._events if e.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Event counts per kind (sorted), handy for quick assertions."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def as_dicts(self) -> list[dict[str, object]]:
        return [event.as_dict() for event in self._events]

    def export_jsonl(self, path: str | Path) -> int:
        """Write the buffered events as JSON lines; returns the count."""
        return dump_jsonl(self.as_dicts(), path)

    def clear(self) -> None:
        self._events.clear()


class NullEventLog:
    """Same surface as :class:`EventLog`; every emit is discarded."""

    enabled = False

    __slots__ = ()

    def bind_clock(self, clock: Callable[[], int]) -> None:
        pass

    def emit(self, kind: str, **attrs: object) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Event]:
        return iter(())

    @property
    def emitted(self) -> int:
        return 0

    def by_kind(self, kind: str) -> list[Event]:
        return []

    def kinds(self) -> dict[str, int]:
        return {}

    def as_dicts(self) -> list[dict[str, object]]:
        return []

    def export_jsonl(self, path: str | Path) -> int:
        return 0

    def clear(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()
