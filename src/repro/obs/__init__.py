"""Deterministic observability for the serving path: traces, metrics, events.

Everything hangs off one :class:`Observability` bundle — a tracer, a
metrics registry, and an event log — passed into the gateway, scheduler,
clients, and index.  The default, :data:`NULL_OBS`, is all null objects:
instrumented code calls the same methods either way and pays a couple of
no-op dispatches when observability is off (the bench gate holds this
under 1.05x).  ``Observability.enabled()`` builds a live bundle whose
timestamps all come from whatever logical clock the host binds, so runs
at the same seed export byte-identical traces and events.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.obs.events import NULL_EVENT_LOG, Event, EventLog, NullEventLog
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Trace,
    Tracer,
    TraceStore,
    render_waterfall,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "Trace",
    "Span",
    "TraceStore",
    "render_waterfall",
    "NULL_TRACER",
    "NULL_SPAN",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "EventLog",
    "NullEventLog",
    "Event",
    "NULL_EVENT_LOG",
]


class Observability:
    """Bundle of (tracer, metrics, events) handed to instrumented code.

    Pieces can be mixed freely — e.g. a real tracer with a null event
    log.  ``Observability()`` with no arguments is all-null (equivalent
    to :data:`NULL_OBS`); :meth:`enabled` turns everything on.
    """

    __slots__ = ("tracer", "metrics", "events")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullRegistry | None = None,
        events: EventLog | NullEventLog | None = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.events = events if events is not None else NULL_EVENT_LOG

    @classmethod
    def enabled(
        cls,
        *,
        trace_capacity: int = 256,
        event_capacity: int | None = None,
        wall: bool = False,
    ) -> "Observability":
        """A fully live bundle; bind a clock via the consuming component
        (the gateway does this automatically)."""
        return cls(
            tracer=Tracer(store=TraceStore(capacity=trace_capacity), wall=wall),
            metrics=MetricsRegistry(),
            events=EventLog(capacity=event_capacity),
        )

    @property
    def active(self) -> bool:
        """True if any piece is live."""
        return self.tracer.enabled or self.metrics.enabled or self.events.enabled

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point the tracer and event log at a logical clock."""
        self.tracer.bind_clock(clock)
        self.events.bind_clock(clock)


NULL_OBS = Observability()
