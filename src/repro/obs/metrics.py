"""A small, deterministic metrics registry for the serving path.

Three instrument kinds — counters, gauges, fixed-bucket histograms — all
label-aware, all living in one :class:`MetricsRegistry` that can export a
JSON-safe snapshot (:meth:`MetricsRegistry.as_dict`) or a Prometheus-style
text exposition (:meth:`MetricsRegistry.render_prometheus`).

Design constraints, in order:

1. **Determinism.** Exports iterate names and label sets in sorted order,
   so two registries fed the same sequence of updates render byte-identical
   text.  Nothing here reads a wall clock.
2. **JSON purity.** ``as_dict()`` emits only JSON-native types; histogram
   bucket bounds are finite floats (the implicit ``+Inf`` bucket appears
   only in the Prometheus rendering, where it is required).
3. **Cheap when off.** :class:`NullRegistry` hands out null instruments
   whose updates are single no-op calls, so instrumented code never
   branches on "is observability on".

The registry is *not* thread-safe by itself; the serving path funnels all
updates through the gateway's single-threaded request loop (the ANN thread
pool only touches metrics from the calling thread, after the merge).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    """Canonical hashable form of a label set (sorted by label name)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    """Prometheus ``{a="x",b="y"}`` suffix; empty string for no labels."""
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        """Current total for one label set (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def series(self) -> dict[_LabelKey, float]:
        return dict(self._series)

    def as_dict(self) -> list[dict[str, object]]:
        return [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} counter")
        for key in sorted(self._series):
            lines.append(f"{self.name}{_render_labels(key)} {self._series[key]}")
        return lines


class Gauge:
    """Last-write-wins per-label-set values (can go up or down)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0)

    def series(self) -> dict[_LabelKey, float]:
        return dict(self._series)

    def as_dict(self) -> list[dict[str, object]]:
        return [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} gauge")
        for key in sorted(self._series):
            lines.append(f"{self.name}{_render_labels(key)} {self._series[key]}")
        return lines


class Histogram:
    """Fixed-bucket distribution per label set.

    ``buckets`` are finite upper bounds, strictly increasing.  Counts are
    stored *per bucket* (non-cumulative) plus an overflow slot; the
    Prometheus rendering converts to the cumulative-with-``+Inf`` form the
    format requires, while :meth:`as_dict` keeps the finite, JSON-safe view.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "buckets", "_series")

    def __init__(self, name: str, buckets: Iterable[float], help: str = ""):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError(f"histogram {name!r} buckets must be finite")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets: tuple[float, ...] = tuple(bounds)
        # label key -> [counts per bucket..., overflow_count, sum, count]
        self._series: dict[_LabelKey, list[float]] = {}

    def _slot(self, key: _LabelKey) -> list[float]:
        slot = self._series.get(key)
        if slot is None:
            slot = self._series[key] = [0] * (len(self.buckets) + 1) + [0, 0]
        return slot

    def observe(self, value: float, **labels: str) -> None:
        slot = self._slot(_label_key(labels))
        slot[bisect_left(self.buckets, value)] += 1
        slot[-2] += value
        slot[-1] += 1

    def count(self, **labels: str) -> float:
        slot = self._series.get(_label_key(labels))
        return slot[-1] if slot else 0

    def sum(self, **labels: str) -> float:
        slot = self._series.get(_label_key(labels))
        return slot[-2] if slot else 0

    def as_dict(self) -> dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(key),
                    "counts": list(slot[: len(self.buckets)]),
                    "overflow": slot[len(self.buckets)],
                    "sum": slot[-2],
                    "count": slot[-1],
                }
                for key, slot in sorted(self._series.items())
            ],
        }

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        for key in sorted(self._series):
            slot = self._series[key]
            running = 0
            for bound, n in zip(self.buckets, slot):
                running += n
                labels = _render_labels(key, f'le="{bound}"')
                lines.append(f"{self.name}_bucket{labels} {running}")
            running += slot[len(self.buckets)]
            labels = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {running}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {slot[-2]}")
            lines.append(f"{self.name}_count{_render_labels(key)} {slot[-1]}")
        return lines


class MetricsRegistry:
    """Named instruments, get-or-create, one source of truth.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests_total").inc(model="gpt-4")
    >>> reg.counter("requests_total").value(model="gpt-4")
    1
    """

    enabled = True

    __slots__ = ("_instruments",)

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: str):
        inst = self._instruments.get(name)
        if inst is not None and inst.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, not {kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._get(name, "counter")
        if inst is None:
            inst = self._instruments[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._get(name, "gauge")
        if inst is None:
            inst = self._instruments[name] = Gauge(name, help)
        return inst

    def histogram(
        self, name: str, buckets: Iterable[float] = (), help: str = ""
    ) -> Histogram:
        inst = self._get(name, "histogram")
        if inst is None:
            inst = self._instruments[name] = Histogram(name, buckets, help)
        return inst

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe snapshot: ``{kind: {name: series...}}``, sorted."""
        out: dict[str, dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[inst.kind + "s"][name] = inst.as_dict()
        return out

    def snapshot(self) -> dict[str, object]:
        """Alias for :meth:`as_dict` (a point-in-time copy, safe to keep)."""
        return self.as_dict()

    def render_prometheus(self) -> str:
        """Prometheus text exposition (families sorted by name)."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self._instruments.clear()


class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    kind = "null"

    __slots__ = ()

    def inc(self, amount: float = 1, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, **labels: str) -> float:
        return 0

    def sum(self, **labels: str) -> float:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Same surface as :class:`MetricsRegistry`, all updates discarded."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Iterable[float] = (), help: str = ""
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> list[str]:
        return []

    def as_dict(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def snapshot(self) -> dict[str, object]:
        return self.as_dict()

    def render_prometheus(self) -> str:
        return ""

    def clear(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()
