"""Request/response datatypes of the serving gateway."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.serialize import register

__all__ = ["ServeRequest", "ServeResponse", "STATUSES"]

#: The outcome vocabulary of one served request.  ``ok`` — augmented (or
#: deliberately unaugmented) and completed; ``degraded`` — augmentation
#: failed, so the *raw prompt* was completed instead (the plug-and-play
#: fallback: the user still gets an answer); ``failed`` — no completion
#: could be produced (retries exhausted, deadline blown, or the model's
#: circuit breaker was open).
STATUSES = ("ok", "degraded", "failed")


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One augmentation-and-completion request.

    ``tenant`` is the requester's stable identity (``None`` for anonymous
    traffic): quotas, rate limits, and routing affinity key on it, and the
    gateway stamps it onto the request's trace span.
    """

    prompt: str
    model: str
    augment: bool = True
    request_id: str | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if not self.prompt.strip():
            raise ValueError("prompt must be non-empty")


@dataclass(frozen=True, slots=True)
class ServeResponse:
    """The gateway's answer, with provenance and outcome for observability.

    Every request put through the non-strict gateway API yields exactly one
    response; :attr:`status` says what happened (see :data:`STATUSES`),
    :attr:`error` carries the failure description for ``degraded``/``failed``
    outcomes, and :attr:`attempts` counts completion attempts actually made
    (0 when a circuit breaker rejected the request before trying).
    :attr:`strategy` records which policy arm served the request when the
    gateway ran with an :class:`~repro.policy.AugmentationPolicy`
    (``None`` on unpoliced gateways and on requests the policy never saw
    — unaugmented, degraded, or failed serves).
    """

    request_id: str | None
    model: str
    response: str
    complement: str
    complement_cached: bool
    prompt_tokens: int
    completion_tokens: int
    status: str = "ok"
    error: str | None = None
    attempts: int = 1
    strategy: str | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"invalid status {self.status!r}; expected one of {STATUSES}")

    @property
    def augmented(self) -> bool:
        return bool(self.complement)

    @property
    def ok(self) -> bool:
        """Was the user served an answer?  (``ok`` or ``degraded``.)"""
        return self.status != "failed"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (for structured export).

        ``strategy`` appears only when set — unpoliced exports stay
        byte-identical to the pre-policy format.
        """
        data = {
            "request_id": self.request_id,
            "model": self.model,
            "status": self.status,
            "response": self.response,
            "complement": self.complement,
            "complement_cached": self.complement_cached,
            "augmented": self.augmented,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.strategy is not None:
            data["strategy"] = self.strategy
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeResponse":
        """Inverse of :meth:`as_dict` (derived fields are recomputed):
        ``ServeResponse.from_dict(r.as_dict()) == r``."""
        return cls(
            request_id=data["request_id"],
            model=data["model"],
            response=data["response"],
            complement=data["complement"],
            complement_cached=data["complement_cached"],
            prompt_tokens=data["prompt_tokens"],
            completion_tokens=data["completion_tokens"],
            status=data["status"],
            error=data["error"],
            attempts=data["attempts"],
            strategy=data.get("strategy"),
        )


register(ServeResponse)
