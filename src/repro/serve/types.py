"""Request/response datatypes of the serving gateway."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeRequest", "ServeResponse"]


@dataclass(frozen=True)
class ServeRequest:
    """One augmentation-and-completion request."""

    prompt: str
    model: str
    augment: bool = True
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.prompt.strip():
            raise ValueError("prompt must be non-empty")


@dataclass(frozen=True)
class ServeResponse:
    """The gateway's answer, with provenance for observability."""

    request_id: str | None
    model: str
    response: str
    complement: str
    complement_cached: bool
    prompt_tokens: int
    completion_tokens: int

    @property
    def augmented(self) -> bool:
        return bool(self.complement)
