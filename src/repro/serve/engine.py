"""The event-loop serving engine: overlapped completions on the logical clock.

The synchronous gateway serves one completion at a time, so the batch
bench's makespan is ~89% completion stall.  Real serving overlaps: while
one completion is in flight, the gateway plans, embeds, and augments for
*other* requests, and up to ``max_inflight`` completions per model run
concurrently.  :class:`ServingEngine` reproduces that discipline
deterministically — every completion is a simulated-latency interval on
the logical clock (priced by the client's seeded
:class:`~repro.llm.api.LatencyModel`), and the engine advances through a
heap of events:

* **arrivals** — a timed trace (see :mod:`repro.serve.traffic`) feeds a
  continuous :class:`~repro.serve.scheduler.MicroBatcher`, subject to
  admission control (queue overflow sheds at the door);
* **completion finishes** — the heap's clockwork; a finish frees an
  in-flight slot, serves the planned request through the gateway, and
  triggers another dispatch round;
* **batch-window expiries** — wake-ups that fire the batcher's wait
  trigger when no arrival or finish would.

Dispatch drains ready batches as capacity frees: each drained batch is
deadline-checked (stale requests are shed — rejected or degraded to
unaugmented, per :attr:`EngineConfig.shed_policy`), planned once with
:meth:`~repro.serve.gateway.PasGateway.plan_batch`, ordered by priority,
and its requests start completions as their model's slots allow.

The engine always drives a :class:`~repro.serve.router.Router`: hand it
a bare gateway and it is adopted as a trivial single-replica router
(invisible — no spans, metrics, or routing state), hand it a multi-replica
router and every dispatch round routes, admission enforces tenant
policies, and pool-addressed requests resolve to concrete models before
planning.  Per-slot accounting is keyed ``(replica, model)``; with one
replica the stats keys stay bare model names, so single-gateway callers
see exactly the PR 7 shapes.

Two fleet policies thread through from the router's installed
:class:`~repro.serve.router.FleetPlan`:

* **hedged retries** — when a :class:`~repro.serve.router.HedgePolicy`
  is installed and a started completion's priced latency exceeds the
  hedge deadline, a rank-1 *hedge launch* event fires mid-flight: the
  same planned request starts on a deterministic second replica (the
  :class:`~repro.serve.gateway.BatchPlan` is replica-independent pure
  data, so no re-planning), the first finish wins, and the loser's
  pending finish event is lazily cancelled — its slot and load free at
  the winner's tick and its tombstone never advances the clock, so
  ``makespan_ticks`` reflects the raced outcome.  Ties go to the
  primary (smaller event seq).  Hedging disabled is bit-identical to
  the pre-hedging engine.
* **weighted fair queueing** — with ``fairness.mode="wfq"`` each
  drained batch dispatches in virtual-time finish-tag order (exact
  Fractions, see :meth:`~repro.serve.router.Router.wfq_tags`) instead
  of the priority sort, so no tenant starves under bursty load.

**Compatibility mode**: at ``max_inflight=1`` completions serialize, the
gateway sees the same request order as the synchronous path, and — by the
partition-invariance the batch-parity suite pins — the responses are
bit-identical to ``MicroBatcher(gateway.ask_batch, ...).run_arrivals(trace)``
on the same trace (with admission control off).  Everything is a pure
function of seed: same trace + same gateway seed → byte-identical
responses, traces, events, and metrics.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Sequence

from repro.errors import ConfigError, UnknownModelError
from repro.obs import MetricsRegistry, Observability
from repro.serve.gateway import BatchPlan, PasGateway
from repro.serve.router import Router
from repro.serve.scheduler import MicroBatcher, _percentile
from repro.serve.traffic import TimedRequest
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.serialize import register

__all__ = [
    "SHED_POLICIES",
    "EngineConfig",
    "EngineResult",
    "EngineStats",
    "ServingEngine",
]

#: What happens to a request that outlives its deadline in the queue:
#: ``reject`` — fail it (``attempts=0``, it never reaches the gateway);
#: ``degrade`` — strip augmentation and serve the raw prompt instead.
SHED_POLICIES = ("reject", "degrade")

_LATENCY_BUCKETS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)
_QUEUE_WAIT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

# Heap-event ranks: completions land first on a tick, then hedge
# launches, then expiry wake-ups (arrivals are merged from the sorted
# trace between finishes and hedge launches).
_FINISH, _HEDGE, _EXPIRE = 0, 1, 2


class _HedgeState:
    """The shared race state of one hedged request's two legs."""

    __slots__ = (
        "primary",
        "primary_seq",
        "primary_grant",
        "hedge",
        "hedge_seq",
        "hedge_grant",
        "done",
    )

    def __init__(self, primary: int, primary_seq: int, primary_grant: int):
        self.primary = primary
        self.primary_seq = primary_seq
        self.primary_grant = primary_grant
        self.hedge: int | None = None
        self.hedge_seq: int | None = None
        self.hedge_grant: int | None = None
        self.done = False


@dataclass(frozen=True)
class EngineConfig:
    """Everything configurable about a :class:`ServingEngine`.

    ``max_inflight`` overrides every model's concurrency limit (``None``
    defers to each client's own, i.e. ``GatewayConfig.max_inflight``).
    ``max_batch`` / ``max_wait`` parameterize the continuous batcher.
    ``max_queue`` is the admission bound: arrivals beyond this many
    queued-but-unstarted requests are shed at the door (``None`` admits
    everything).  ``deadline_ticks`` is the default queueing budget for
    requests whose trace entry carries none (``None`` falls back to the
    gateway retry policy's ``deadline_ticks``; if that is also unset,
    requests never expire).  ``keep_responses=False`` discards response
    objects as they complete (stats only) — the million-request bench
    runs that way.
    """

    max_inflight: int | None = None
    max_batch: int = 8
    max_wait: int = 4
    max_queue: int | None = None
    deadline_ticks: int | None = None
    shed_policy: str = "reject"
    keep_responses: bool = True

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1 or None, got {self.max_inflight}"
            )
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 1:
            raise ConfigError(f"max_wait must be >= 1, got {self.max_wait}")
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigError(
                f"max_queue must be >= 1 or None, got {self.max_queue}"
            )
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ConfigError(
                f"deadline_ticks must be >= 1 or None, got {self.deadline_ticks}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``EngineConfig.from_dict(c.as_dict()) == c``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        return cls(**data)


register(EngineConfig)


@dataclass
class EngineStats:
    """One run's accounting.  Invariant: ``arrived == served + failed``
    (shed rejects are ``failed`` responses with ``attempts=0``), and
    ``shed`` counts rejects by reason (``queue`` / ``deadline`` /
    ``quota`` / ``ratelimit`` / ``pool``) while ``degraded_on_shed``
    counts deadline sheds the ``degrade`` policy turned into unaugmented
    serves instead.  With multiple replicas, ``busy_ticks`` /
    ``slot_limits`` / ``occupancy`` keys become ``model@rN``; one replica
    keeps bare model names."""

    arrived: int = 0
    served: int = 0
    failed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    degraded_on_shed: int = 0
    first_tick: int = 0
    last_tick: int = 0
    peak_inflight: int = 0
    latency_ticks: list[int] = field(default_factory=list)
    queue_wait_ticks: list[int] = field(default_factory=list)
    busy_ticks: dict[str, int] = field(default_factory=dict)
    slot_limits: dict[str, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.arrived if self.arrived else 0.0

    @property
    def makespan_ticks(self) -> int:
        return max(1, self.last_tick - self.first_tick)

    @property
    def served_per_ktick(self) -> float:
        """Sustained throughput: served requests per 1000 logical ticks."""
        return 1000.0 * self.served / self.makespan_ticks

    @property
    def latency_p50(self) -> float:
        return _percentile(self.latency_ticks, 50.0)

    @property
    def latency_p99(self) -> float:
        return _percentile(self.latency_ticks, 99.0)

    @property
    def queue_wait_p50(self) -> float:
        return _percentile(self.queue_wait_ticks, 50.0)

    @property
    def queue_wait_p99(self) -> float:
        return _percentile(self.queue_wait_ticks, 99.0)

    @property
    def occupancy(self) -> dict[str, float]:
        """Per-model slot utilisation: busy ticks over makespan × slots."""
        span = self.makespan_ticks
        return {
            model: self.busy_ticks.get(model, 0) / (span * slots)
            for model, slots in sorted(self.slot_limits.items())
        }

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (samples summarized)."""
        return {
            "arrived": self.arrived,
            "served": self.served,
            "failed": self.failed,
            "shed": dict(sorted(self.shed.items())),
            "shed_rate": self.shed_rate,
            "degraded_on_shed": self.degraded_on_shed,
            "makespan_ticks": self.makespan_ticks,
            "served_per_ktick": self.served_per_ktick,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p99": self.queue_wait_p99,
            "peak_inflight": self.peak_inflight,
            "occupancy": self.occupancy,
        }


@dataclass
class EngineResult:
    """What one :meth:`ServingEngine.run` hands back.

    ``responses`` is in **trace order** — index *i* answers trace entry
    *i*, shed requests included — or empty when the run discarded
    responses (``keep_responses=False``).  ``batch_records`` are the
    continuous batcher's drain records (outcome splits all-zero: the
    engine, not the batcher, owns outcomes).
    """

    responses: list[ServeResponse]
    stats: EngineStats
    batch_records: list


class ServingEngine:
    """Drive gateway replicas through a timed trace, via a router.

    ``target`` is either a :class:`~repro.serve.router.Router` or a bare
    :class:`~repro.serve.gateway.PasGateway` (adopted as a trivial
    single-replica router — the two spellings are bit-identical).
    ``config`` is an :class:`EngineConfig`, or a full
    :class:`~repro.serve.config.ServingConfig` whose ``engine`` section
    is used; those are the only construction paths — the historical flat
    kwargs (``max_inflight=...`` etc.) were removed with the elastic-fleet
    redesign and now raise a :class:`TypeError` naming the config field.

    The engine shares the router's observability bundle: engine metrics
    (``pas_engine_inflight``, ``pas_request_latency_ticks``,
    ``pas_queue_wait_ticks``, ``pas_engine_shed_total``) land in the same
    registry as the gateway's counters, shed events join the gateway's
    event log, and gateway spans keep their synchronous shape (parented
    by ``router.route`` for non-trivial routers).  One engine can
    :meth:`run` several traces; gateway state (caches, breakers, clocks)
    carries across runs exactly as it would across ``ask_batch`` calls.
    """

    def __init__(
        self,
        target: Router | PasGateway,
        config: "EngineConfig | object | None" = None,
        **rejected,
    ):
        if rejected:
            flat = sorted(set(rejected) & {f.name for f in fields(EngineConfig)})
            if flat:
                raise TypeError(
                    f"ServingEngine() no longer accepts flat kwargs {flat}; "
                    "pass the matching EngineConfig field instead — "
                    "ServingEngine(target, EngineConfig(...)) or a ServingConfig"
                )
            raise TypeError(
                f"ServingEngine() got unexpected keyword arguments {sorted(rejected)}"
            )
        if config is not None and hasattr(config, "engine") and hasattr(config, "router"):
            config = config.engine
        if isinstance(target, Router):
            self.router = target
        else:
            self.router = Router(replicas=[target])
        self.config = config or EngineConfig()
        self._multi = self.router.n_replicas > 1
        self.obs: Observability = self.router.obs
        self._registry: MetricsRegistry = (
            self.obs.metrics if self.obs.metrics.enabled else MetricsRegistry()
        )
        self._m_inflight = self._registry.gauge(
            "pas_engine_inflight", help="Completions currently in flight."
        )
        self._m_latency = self._registry.histogram(
            "pas_request_latency_ticks",
            buckets=_LATENCY_BUCKETS,
            help="Arrival-to-finish latency of completed requests, in ticks.",
        )
        self._m_queue_wait = self._registry.histogram(
            "pas_queue_wait_ticks",
            buckets=_QUEUE_WAIT_BUCKETS,
            help="Arrival-to-dispatch wait of completed requests, in ticks.",
        )
        self._m_shed = self._registry.counter(
            "pas_engine_shed_total", help="Requests shed by reason."
        )

    @property
    def gateway(self) -> PasGateway:
        """The first (with one replica: the only) gateway replica."""
        return self.router.replicas[0]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _slot_limit(
        self, replica: int, model: str, limits: dict[tuple[int, str], int]
    ) -> int:
        """Per-(replica, model) in-flight slots.  Unknown models get one
        slot — their requests fail at routing after a nominal 1-tick
        latency, which keeps serve order identical to the synchronous
        path."""
        key = (replica, model)
        if key not in limits:
            try:
                client_limit = (
                    self.router.gateway_for(replica).client_for(model).max_inflight
                )
            except UnknownModelError:
                client_limit = 1
            limits[key] = (
                self.config.max_inflight
                if self.config.max_inflight is not None
                else client_limit
            )
        return limits[key]

    def _stat_key(self, replica: int, model: str) -> str:
        """Stats keys stay bare model names with one replica (the PR 7
        shape); fleets annotate them with the replica id.  The shape is
        snapshotted at run start, so a drain mid-run cannot flip keys."""
        if not self._multi:
            return model
        return f"{model}@r{replica}"

    @staticmethod
    def _shed_response(request: ServeRequest, error: str) -> ServeResponse:
        return ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response="",
            complement="",
            complement_cached=False,
            prompt_tokens=0,
            completion_tokens=0,
            status="failed",
            error=error,
            attempts=0,
        )

    def _deadline_for(self, timed: TimedRequest) -> int | None:
        if timed.deadline_ticks is not None:
            return timed.deadline_ticks
        if self.config.deadline_ticks is not None:
            return self.config.deadline_ticks
        policy = self.router.gateway_config.retry_policy
        return policy.deadline_ticks if policy is not None else None

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #

    def run(self, trace: Sequence[TimedRequest]) -> EngineResult:
        """Serve a timed trace to completion; see the module docstring.

        The trace must be in non-decreasing tick order (what
        :meth:`~repro.serve.traffic.TrafficGenerator.trace` produces).
        """
        cfg = self.config
        router = self.router
        self._multi = router.n_replicas > 1
        hedge_cfg = router.hedge_policy if not router.trivial else None
        trace = list(trace)
        for earlier, later in zip(trace, trace[1:]):
            if later.tick < earlier.tick:
                raise ValueError(
                    "trace ticks must be non-decreasing: "
                    f"got {later.tick} after {earlier.tick}"
                )

        n = len(trace)
        stats = EngineStats(arrived=n)
        responses: list[ServeResponse | None] = [None] * n if cfg.keep_responses else []
        if not trace:
            return EngineResult(responses=[], stats=stats, batch_records=[])
        stats.first_tick = stats.last_tick = trace[0].tick

        batcher = MicroBatcher(
            None, max_batch=cfg.max_batch, max_wait=cfg.max_wait, obs=self.obs
        )
        # Parallel FIFO of (trace index, TimedRequest) for the batcher queue.
        meta: deque[tuple[int, TimedRequest]] = deque()
        # Planned requests waiting for a slot on their assigned replica.
        spill: deque[tuple[int, TimedRequest, ServeRequest, BatchPlan, int]] = deque()
        heap: list[tuple[int, int, int, object]] = []
        seq = 0
        limits: dict[tuple[int, str], int] = {}
        busy: dict[tuple[int, str], int] = {}
        inflight = 0
        wake_at: int | None = None
        # Lazily-deleted finish events (hedge losers): their seqs land
        # here and the tombstones are pruned before every heap peek, so
        # a cancelled completion can never advance the clock or inflate
        # the makespan.
        cancelled: set[int] = set()

        def prune() -> None:
            while heap and heap[0][2] in cancelled:
                cancelled.discard(heap[0][2])
                heapq.heappop(heap)

        def hedge_deadline() -> int | None:
            """The tick budget before a hedge launches (seed-pure)."""
            if hedge_cfg is None:
                return None
            if hedge_cfg.after_ticks is not None:
                return hedge_cfg.after_ticks
            if len(stats.latency_ticks) < hedge_cfg.min_samples:
                return None
            return max(1, int(_percentile(stats.latency_ticks, hedge_cfg.percentile)))

        def record(index: int, response: ServeResponse) -> None:
            if cfg.keep_responses:
                responses[index] = response
            if response.failed:
                stats.failed += 1
            else:
                stats.served += 1

        def shed(index: int, timed: TimedRequest, reason: str, error: str) -> None:
            stats.shed[reason] = stats.shed.get(reason, 0) + 1
            self._m_shed.inc(reason=reason)
            self.obs.events.emit(
                "engine.shed",
                tick=timed.tick,
                reason=reason,
                model=timed.request.model,
                tenant=timed.tenant,
            )
            record(index, self._shed_response(timed.request, error))

        def finish(tick: int, payload) -> None:
            nonlocal inflight
            index, timed, request, plan, replica, grant_tick, race, leg = payload
            if race is not None and not race.done:
                # This leg won; settle the race before serving.  The
                # loser's slot and load free *now* (the winner's tick),
                # and its pending finish event becomes a tombstone.
                race.done = True
                if leg == "hedge":
                    loser, loser_seq, loser_grant = (
                        race.primary, race.primary_seq, race.primary_grant,
                    )
                    outcome = "win"
                else:
                    loser, loser_seq, loser_grant = (
                        race.hedge, race.hedge_seq, race.hedge_grant,
                    )
                    outcome = "loss"
                if loser_seq is not None:
                    cancelled.add(loser_seq)
                    router.release(loser)
                    busy[(loser, request.model)] -= 1
                    inflight -= 1
                    loser_key = self._stat_key(loser, request.model)
                    stats.busy_ticks[loser_key] = (
                        stats.busy_ticks.get(loser_key, 0) + tick - loser_grant
                    )
                    router.resolve_hedge(
                        outcome, tick=tick, primary=race.primary, hedge=race.hedge
                    )
            response = router.serve_planned(replica, request, plan)
            router.release(replica)
            busy[(replica, request.model)] -= 1
            inflight -= 1
            stat_key = self._stat_key(replica, request.model)
            stats.busy_ticks[stat_key] = (
                stats.busy_ticks.get(stat_key, 0) + tick - grant_tick
            )
            self._m_inflight.set(inflight)
            latency = tick - timed.tick
            stats.latency_ticks.append(latency)
            self._m_latency.observe(latency)
            record(index, response)

        def start(index: int, timed: TimedRequest, request: ServeRequest,
                  plan: BatchPlan, replica: int, now: int) -> None:
            nonlocal inflight, seq
            wait = now - timed.tick
            stats.queue_wait_ticks.append(wait)
            self._m_queue_wait.observe(wait)
            try:
                latency = router.completion_latency(replica, request, plan)
            except UnknownModelError:
                latency = 1  # fails at routing when the finish event serves it
            busy[(replica, request.model)] = busy.get((replica, request.model), 0) + 1
            inflight += 1
            stats.peak_inflight = max(stats.peak_inflight, inflight)
            self._m_inflight.set(inflight)
            race: _HedgeState | None = None
            deadline = hedge_deadline()
            if (
                deadline is not None
                and deadline < latency
                and router.n_replicas > 1
            ):
                # Arm the hedge only when it could launch strictly before
                # the primary finishes; otherwise the race is unwinnable
                # and arming it would burn a slot for nothing.
                race = _HedgeState(replica, seq, now)
                heapq.heappush(
                    heap,
                    (
                        now + deadline,
                        _HEDGE,
                        seq + 1,
                        (race, index, timed, request, plan),
                    ),
                )
            heapq.heappush(
                heap,
                (
                    now + latency,
                    _FINISH,
                    seq,
                    (index, timed, request, plan, replica, now, race, "primary"),
                ),
            )
            seq += 2 if race is not None else 1

        def capacity_free() -> bool:
            if not busy:
                return True
            return any(count < limits[key] for key, count in busy.items())

        def dispatch(now: int, force: bool) -> None:
            progressed = True
            while progressed:
                progressed = False
                while spill:
                    index, timed, request, plan, replica = spill[0]
                    if busy.get((replica, request.model), 0) >= self._slot_limit(
                        replica, request.model, limits
                    ):
                        break
                    spill.popleft()
                    start(index, timed, request, plan, replica, now)
                    progressed = True
                if spill:
                    break
                if batcher.ready(now) is None and not (force and batcher.pending):
                    break
                if not capacity_free():
                    break
                batch = batcher.take(now, force=force)
                if not batch:
                    break
                kept: list[tuple[int, TimedRequest, ServeRequest]] = []
                for _ in batch:
                    index, timed = meta.popleft()
                    deadline = self._deadline_for(timed)
                    if deadline is not None and now - timed.tick > deadline:
                        if cfg.shed_policy == "degrade":
                            if timed.request.augment:
                                stats.degraded_on_shed += 1
                                self.obs.events.emit(
                                    "engine.shed",
                                    tick=now,
                                    reason="deadline",
                                    action="degrade",
                                    model=timed.request.model,
                                    tenant=timed.tenant,
                                )
                                kept.append(
                                    (index, timed, replace(timed.request, augment=False))
                                )
                            else:
                                kept.append((index, timed, timed.request))
                        else:
                            shed(
                                index,
                                timed,
                                "deadline",
                                "DeadlineExceededError: queued for "
                                f"{now - timed.tick} ticks, budget {deadline}",
                            )
                    else:
                        kept.append((index, timed, timed.request))
                if not kept:
                    progressed = True
                    continue
                # Route each request, then resolve pool-addressed models
                # against the chosen replica's breakers.  The ``degrade``
                # shed policy forces an all-open pool to draw anyway (the
                # gateway breaker then fast-fails or admits the probe);
                # ``reject`` sheds it with attempts=0.
                routed: list[tuple[int, TimedRequest, ServeRequest, int]] = []
                for index, timed, request in kept:
                    replica = router.route(request, timed)
                    resolved = router.resolve(
                        request, timed, replica,
                        force=(cfg.shed_policy == "degrade"),
                    )
                    if resolved is None:
                        router.release(replica)
                        shed(
                            index,
                            timed,
                            "pool",
                            "PoolExhaustedError: every model in pool "
                            f"{request.model!r} has an open circuit breaker",
                        )
                        continue
                    routed.append((index, timed, resolved, replica))
                if not routed:
                    progressed = True
                    continue
                # One plan per replica group, each in arrival order (with
                # one replica this is exactly the single plan_batch call
                # the PR 7 engine made).
                plans: dict[int, BatchPlan] = {}
                for replica in sorted({r for _, _, _, r in routed}):
                    group = [req for _, _, req, r in routed if r == replica]
                    plans[replica] = router.plan_batch(replica, group)
                # Order the batch for dispatch.  WFQ mode assigns exact-
                # Fraction virtual-time finish tags (weighted tenants
                # first, zero-weight background last); priority mode keeps
                # the historical highest-priority-first sort.  Both sorts
                # are stable, so ties keep arrival order (compat parity).
                if router.fairness_mode == "wfq":
                    tags = router.wfq_tags([timed for _, timed, _, _ in routed])
                    order = sorted(range(len(routed)), key=lambda pos: tags[pos])
                    routed = [routed[pos] for pos in order]
                else:
                    routed.sort(key=lambda item: -router.effective_priority(item[1]))
                for index, timed, request, replica in routed:
                    if busy.get((replica, request.model), 0) < self._slot_limit(
                        replica, request.model, limits
                    ):
                        start(index, timed, request, plans[replica], replica, now)
                    else:
                        spill.append((index, timed, request, plans[replica], replica))
                progressed = True

        i = 0
        now = trace[0].tick
        while True:
            prune()
            next_arrival = trace[i].tick if i < n else None
            next_event = heap[0][0] if heap else None
            if next_arrival is None and next_event is None:
                if batcher.pending or spill:
                    dispatch(now, force=True)
                    continue
                break
            if next_event is not None and (
                next_arrival is None or next_event <= next_arrival
            ):
                now = next_event
            else:
                now = next_arrival
            stats.last_tick = max(stats.last_tick, now)

            # 1. completion finishes at this tick (heap rank 0); a finish
            #    can tombstone its hedge sibling later in the same tick,
            #    so re-prune between pops
            while heap and heap[0][0] == now and heap[0][1] == _FINISH:
                _, _, fseq, payload = heapq.heappop(heap)
                if fseq in cancelled:
                    cancelled.discard(fseq)
                    continue
                finish(now, payload)
            # 2. arrivals at this tick (admission control at the door:
            #    tenant policy first, then the queue bound)
            while i < n and trace[i].tick == now:
                timed = trace[i]
                queued = batcher.pending + len(spill)
                reason = router.admit(timed) if not router.trivial else None
                if reason == "quota":
                    shed(
                        i,
                        timed,
                        "quota",
                        f"QuotaExceededError: tenant {timed.tenant!r} is over "
                        "its request quota for this window",
                    )
                elif reason == "ratelimit":
                    shed(
                        i,
                        timed,
                        "ratelimit",
                        f"RateLimitedError: tenant {timed.tenant!r} token "
                        "bucket is empty",
                    )
                elif cfg.max_queue is not None and queued >= cfg.max_queue:
                    shed(
                        i,
                        timed,
                        "queue",
                        f"AdmissionError: queue full ({queued} >= {cfg.max_queue})",
                    )
                else:
                    batcher.submit_at(timed.tick, timed.request)
                    meta.append((i, timed))
                i += 1
            # 3. hedge launches at this tick (heap rank 1): start the
            #    armed request's second leg on a deterministic sibling
            #    replica if a slot is free, else count the skip
            while heap and heap[0][0] == now and heap[0][1] == _HEDGE:
                _, _, _, payload = heapq.heappop(heap)
                race, index, timed, request, plan = payload
                if race.done:
                    continue
                candidate = router.hedge_candidate(request, timed, race.primary)
                if candidate is None:
                    router.resolve_hedge("skipped", tick=now, primary=race.primary)
                    continue
                if busy.get((candidate, request.model), 0) >= self._slot_limit(
                    candidate, request.model, limits
                ):
                    router.resolve_hedge(
                        "skipped", tick=now, primary=race.primary, hedge=candidate
                    )
                    continue
                router.take_hedge(candidate)
                try:
                    hedge_latency = router.completion_latency(
                        candidate, request, plan
                    )
                except UnknownModelError:
                    hedge_latency = 1
                busy[(candidate, request.model)] = (
                    busy.get((candidate, request.model), 0) + 1
                )
                inflight += 1
                stats.peak_inflight = max(stats.peak_inflight, inflight)
                self._m_inflight.set(inflight)
                race.hedge = candidate
                race.hedge_seq = seq
                race.hedge_grant = now
                heapq.heappush(
                    heap,
                    (
                        now + hedge_latency,
                        _FINISH,
                        seq,
                        (index, timed, request, plan, candidate, now, race, "hedge"),
                    ),
                )
                seq += 1
            # 4. expiry wake-ups are pure wake-ups — just pop them
            while heap and heap[0][0] == now:
                heapq.heappop(heap)
                wake_at = None
            # 5. dispatch whatever is ready into free capacity
            dispatch(now, force=(i == n))
            # 6. make sure a parked queue's wait trigger can still fire
            if batcher.pending and batcher.ready(now) is None:
                due = batcher.oldest_tick + batcher.max_wait
                if wake_at != due:
                    heapq.heappush(heap, (due, _EXPIRE, seq, None))
                    seq += 1
                    wake_at = due

        self._m_inflight.set(0)
        stats.slot_limits = dict(
            sorted(
                (self._stat_key(replica, model), limit)
                for (replica, model), limit in limits.items()
            )
        )
        return EngineResult(
            responses=responses if cfg.keep_responses else [],
            stats=stats,
            batch_records=batcher.records,
        )
