"""Deterministic synthetic traffic for the serving engine.

Real gateways never see one-shot request lists: load arrives as a *process*
— popular prompts repeat (Zipf), requests cluster (Poisson gaps, bursts,
diurnal swell), and tenants with different models, priorities, and latency
budgets share the same queue.  This module generates such a workload as a
pure function of its config: the same :class:`TrafficConfig` always yields
the same timed trace, byte for byte, which is what lets the serving-engine
benches gate on speedups and the parity suite compare runs.

A trace is a list of :class:`TimedRequest` — an arrival tick on the
logical clock plus the :class:`~repro.serve.types.ServeRequest` to serve,
annotated with tenant, priority, and an optional per-request deadline
budget.  Feed it to :class:`~repro.serve.engine.ServingEngine`, or replay
it synchronously with :meth:`~repro.serve.scheduler.MicroBatcher.run_arrivals`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serve.types import ServeRequest
from repro.utils.rng import derive_rng
from repro.utils.serialize import register

__all__ = [
    "ARRIVAL_PROCESSES",
    "TenantProfile",
    "TimedRequest",
    "TrafficConfig",
    "TrafficGenerator",
]

#: Supported arrival processes.  ``uniform`` — evenly spaced gaps;
#: ``poisson`` — i.i.d. exponential gaps; ``bursty`` — a two-state
#: (burst/idle) modulated Poisson process; ``diurnal`` — Poisson gaps whose
#: rate swells and ebbs sinusoidally over ``period_ticks`` (a synthetic day).
ARRIVAL_PROCESSES = ("uniform", "poisson", "bursty", "diurnal")


@dataclass(frozen=True, slots=True)
class TimedRequest:
    """One arrival: when it lands, what to serve, and who sent it.

    ``deadline_ticks`` is the tenant's queueing budget: if the engine
    cannot *dispatch* the request within that many ticks of arrival it is
    shed (rejected or degraded, per the engine's shed policy).  ``None``
    defers to the engine default.  ``priority`` orders dispatch within a
    drained batch — higher first, arrival order breaking ties.
    """

    tick: int
    request: ServeRequest
    tenant: str = "default"
    priority: int = 0
    deadline_ticks: int | None = None

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ValueError(
                f"deadline_ticks must be >= 1 or None, got {self.deadline_ticks}"
            )


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's slice of the traffic mix.

    ``weight`` is its share of requests relative to the other tenants;
    ``models`` a ``(model_name, weight)`` mix drawn per request;
    ``augment_rate`` the fraction of its requests that ask for
    augmentation; ``priority``/``deadline_ticks`` stamp every request it
    sends (see :class:`TimedRequest`).
    """

    name: str
    weight: float = 1.0
    models: tuple[tuple[str, float], ...] = (("gpt-4-0613", 1.0),)
    augment_rate: float = 1.0
    priority: int = 0
    deadline_ticks: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError(f"tenant weight must be > 0, got {self.weight}")
        if not self.models:
            raise ConfigError(f"tenant {self.name!r} needs at least one model")
        if any(w <= 0 for _, w in self.models):
            raise ConfigError(f"tenant {self.name!r} model weights must be > 0")
        if not 0.0 <= self.augment_rate <= 1.0:
            raise ConfigError(
                f"augment_rate must be in [0, 1], got {self.augment_rate}"
            )
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ConfigError(
                f"deadline_ticks must be >= 1 or None, got {self.deadline_ticks}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``TenantProfile.from_dict(t.as_dict()) == t``."""
        return {
            "name": self.name,
            "weight": self.weight,
            "models": [[name, weight] for name, weight in self.models],
            "augment_rate": self.augment_rate,
            "priority": self.priority,
            "deadline_ticks": self.deadline_ticks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantProfile":
        return cls(
            name=data["name"],
            weight=float(data["weight"]),
            models=tuple((name, float(weight)) for name, weight in data["models"]),
            augment_rate=float(data["augment_rate"]),
            priority=int(data["priority"]),
            deadline_ticks=(
                None if data["deadline_ticks"] is None else int(data["deadline_ticks"])
            ),
        )


@dataclass(frozen=True)
class TrafficConfig:
    """Everything that shapes a synthetic trace (all of it seed-pure).

    ``mean_gap_ticks`` sets the average inter-arrival gap; the arrival
    ``process`` shapes how gaps cluster around it.  ``zipf_exponent``
    skews prompt popularity over the pool (1.0–1.3 is web-like; higher
    concentrates traffic on fewer prompts, which is what makes the
    complement cache earn its keep).  The bursty process alternates
    bursts of ~``burst_len`` requests at ``burst_factor``× the base rate
    with idle stretches of ~``idle_len`` requests at the base rate; the
    diurnal process modulates the Poisson rate by ``1 + amplitude·sin``
    over ``period_ticks``.
    """

    n_requests: int = 1024
    seed: int = 0
    process: str = "poisson"
    mean_gap_ticks: float = 1.0
    zipf_exponent: float = 1.1
    burst_factor: float = 8.0
    burst_len: int = 64
    idle_len: int = 16
    period_ticks: int = 4096
    amplitude: float = 0.8
    tenants: tuple[TenantProfile, ...] = (TenantProfile("default"),)

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if self.mean_gap_ticks <= 0:
            raise ConfigError(
                f"mean_gap_ticks must be > 0, got {self.mean_gap_ticks}"
            )
        if self.zipf_exponent <= 0:
            raise ConfigError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )
        if self.burst_factor < 1.0:
            raise ConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_len < 1 or self.idle_len < 1:
            raise ConfigError("burst_len and idle_len must be >= 1")
        if self.period_ticks < 2:
            raise ConfigError(f"period_ticks must be >= 2, got {self.period_ticks}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(f"amplitude must be in [0, 1), got {self.amplitude}")
        if not self.tenants:
            raise ConfigError("at least one tenant profile is required")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {sorted(names)}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``TrafficConfig.from_dict(c.as_dict()) == c``."""
        return {
            "n_requests": self.n_requests,
            "seed": self.seed,
            "process": self.process,
            "mean_gap_ticks": self.mean_gap_ticks,
            "zipf_exponent": self.zipf_exponent,
            "burst_factor": self.burst_factor,
            "burst_len": self.burst_len,
            "idle_len": self.idle_len,
            "period_ticks": self.period_ticks,
            "amplitude": self.amplitude,
            "tenants": [tenant.as_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficConfig":
        return cls(
            n_requests=int(data["n_requests"]),
            seed=int(data["seed"]),
            process=data["process"],
            mean_gap_ticks=float(data["mean_gap_ticks"]),
            zipf_exponent=float(data["zipf_exponent"]),
            burst_factor=float(data["burst_factor"]),
            burst_len=int(data["burst_len"]),
            idle_len=int(data["idle_len"]),
            period_ticks=int(data["period_ticks"]),
            amplitude=float(data["amplitude"]),
            tenants=tuple(TenantProfile.from_dict(t) for t in data["tenants"]),
        )


for _serializable in (TenantProfile, TrafficConfig):
    register(_serializable)
del _serializable


class TrafficGenerator:
    """Turn a prompt pool and a :class:`TrafficConfig` into a timed trace.

    All randomness flows from one named stream under ``config.seed``
    (prompt popularity ranking, arrival gaps, tenant/model mixes), so
    :meth:`trace` is referentially transparent — call it twice, get the
    same objects' worth of data twice.

    >>> from repro.serve.traffic import TrafficConfig, TrafficGenerator
    >>> gen = TrafficGenerator(["alpha prompt", "beta prompt"], TrafficConfig(n_requests=4))
    >>> [t.tick for t in gen.trace()] == [t.tick for t in gen.trace()]
    True
    """

    def __init__(self, prompts: Sequence[str], config: TrafficConfig | None = None):
        self.prompts = list(prompts)
        if not self.prompts:
            raise ConfigError("prompt pool must be non-empty")
        self.config = config or TrafficConfig()

    # -- arrival gaps --------------------------------------------------- #

    def _gaps(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        n, mean = cfg.n_requests, cfg.mean_gap_ticks
        if cfg.process == "uniform":
            return np.full(n, mean)
        if cfg.process == "poisson":
            return rng.exponential(mean, n)
        if cfg.process == "diurnal":
            # Rate-modulated Poisson on nominal time: request i sits near
            # t ≈ mean·i, where the day's phase scales its expected gap.
            phase = 2.0 * np.pi * (mean * np.arange(n)) / cfg.period_ticks
            rate = 1.0 + cfg.amplitude * np.sin(phase)
            return rng.exponential(mean, n) / rate
        # bursty: alternate burst segments (burst_factor× the rate) with
        # idle segments at the base rate; segment lengths are geometric.
        chunks: list[np.ndarray] = []
        total = 0
        in_burst = True
        while total < n:
            mean_len = cfg.burst_len if in_burst else cfg.idle_len
            length = int(rng.geometric(1.0 / mean_len))
            length = min(length, n - total)
            seg_mean = mean / cfg.burst_factor if in_burst else mean
            chunks.append(rng.exponential(seg_mean, length))
            total += length
            in_burst = not in_burst
        return np.concatenate(chunks)

    # -- the trace ------------------------------------------------------ #

    def trace(self) -> list[TimedRequest]:
        """The full timed trace, in non-decreasing tick order."""
        cfg = self.config
        n = cfg.n_requests
        rng = derive_rng(cfg.seed, "serve.traffic")

        # Popularity: a seed-specific ranking of the pool under a Zipf law.
        ranking = rng.permutation(len(self.prompts))
        weights = 1.0 / np.power(
            np.arange(1, len(self.prompts) + 1, dtype=np.float64), cfg.zipf_exponent
        )
        prompt_cdf = np.cumsum(weights / weights.sum())
        prompt_idx = ranking[
            np.searchsorted(prompt_cdf, rng.random(n), side="right").clip(
                0, len(self.prompts) - 1
            )
        ]

        # Arrivals: cumulative gaps, floored onto the integer clock.
        ticks = np.floor(np.cumsum(self._gaps(rng))).astype(np.int64) + 1

        # Tenant mix, then each tenant's model mix.
        tenant_weights = np.array([t.weight for t in cfg.tenants], dtype=np.float64)
        tenant_cdf = np.cumsum(tenant_weights / tenant_weights.sum())
        tenant_idx = np.searchsorted(tenant_cdf, rng.random(n), side="right").clip(
            0, len(cfg.tenants) - 1
        )
        model_draw = rng.random(n)
        augment_draw = rng.random(n)

        model_cdfs: list[tuple[list[str], np.ndarray]] = []
        for tenant in cfg.tenants:
            names = [name for name, _ in tenant.models]
            mw = np.array([w for _, w in tenant.models], dtype=np.float64)
            model_cdfs.append((names, np.cumsum(mw / mw.sum())))

        pool = self.prompts
        out: list[TimedRequest] = []
        for i in range(n):
            tenant = cfg.tenants[tenant_idx[i]]
            names, cdf = model_cdfs[tenant_idx[i]]
            model = names[min(int(np.searchsorted(cdf, model_draw[i], side="right")), len(names) - 1)]
            out.append(
                TimedRequest(
                    tick=int(ticks[i]),
                    request=ServeRequest(
                        prompt=pool[prompt_idx[i]],
                        model=model,
                        augment=bool(augment_draw[i] < tenant.augment_rate),
                        request_id=f"{tenant.name}-{i:07d}",
                        tenant=tenant.name,
                    ),
                    tenant=tenant.name,
                    priority=tenant.priority,
                    deadline_ticks=tenant.deadline_ticks,
                )
            )
        return out
