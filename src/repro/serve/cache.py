"""A small LRU cache with hit/miss accounting.

Complement generation is deterministic per prompt, so the gateway caches it:
repeated prompts (FAQ-style traffic is heavy-tailed) skip the PAS forward
pass entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["LruCache"]

_MISSING = object()


class LruCache(Generic[K, V]):
    """Least-recently-used mapping with a fixed capacity.

    >>> cache = LruCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None   # evicted
    True
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional ``observer(op, key)`` called on ``"hit"`` / ``"miss"`` /
        #: ``"evict"`` (observability hook; never fires on :meth:`peek`, which
        #: by contract leaves no trace).
        self.observer = None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Fetch and refresh recency; counts a hit or a miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            if self.observer is not None:
                self.observer("miss", key)
            return default
        self.hits += 1
        if self.observer is not None:
            self.observer("hit", key)
        self._data.move_to_end(key)
        return value  # type: ignore[return-value]

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Read without counting a hit/miss or refreshing recency.

        Lets batch planners inspect the cache without perturbing the
        accounting that a later real :meth:`get` must reproduce.

        >>> cache = LruCache(capacity=2)
        >>> cache.put("a", 1)
        >>> cache.peek("a"), cache.peek("b", -1), cache.hits, cache.misses
        (1, -1, 0, 0)
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh; evicts the least-recently-used entry."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            evicted, _ = self._data.popitem(last=False)
            if self.observer is not None:
                self.observer("evict", evicted)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
