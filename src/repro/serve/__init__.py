"""Plug-and-play serving layer.

The paper positions PAS as a *system* that sits in front of any LLM
(§3.4 / Figure 1a).  This package is that system's serving shape: a gateway
that owns one trained PAS model and a pool of target-model clients, with
two cache tiers (complement LRU over an embedding memo — the same prompt
never pays for augmentation or embedding twice), a deterministic
micro-batching scheduler in front of the batch path, and request
telemetry.
"""

from repro.serve.cache import LruCache
from repro.serve.gateway import GatewayStats, PasGateway
from repro.serve.scheduler import BatchRecord, MicroBatcher, SchedulerStats
from repro.serve.types import ServeRequest, ServeResponse

__all__ = [
    "BatchRecord",
    "GatewayStats",
    "LruCache",
    "MicroBatcher",
    "PasGateway",
    "SchedulerStats",
    "ServeRequest",
    "ServeResponse",
]
