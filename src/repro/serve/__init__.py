"""Plug-and-play serving layer.

The paper positions PAS as a *system* that sits in front of any LLM
(§3.4 / Figure 1a).  This package is that system's serving shape: a gateway
that owns one trained PAS model and a pool of target-model clients, with
two cache tiers (complement LRU over an embedding memo — the same prompt
never pays for augmentation or embedding twice), a deterministic
micro-batching scheduler in front of the batch path, and request
telemetry.

Failure is a first-class outcome: every request put through the
non-strict API yields exactly one :class:`ServeResponse` whose ``status``
is ``ok``, ``degraded`` (augmentation failed, the raw prompt was served —
the plug-and-play fallback), or ``failed`` (no completion).  Faults are
injected with a seedable :class:`~repro.resilience.FaultPlan`, retries are
shaped by a :class:`~repro.resilience.RetryPolicy`, and per-model
:class:`~repro.resilience.CircuitBreaker`\\ s fail fast while a backend
misbehaves.

The stack scales horizontally *and elastically*: a deterministic
:class:`~repro.serve.router.Router` places requests over N gateway
replicas (consistent-hash affinity or least-loaded balance), enforces
per-tenant quotas/rate limits via :class:`~repro.serve.router.TenantPolicy`,
and fails over weighted :class:`~repro.serve.router.ModelPool`\\ s around
open circuit breakers.  Fleets change size while serving —
:meth:`Router.add_replica <repro.serve.router.Router.add_replica>` /
:meth:`Router.drain_replica <repro.serve.router.Router.drain_replica>`
move only ~1/N of hash-affine keys per membership change — and a
declarative :class:`~repro.serve.router.FleetPlan` (replica count,
:class:`~repro.serve.router.HedgePolicy` tail-latency hedging,
:class:`~repro.serve.router.FairnessPolicy` weighted-fair queueing)
reconciles against the live fleet via :meth:`Router.apply
<repro.serve.router.Router.apply>`.  One nested
:class:`~repro.serve.config.ServingConfig` describes the whole deployment
and round-trips losslessly through dicts:

    >>> from repro.serve import FleetPlan, HedgePolicy, ServingConfig
    >>> config = ServingConfig(
    ...     fleet=FleetPlan(replicas=2, hedge=HedgePolicy(after_ticks=12))
    ... )
    >>> restored = ServingConfig.from_dict(config.as_dict())
    >>> restored.fleet.replicas, restored.fleet.hedge.after_ticks
    (2, 12)
    >>> restored == config
    True

Serving can be *adaptive*: plug an
:class:`~repro.policy.AugmentationPolicy` into the gateway (or thread one
through ``Router(pas, config, policy=...)``) and every augmentable serve
routes through candidate → select → complete → judge → bandit update —
the policy learns per ``(category, tenant)`` which augmentation strategy
wins and records its choice in :attr:`ServeResponse.strategy
<repro.serve.types.ServeResponse.strategy>`.  Policy off is byte-identical
to the unpoliced stack.

Observability is woven through the whole path: pass
``obs=Observability.enabled()`` to the gateway (and scheduler) to get
per-request span traces on the logical clock, a shared metrics registry,
and a structured event log — all deterministic at a fixed seed, all free
when left at the :data:`~repro.obs.NULL_OBS` default.
"""

from repro.llm.types import build_messages
from repro.obs import NULL_OBS, Observability
from repro.policy import AugmentationPolicy, PolicyConfig
from repro.resilience import CircuitBreaker, FaultPlan, OutageWindow, RetryPolicy
from repro.serve.cache import LruCache
from repro.serve.config import ServingConfig
from repro.serve.engine import (
    SHED_POLICIES,
    EngineConfig,
    EngineResult,
    EngineStats,
    ServingEngine,
)
from repro.serve.gateway import (
    BatchPlan,
    GatewayConfig,
    GatewayStats,
    PasGateway,
    derive_stage_timings,
)
from repro.serve.router import (
    CACHE_SCOPES,
    FAIRNESS_MODES,
    HASH_KEYS,
    ROUTING_POLICIES,
    FairnessPolicy,
    FleetPlan,
    HedgePolicy,
    ModelPool,
    Router,
    RouterConfig,
    RouterStats,
    SharedLruCache,
    TenantPolicy,
)
from repro.serve.scheduler import BatchRecord, MicroBatcher, SchedulerStats
from repro.serve.traffic import (
    ARRIVAL_PROCESSES,
    TenantProfile,
    TimedRequest,
    TrafficConfig,
    TrafficGenerator,
)
from repro.serve.types import STATUSES, ServeRequest, ServeResponse

__all__ = [
    "ARRIVAL_PROCESSES",
    "AugmentationPolicy",
    "BatchPlan",
    "BatchRecord",
    "CACHE_SCOPES",
    "CircuitBreaker",
    "EngineConfig",
    "EngineResult",
    "EngineStats",
    "FAIRNESS_MODES",
    "FairnessPolicy",
    "FaultPlan",
    "FleetPlan",
    "GatewayConfig",
    "HedgePolicy",
    "GatewayStats",
    "HASH_KEYS",
    "LruCache",
    "MicroBatcher",
    "ModelPool",
    "NULL_OBS",
    "Observability",
    "OutageWindow",
    "PasGateway",
    "PolicyConfig",
    "ROUTING_POLICIES",
    "RetryPolicy",
    "Router",
    "RouterConfig",
    "RouterStats",
    "SHED_POLICIES",
    "STATUSES",
    "SchedulerStats",
    "ServeRequest",
    "ServeResponse",
    "ServingConfig",
    "ServingEngine",
    "SharedLruCache",
    "TenantPolicy",
    "TenantProfile",
    "TimedRequest",
    "TrafficConfig",
    "TrafficGenerator",
    "build_messages",
    "derive_stage_timings",
]
