"""Plug-and-play serving layer.

The paper positions PAS as a *system* that sits in front of any LLM
(§3.4 / Figure 1a).  This package is that system's serving shape: a gateway
that owns one trained PAS model and a pool of target-model clients, with a
complement cache (the same prompt never pays for augmentation twice) and
request telemetry.
"""

from repro.serve.cache import LruCache
from repro.serve.gateway import GatewayStats, PasGateway
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["LruCache", "PasGateway", "GatewayStats", "ServeRequest", "ServeResponse"]
