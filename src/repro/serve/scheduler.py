"""Deterministic micro-batching in front of the gateway's batch path.

``PasGateway.ask_batch`` amortises augmentation across a batch, but live
traffic arrives one request at a time.  The :class:`MicroBatcher` bridges
the two: requests are queued as they arrive and drained into a batch
handler when either

* the queue reaches ``max_batch`` requests (**size** trigger), or
* the oldest queued request has waited ``max_wait`` ticks (**wait**
  trigger).

"Time" is the repo's logical clock — one tick per :meth:`submit`, the
same convention :class:`~repro.serve.middleware.RateLimitMiddleware`
uses — so batch formation is a pure function of the request sequence:
no wall clock, no races, fully replayable in tests.  Because
``ask_batch`` is bit-identical to its scalar loop for *any* partition of
the request stream, the scheduler's outputs, gateway stats, and cache
state all match a direct ``ask_batch`` (or ``ask`` loop) over the same
sequence (``tests/test_serve_scheduler.py`` pins this).

Each drain appends a :class:`BatchRecord` with per-batch occupancy and
queueing-latency stats, the observability a batching tier needs to tune
its two knobs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["BatchRecord", "MicroBatcher", "SchedulerStats"]

Handler = Callable[[Sequence[ServeRequest]], "list[ServeResponse]"]


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one drained batch.

    ``n_ok`` / ``n_degraded`` / ``n_failed`` split the handler's responses
    by :attr:`~repro.serve.types.ServeResponse.status`, so a batching tier
    in front of a non-strict gateway sees degradation per batch.  Handlers
    that return fewer responses than requests (or plain objects without a
    ``status``) count the ones they do return, defaulting to ``ok``.
    """

    tick: int  #: logical time at which the batch drained
    size: int
    trigger: str  #: ``"size"``, ``"wait"``, or ``"flush"``
    occupancy: float  #: ``size / max_batch``
    mean_wait_ticks: float  #: mean submit-to-drain latency, in ticks
    max_wait_ticks: int
    n_ok: int = 0
    n_degraded: int = 0
    n_failed: int = 0


@dataclass
class SchedulerStats:
    """Cumulative scheduler accounting across all drained batches."""

    submitted: int = 0
    drained: int = 0
    batches: int = 0
    triggers: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.drained / self.batches if self.batches else 0.0


class MicroBatcher:
    """Queue requests and drain them into a batch handler deterministically.

    Parameters
    ----------
    handler:
        The batch endpoint, typically ``gateway.ask_batch``.  Called with
        the drained requests in arrival order; its return list is handed
        back from the :meth:`submit`/:meth:`flush` call that triggered
        the drain.  If it raises (a completion exhausting its retries),
        the drained batch is consumed and the exception propagates —
        exactly ``ask_batch``'s contract.
    max_batch:
        Size trigger: drain as soon as this many requests are queued.
    max_wait:
        Wait trigger: drain when the oldest queued request is this many
        ticks old.  The clock only advances on submissions, so a quiet
        stream must :meth:`flush` to drain its tail.
    """

    def __init__(self, handler: Handler, max_batch: int = 8, max_wait: int = 4):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 1:
            raise ValueError(f"max_wait must be >= 1, got {max_wait}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._clock = 0
        self._pending: list[tuple[int, ServeRequest]] = []
        self.records: list[BatchRecord] = []
        self.stats = SchedulerStats()

    @property
    def clock(self) -> int:
        """The logical time: how many requests have been submitted."""
        return self._clock

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, request: ServeRequest) -> list[ServeResponse]:
        """Enqueue one request; returns the batch it triggered, if any.

        Most submissions return ``[]`` (the request is parked); when the
        size or wait trigger fires, the whole queue drains and the
        responses — including earlier requests' — come back in arrival
        order.
        """
        self._clock += 1
        self._pending.append((self._clock, request))
        self.stats.submitted += 1
        if len(self._pending) >= self.max_batch:
            return self._drain("size")
        if self._clock - self._pending[0][0] >= self.max_wait:
            return self._drain("wait")
        return []

    def flush(self) -> list[ServeResponse]:
        """Drain whatever is queued (end of stream, or idle tail)."""
        if not self._pending:
            return []
        return self._drain("flush")

    def run(self, requests: Iterable[ServeRequest]) -> list[ServeResponse]:
        """Submit a whole stream and flush; responses in arrival order."""
        responses: list[ServeResponse] = []
        for request in requests:
            responses.extend(self.submit(request))
        responses.extend(self.flush())
        return responses

    def _drain(self, trigger: str) -> list[ServeResponse]:
        arrivals = [tick for tick, _ in self._pending]
        batch = [request for _, request in self._pending]
        self._pending = []
        responses = self._handler(batch)
        waits = [self._clock - tick for tick in arrivals]
        statuses = [getattr(response, "status", "ok") for response in responses]
        self.records.append(
            BatchRecord(
                tick=self._clock,
                size=len(batch),
                trigger=trigger,
                occupancy=len(batch) / self.max_batch,
                mean_wait_ticks=sum(waits) / len(waits),
                max_wait_ticks=max(waits),
                n_ok=statuses.count("ok"),
                n_degraded=statuses.count("degraded"),
                n_failed=statuses.count("failed"),
            )
        )
        self.stats.drained += len(batch)
        self.stats.batches += 1
        self.stats.triggers[trigger] = self.stats.triggers.get(trigger, 0) + 1
        return responses
