"""Deterministic micro-batching in front of the gateway's batch path.

``PasGateway.ask_batch`` amortises augmentation across a batch, but live
traffic arrives one request at a time.  The :class:`MicroBatcher` bridges
the two: requests are queued as they arrive and a batch becomes *ready*
when either

* the queue reaches ``max_batch`` requests (**size** trigger), or
* the oldest queued request has waited ``max_wait`` ticks (**wait**
  trigger).

"Time" is the repo's logical clock.  Submission advances it two ways:
the legacy :meth:`submit` (one tick per call, the convention
:class:`~repro.serve.middleware.RateLimitMiddleware` uses) and the
trace-driven :meth:`submit_at`, which stamps each request with an
explicit arrival tick — the form the event-loop
:class:`~repro.serve.engine.ServingEngine` and the
:class:`~repro.serve.traffic.TrafficGenerator` speak.  Either way batch
formation is a pure function of the timed request sequence: no wall
clock, no races, fully replayable in tests.  Because ``ask_batch`` is
bit-identical to its scalar loop for *any* partition of the request
stream, the scheduler's outputs, gateway stats, and cache state all
match a direct ``ask_batch`` (or ``ask`` loop) over the same sequence
(``tests/test_serve_scheduler.py`` pins this).

The batcher runs in one of two modes:

* **handler mode** (a drain handler was given): ready batches drain
  immediately into the handler — the pre-engine shape, still what
  :meth:`run_arrivals` uses (the one-shot ``run()`` shim it deprecated
  is gone; submit timed traces);
* **continuous mode** (``handler=None``): nothing drains by itself.
  The serving engine *pulls* with :meth:`take` as in-flight completion
  slots free up, so a ready batch can leave in capacity-sized slices
  instead of one one-shot list.

Each drain appends a :class:`BatchRecord` (the per-batch compatibility
view), feeds the same numbers into the metrics registry — batch-size /
occupancy / wait histograms, per-trigger counters that
:class:`SchedulerStats` reads back — and emits a ``batch.drain`` event
when an :class:`~repro.obs.Observability` bundle is attached.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from math import ceil

from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["BatchRecord", "MicroBatcher", "SchedulerStats"]

Handler = Callable[[Sequence[ServeRequest]], "list[ServeResponse]"]

#: Fixed buckets for the scheduler's histograms (sizes, occupancy, waits).
_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
_OCCUPANCY_BUCKETS = (0.25, 0.5, 0.75, 1.0)
_WAIT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)
#: Finer occupancy buckets for the dedicated scheduler-occupancy histogram
#: (the coarse 4-bucket one predates the continuous batcher and is kept
#: for compatibility).
_SCHED_OCCUPANCY_BUCKETS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one drained batch.

    ``n_ok`` / ``n_degraded`` / ``n_failed`` split the handler's responses
    by :attr:`~repro.serve.types.ServeResponse.status`, so a batching tier
    in front of a non-strict gateway sees degradation per batch.  Handlers
    that return fewer responses than requests (or plain objects without a
    ``status``) count the ones they do return, defaulting to ``ok``.

    Every field is also observed into the scheduler's metrics registry at
    drain time, so the record list and the registry histograms agree.
    """

    tick: int  #: logical time at which the batch drained
    size: int
    trigger: str  #: ``"size"``, ``"wait"``, or ``"flush"``
    occupancy: float  #: ``size / max_batch``
    mean_wait_ticks: float  #: mean submit-to-drain latency, in ticks
    max_wait_ticks: int
    n_ok: int = 0
    n_degraded: int = 0
    n_failed: int = 0


class SchedulerStats:
    """Cumulative scheduler accounting — a live view over the registry.

    Backed by ``pas_batch_submitted_total`` / ``pas_batch_drained_total``
    / ``pas_batches_total{trigger}``; the public fields match the
    pre-registry dataclass, and ``==`` compares the numbers (used by the
    scheduler-vs-direct parity tests).
    """

    __slots__ = ("_batcher",)

    def __init__(self, batcher: "MicroBatcher"):
        self._batcher = batcher

    @property
    def submitted(self) -> int:
        return int(self._batcher._m_submitted.total())

    @property
    def drained(self) -> int:
        return int(self._batcher._m_drained.total())

    @property
    def batches(self) -> int:
        return int(self._batcher._m_batches.total())

    @property
    def triggers(self) -> dict[str, int]:
        return {
            dict(key)["trigger"]: int(value)
            for key, value in self._batcher._m_batches.series().items()
        }

    @property
    def mean_batch_size(self) -> float:
        return self.drained / self.batches if self.batches else 0.0

    def _occupancies(self) -> list[float]:
        return [record.occupancy for record in self._batcher.records]

    @property
    def mean_occupancy(self) -> float:
        occ = self._occupancies()
        return sum(occ) / len(occ) if occ else 0.0

    @property
    def occupancy_p50(self) -> float:
        """Median per-batch occupancy (size / max_batch) across drains."""
        return _percentile(self._occupancies(), 50.0)

    @property
    def occupancy_p99(self) -> float:
        """99th-percentile per-batch occupancy across drains."""
        return _percentile(self._occupancies(), 99.0)

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order."""
        return {
            "submitted": self.submitted,
            "drained": self.drained,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "mean_occupancy": self.mean_occupancy,
            "occupancy_p50": self.occupancy_p50,
            "occupancy_p99": self.occupancy_p99,
            "triggers": dict(sorted(self.triggers.items())),
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SchedulerStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        return f"SchedulerStats({self.as_dict()!r})"


class MicroBatcher:
    """Queue requests and batch them deterministically.

    Parameters
    ----------
    handler:
        The batch endpoint, typically ``gateway.ask_batch``.  Called with
        the drained requests in arrival order; its return list is handed
        back from the :meth:`submit`/:meth:`flush` call that triggered
        the drain.  If it raises (a completion exhausting its retries),
        the drained batch is consumed and the exception propagates —
        exactly ``ask_batch``'s contract.  Pass ``None`` for **continuous
        mode**: submissions only queue, and the owner (the serving
        engine) pulls ready batches with :meth:`take` as capacity frees.
    max_batch:
        Size trigger: a batch is ready as soon as this many requests are
        queued.
    max_wait:
        Wait trigger: a batch is ready when the oldest queued request is
        this many ticks old.  The clock only advances on submissions (or
        on :meth:`take`'s ``now``), so a quiet handler-mode stream must
        :meth:`flush` to drain its tail.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  Live metrics
        land batch size / occupancy / wait histograms there and every
        drain emits a ``batch.drain`` event (stamped with the drain tick
        in its attributes — the batcher never rebinds the event log's
        clock, so a bundle shared with a gateway keeps the gateway's).
        Stats counters always work, registry or not.
    """

    def __init__(
        self,
        handler: Handler | None,
        max_batch: int = 8,
        max_wait: int = 4,
        obs: Observability = NULL_OBS,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 1:
            raise ValueError(f"max_wait must be >= 1, got {max_wait}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.obs = obs
        self._clock = 0
        self._pending: list[tuple[int, ServeRequest]] = []
        self.records: list[BatchRecord] = []
        # Stats source of truth: the user's registry when live, else private.
        self._registry: MetricsRegistry = (
            obs.metrics if obs.metrics.enabled else MetricsRegistry()
        )
        self._m_submitted = self._registry.counter(
            "pas_batch_submitted_total", help="Requests submitted to the batcher."
        )
        self._m_drained = self._registry.counter(
            "pas_batch_drained_total", help="Requests drained into the handler."
        )
        self._m_batches = self._registry.counter(
            "pas_batches_total", help="Drained batches by trigger."
        )
        self._m_size = self._registry.histogram(
            "pas_batch_size", buckets=_SIZE_BUCKETS, help="Drained batch sizes."
        )
        self._m_occupancy = self._registry.histogram(
            "pas_batch_occupancy",
            buckets=_OCCUPANCY_BUCKETS,
            help="Batch size over max_batch at drain.",
        )
        self._m_sched_occupancy = self._registry.histogram(
            "pas_scheduler_occupancy",
            buckets=_SCHED_OCCUPANCY_BUCKETS,
            help="Batch size over max_batch at drain (fine-grained).",
        )
        self._m_wait = self._registry.histogram(
            "pas_batch_wait_ticks",
            buckets=_WAIT_BUCKETS,
            help="Per-request submit-to-drain wait, in logical ticks.",
        )
        self.stats = SchedulerStats(self)

    @property
    def clock(self) -> int:
        """The logical time of the latest submission (or pull)."""
        return self._clock

    @property
    def continuous(self) -> bool:
        """True when this batcher is pulled via :meth:`take` (no handler)."""
        return self._handler is None

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def oldest_tick(self) -> int | None:
        """Arrival tick of the oldest queued request (None when empty)."""
        return self._pending[0][0] if self._pending else None

    def submit(self, request: ServeRequest) -> list[ServeResponse]:
        """Enqueue one request on the one-tick-per-call clock.

        Equivalent to ``submit_at(clock + 1, request)``.  In handler mode
        most submissions return ``[]`` (the request is parked); when the
        size or wait trigger fires, the whole queue drains and the
        responses — including earlier requests' — come back in arrival
        order.  In continuous mode always returns ``[]``.
        """
        return self.submit_at(self._clock + 1, request)

    def submit_at(self, tick: int, request: ServeRequest) -> list[ServeResponse]:
        """Enqueue one request arriving at an explicit logical tick.

        Ticks must be non-decreasing (simultaneous arrivals may share
        one).  This is the trace-driven entry point: arrival times come
        from a :class:`~repro.serve.traffic.TrafficGenerator` trace
        instead of being invented one-per-call, so wait triggers reflect
        the workload's real gaps.  Trigger behaviour per mode matches
        :meth:`submit`.
        """
        if tick < self._clock:
            raise ValueError(
                f"submission ticks must be non-decreasing: got {tick} after {self._clock}"
            )
        self._clock = tick
        self._pending.append((tick, request))
        self._m_submitted.inc()
        if self._handler is None:
            return []
        if len(self._pending) >= self.max_batch:
            return self._drain("size")
        if self._clock - self._pending[0][0] >= self.max_wait:
            return self._drain("wait")
        return []

    def ready(self, now: int) -> str | None:
        """The trigger a batch would drain under at ``now``, or ``None``.

        ``"size"`` wins when the queue holds a full batch; otherwise
        ``"wait"`` once the oldest request has aged ``max_wait`` ticks.
        """
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return "size"
        if now - self._pending[0][0] >= self.max_wait:
            return "wait"
        return None

    def take(
        self, now: int, limit: int | None = None, force: bool = False
    ) -> list[ServeRequest]:
        """Pull up to ``min(max_batch, limit)`` ready requests at ``now``.

        The continuous-mode drain: the serving engine calls this whenever
        in-flight slots free up, so a ready batch can leave in
        capacity-sized slices rather than all at once.  Returns ``[]``
        when nothing is ready (or ``limit`` is 0).  ``force=True`` drains
        regardless of triggers (end of trace), recorded as a ``"flush"``
        batch.  Each pull appends a :class:`BatchRecord` whose outcome
        split is all-zero — outcomes belong to whoever serves the batch.
        """
        if limit is not None and limit <= 0:
            return []
        trigger = self.ready(now)
        if trigger is None:
            if not (force and self._pending):
                return []
            trigger = "flush"
        self._clock = max(self._clock, now)
        n = len(self._pending) if limit is None else min(limit, len(self._pending))
        n = min(n, self.max_batch)
        taken, self._pending = self._pending[:n], self._pending[n:]
        self._record(trigger, [tick for tick, _ in taken], statuses=[])
        return [request for _, request in taken]

    def flush(self) -> list[ServeResponse]:
        """Drain whatever is queued (end of stream, or idle tail)."""
        if self._handler is None:
            raise RuntimeError(
                "flush() needs a handler; continuous-mode batchers are "
                "drained with take(now, force=True)"
            )
        if not self._pending:
            return []
        return self._drain("flush")

    def run_arrivals(
        self, arrivals: Iterable[tuple[int, ServeRequest]]
    ) -> list[ServeResponse]:
        """Submit a timed ``(tick, request)`` stream and flush the tail.

        Responses come back in arrival order.  Handler mode only — the
        synchronous counterpart of feeding the same trace to the serving
        engine at ``max_inflight=1``.
        """
        responses: list[ServeResponse] = []
        for tick, request in arrivals:
            responses.extend(self.submit_at(tick, request))
        responses.extend(self.flush())
        return responses

    def _record(
        self, trigger: str, arrival_ticks: list[int], statuses: list[str]
    ) -> BatchRecord:
        """Append and observe one drained batch's accounting."""
        waits = [self._clock - tick for tick in arrival_ticks]
        record = BatchRecord(
            tick=self._clock,
            size=len(arrival_ticks),
            trigger=trigger,
            occupancy=len(arrival_ticks) / self.max_batch,
            mean_wait_ticks=sum(waits) / len(waits),
            max_wait_ticks=max(waits),
            n_ok=statuses.count("ok"),
            n_degraded=statuses.count("degraded"),
            n_failed=statuses.count("failed"),
        )
        self.records.append(record)
        self._m_drained.inc(record.size)
        self._m_batches.inc(trigger=trigger)
        self._m_size.observe(record.size)
        self._m_occupancy.observe(record.occupancy)
        self._m_sched_occupancy.observe(record.occupancy)
        for wait in waits:
            self._m_wait.observe(wait)
        self.obs.events.emit(
            "batch.drain",
            tick=record.tick,
            trigger=trigger,
            size=record.size,
            occupancy=record.occupancy,
            mean_wait_ticks=record.mean_wait_ticks,
            max_wait_ticks=record.max_wait_ticks,
            n_ok=record.n_ok,
            n_degraded=record.n_degraded,
            n_failed=record.n_failed,
        )
        return record

    def _drain(self, trigger: str) -> list[ServeResponse]:
        arrivals = [tick for tick, _ in self._pending]
        batch = [request for _, request in self._pending]
        self._pending = []
        responses = self._handler(batch)
        statuses = [getattr(response, "status", "ok") for response in responses]
        self._record(trigger, arrivals, statuses)
        return responses
