"""Deterministic micro-batching in front of the gateway's batch path.

``PasGateway.ask_batch`` amortises augmentation across a batch, but live
traffic arrives one request at a time.  The :class:`MicroBatcher` bridges
the two: requests are queued as they arrive and drained into a batch
handler when either

* the queue reaches ``max_batch`` requests (**size** trigger), or
* the oldest queued request has waited ``max_wait`` ticks (**wait**
  trigger).

"Time" is the repo's logical clock — one tick per :meth:`submit`, the
same convention :class:`~repro.serve.middleware.RateLimitMiddleware`
uses — so batch formation is a pure function of the request sequence:
no wall clock, no races, fully replayable in tests.  Because
``ask_batch`` is bit-identical to its scalar loop for *any* partition of
the request stream, the scheduler's outputs, gateway stats, and cache
state all match a direct ``ask_batch`` (or ``ask`` loop) over the same
sequence (``tests/test_serve_scheduler.py`` pins this).

Each drain appends a :class:`BatchRecord` (the per-batch compatibility
view), feeds the same numbers into the metrics registry — batch-size /
occupancy / wait histograms, per-trigger counters that
:class:`SchedulerStats` reads back — and emits a ``batch.drain`` event
when an :class:`~repro.obs.Observability` bundle is attached.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["BatchRecord", "MicroBatcher", "SchedulerStats"]

Handler = Callable[[Sequence[ServeRequest]], "list[ServeResponse]"]

#: Fixed buckets for the scheduler's histograms (sizes, occupancy, waits).
_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
_OCCUPANCY_BUCKETS = (0.25, 0.5, 0.75, 1.0)
_WAIT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class BatchRecord:
    """Accounting for one drained batch.

    ``n_ok`` / ``n_degraded`` / ``n_failed`` split the handler's responses
    by :attr:`~repro.serve.types.ServeResponse.status`, so a batching tier
    in front of a non-strict gateway sees degradation per batch.  Handlers
    that return fewer responses than requests (or plain objects without a
    ``status``) count the ones they do return, defaulting to ``ok``.

    Every field is also observed into the scheduler's metrics registry at
    drain time, so the record list and the registry histograms agree.
    """

    tick: int  #: logical time at which the batch drained
    size: int
    trigger: str  #: ``"size"``, ``"wait"``, or ``"flush"``
    occupancy: float  #: ``size / max_batch``
    mean_wait_ticks: float  #: mean submit-to-drain latency, in ticks
    max_wait_ticks: int
    n_ok: int = 0
    n_degraded: int = 0
    n_failed: int = 0


class SchedulerStats:
    """Cumulative scheduler accounting — a live view over the registry.

    Backed by ``pas_batch_submitted_total`` / ``pas_batch_drained_total``
    / ``pas_batches_total{trigger}``; the public fields match the
    pre-registry dataclass, and ``==`` compares the numbers (used by the
    scheduler-vs-direct parity tests).
    """

    __slots__ = ("_batcher",)

    def __init__(self, batcher: "MicroBatcher"):
        self._batcher = batcher

    @property
    def submitted(self) -> int:
        return int(self._batcher._m_submitted.total())

    @property
    def drained(self) -> int:
        return int(self._batcher._m_drained.total())

    @property
    def batches(self) -> int:
        return int(self._batcher._m_batches.total())

    @property
    def triggers(self) -> dict[str, int]:
        return {
            dict(key)["trigger"]: int(value)
            for key, value in self._batcher._m_batches.series().items()
        }

    @property
    def mean_batch_size(self) -> float:
        return self.drained / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order."""
        return {
            "submitted": self.submitted,
            "drained": self.drained,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "triggers": dict(sorted(self.triggers.items())),
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SchedulerStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        return f"SchedulerStats({self.as_dict()!r})"


class MicroBatcher:
    """Queue requests and drain them into a batch handler deterministically.

    Parameters
    ----------
    handler:
        The batch endpoint, typically ``gateway.ask_batch``.  Called with
        the drained requests in arrival order; its return list is handed
        back from the :meth:`submit`/:meth:`flush` call that triggered
        the drain.  If it raises (a completion exhausting its retries),
        the drained batch is consumed and the exception propagates —
        exactly ``ask_batch``'s contract.
    max_batch:
        Size trigger: drain as soon as this many requests are queued.
    max_wait:
        Wait trigger: drain when the oldest queued request is this many
        ticks old.  The clock only advances on submissions, so a quiet
        stream must :meth:`flush` to drain its tail.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  Live metrics
        land batch size / occupancy / wait histograms there and every
        drain emits a ``batch.drain`` event (stamped with the drain tick
        in its attributes — the batcher never rebinds the event log's
        clock, so a bundle shared with a gateway keeps the gateway's).
        Stats counters always work, registry or not.
    """

    def __init__(
        self,
        handler: Handler,
        max_batch: int = 8,
        max_wait: int = 4,
        obs: Observability = NULL_OBS,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 1:
            raise ValueError(f"max_wait must be >= 1, got {max_wait}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.obs = obs
        self._clock = 0
        self._pending: list[tuple[int, ServeRequest]] = []
        self.records: list[BatchRecord] = []
        # Stats source of truth: the user's registry when live, else private.
        self._registry: MetricsRegistry = (
            obs.metrics if obs.metrics.enabled else MetricsRegistry()
        )
        self._m_submitted = self._registry.counter(
            "pas_batch_submitted_total", help="Requests submitted to the batcher."
        )
        self._m_drained = self._registry.counter(
            "pas_batch_drained_total", help="Requests drained into the handler."
        )
        self._m_batches = self._registry.counter(
            "pas_batches_total", help="Drained batches by trigger."
        )
        self._m_size = self._registry.histogram(
            "pas_batch_size", buckets=_SIZE_BUCKETS, help="Drained batch sizes."
        )
        self._m_occupancy = self._registry.histogram(
            "pas_batch_occupancy",
            buckets=_OCCUPANCY_BUCKETS,
            help="Batch size over max_batch at drain.",
        )
        self._m_wait = self._registry.histogram(
            "pas_batch_wait_ticks",
            buckets=_WAIT_BUCKETS,
            help="Per-request submit-to-drain wait, in logical ticks.",
        )
        self.stats = SchedulerStats(self)

    @property
    def clock(self) -> int:
        """The logical time: how many requests have been submitted."""
        return self._clock

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, request: ServeRequest) -> list[ServeResponse]:
        """Enqueue one request; returns the batch it triggered, if any.

        Most submissions return ``[]`` (the request is parked); when the
        size or wait trigger fires, the whole queue drains and the
        responses — including earlier requests' — come back in arrival
        order.
        """
        self._clock += 1
        self._pending.append((self._clock, request))
        self._m_submitted.inc()
        if len(self._pending) >= self.max_batch:
            return self._drain("size")
        if self._clock - self._pending[0][0] >= self.max_wait:
            return self._drain("wait")
        return []

    def flush(self) -> list[ServeResponse]:
        """Drain whatever is queued (end of stream, or idle tail)."""
        if not self._pending:
            return []
        return self._drain("flush")

    def run(self, requests: Iterable[ServeRequest]) -> list[ServeResponse]:
        """Submit a whole stream and flush; responses in arrival order."""
        responses: list[ServeResponse] = []
        for request in requests:
            responses.extend(self.submit(request))
        responses.extend(self.flush())
        return responses

    def _drain(self, trigger: str) -> list[ServeResponse]:
        arrivals = [tick for tick, _ in self._pending]
        batch = [request for _, request in self._pending]
        self._pending = []
        responses = self._handler(batch)
        waits = [self._clock - tick for tick in arrivals]
        statuses = [getattr(response, "status", "ok") for response in responses]
        record = BatchRecord(
            tick=self._clock,
            size=len(batch),
            trigger=trigger,
            occupancy=len(batch) / self.max_batch,
            mean_wait_ticks=sum(waits) / len(waits),
            max_wait_ticks=max(waits),
            n_ok=statuses.count("ok"),
            n_degraded=statuses.count("degraded"),
            n_failed=statuses.count("failed"),
        )
        self.records.append(record)
        self._m_drained.inc(record.size)
        self._m_batches.inc(trigger=trigger)
        self._m_size.observe(record.size)
        self._m_occupancy.observe(record.occupancy)
        for wait in waits:
            self._m_wait.observe(wait)
        self.obs.events.emit(
            "batch.drain",
            tick=record.tick,
            trigger=trigger,
            size=record.size,
            occupancy=record.occupancy,
            mean_wait_ticks=record.mean_wait_ticks,
            max_wait_ticks=record.max_wait_ticks,
            n_ok=record.n_ok,
            n_degraded=record.n_degraded,
            n_failed=record.n_failed,
        )
        return responses
