"""One nested configuration surface for the whole serving stack.

:class:`ServingConfig` mirrors :class:`~repro.pipeline.config.PipelineConfig`
on the serving side: one frozen dataclass with nested per-layer sections —
``router`` (:class:`~repro.serve.router.RouterConfig`), ``gateway``
(:class:`~repro.serve.gateway.GatewayConfig`), ``engine``
(:class:`~repro.serve.engine.EngineConfig`), ``traffic``
(:class:`~repro.serve.traffic.TrafficConfig`), and ``fleet``
(:class:`~repro.serve.router.FleetPlan`: declarative replica count plus
hedge/fairness/spike policy) — that round-trips losslessly through
:meth:`ServingConfig.as_dict` / :meth:`ServingConfig.from_dict`, fault
plans, retry policies, latency models, tenant profiles/policies, model
pools, and fleet plans included.

Both :class:`~repro.serve.router.Router` and
:class:`~repro.serve.engine.ServingEngine` accept a ``ServingConfig``
directly (each reads its own section), so one dict describes one
deployment end to end::

    config = ServingConfig(
        router=RouterConfig(n_replicas=4, policy="least_loaded"),
        gateway=GatewayConfig(seed=5),
        engine=EngineConfig(max_inflight=8),
        traffic=TrafficConfig(n_requests=1000, process="diurnal"),
        fleet=FleetPlan(replicas=4, hedge=HedgePolicy(after_ticks=12)),
    )
    router = Router(pas, config)
    result = ServingEngine(router, config).run(
        TrafficGenerator(prompts, config.traffic).trace()
    )

Later, ``router.apply(new_config.fleet)`` reconciles the live fleet with
an updated plan — scale-out, scale-in, and policy swaps all ride the
same declarative JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.policy.policy import PolicyConfig
from repro.serve.engine import EngineConfig
from repro.serve.gateway import GatewayConfig
from repro.serve.router import FleetPlan, RouterConfig
from repro.serve.traffic import TrafficConfig
from repro.utils.serialize import register

__all__ = ["ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Every knob of the serving stack, in one place.

    Each section validates itself at construction; :meth:`validate` adds
    the cross-section checks no single section can see.
    """

    router: RouterConfig = field(default_factory=RouterConfig)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    fleet: FleetPlan = field(default_factory=FleetPlan)

    def validate(self) -> None:
        """Cross-section consistency checks (sections self-validate).

        A :class:`~repro.serve.router.TenantPolicy` for a tenant the
        traffic section never emits is almost certainly a typo'd name, as
        is a traffic model mix naming a pool the router doesn't define
        while pools are in play, or a WFQ weight for a tenant no traffic
        profile produces.  An enabled ``policy`` section must pin its
        reward judge's seed (:meth:`~repro.policy.PolicyConfig.validate`),
        and a hedge policy needs a fleet of at least two replicas to race
        against.
        """
        tenant_names = {profile.name for profile in self.traffic.tenants}
        for policy in self.router.tenants:
            if policy.tenant not in tenant_names:
                raise ConfigError(
                    f"router has a TenantPolicy for {policy.tenant!r} but the "
                    f"traffic section only emits tenants {sorted(tenant_names)}"
                )
        if self.fleet.hedge is not None:
            effective = (
                self.fleet.replicas
                if self.fleet.replicas is not None
                else self.router.n_replicas
            )
            if effective < 2:
                raise ConfigError(
                    "fleet.hedge needs at least 2 replicas to race against; "
                    f"the plan resolves to {effective}"
                )
        if self.fleet.fairness.mode == "wfq" and tenant_names:
            for tenant, _ in self.fleet.fairness.weights:
                if tenant not in tenant_names:
                    raise ConfigError(
                        f"fleet.fairness weights tenant {tenant!r} but the "
                        f"traffic section only emits {sorted(tenant_names)}"
                    )
        self.policy.validate()

    def as_dict(self) -> dict:
        """JSON-safe dict: ``ServingConfig.from_dict(c.as_dict()) == c``."""
        return {
            "router": self.router.as_dict(),
            "gateway": self.gateway.as_dict(),
            "engine": self.engine.as_dict(),
            "traffic": self.traffic.as_dict(),
            "policy": self.policy.as_dict(),
            "fleet": self.fleet.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingConfig":
        """Inverse of :meth:`as_dict` (lossless, JSON-safe).  ``policy``
        and ``fleet`` are optional on the way in — pre-policy dicts load
        as policy-off, pre-fleet dicts as a leave-alone default plan."""
        return cls(
            router=RouterConfig.from_dict(data["router"]),
            gateway=GatewayConfig.from_dict(data["gateway"]),
            engine=EngineConfig.from_dict(data["engine"]),
            traffic=TrafficConfig.from_dict(data["traffic"]),
            policy=(
                PolicyConfig()
                if data.get("policy") is None
                else PolicyConfig.from_dict(data["policy"])
            ),
            fleet=(
                FleetPlan()
                if data.get("fleet") is None
                else FleetPlan.from_dict(data["fleet"])
            ),
        )


register(ServingConfig)
