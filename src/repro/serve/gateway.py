"""The PAS gateway: one trained augmenter in front of many target models.

This is the deployment shape the paper's Figure 1(a) draws: user prompts
enter, PAS complements them, the chosen target LLM answers the concatenated
prompt.  The gateway adds what a production front-end needs —

* lazy per-model :class:`~repro.llm.api.ChatClient` construction with a
  shared retry/budget policy,
* two tiers of caching: an LRU complement cache keyed by prompt text, and
  under it an embedding memo cache so complement-cache misses that
  re-augment a prompt skip re-embedding it,
* **outcome-based serving**: :meth:`PasGateway.ask` / :meth:`ask_batch`
  return one :class:`~repro.serve.types.ServeResponse` per request instead
  of raising — augmentation failures *degrade* to completing the raw
  prompt (the plug-and-play fallback: the user always gets an answer) and
  completion failures come back as ``failed`` responses.  ``strict=True``
  restores the raising behaviour for callers that want exceptions,
* per-model **circuit breakers** (closed → open after N consecutive
  completion failures → half-open probe on the logical clock) that fail
  fast while a backend is down,
* cumulative :class:`GatewayStats` for observability — outcome counts,
  retry/backoff totals, breaker states — with optional per-stage
  wall-clock timings (:meth:`PasGateway.enable_stage_timings`).

Message construction follows the library-wide
:func:`~repro.llm.types.build_messages` convention (prompt as the ``user``
turn, complement as a preceding ``system`` turn).
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.pas import PasModel
from repro.errors import AugmentationError, CircuitOpenError, ReproError, UnknownModelError
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM
from repro.llm.types import build_messages
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy, augment_fault
from repro.serve.cache import LruCache
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["GatewayConfig", "GatewayStats", "PasGateway", "build_messages"]

#: Stage keys reported by :meth:`PasGateway.enable_stage_timings`.
STAGES = ("augment", "cache", "completion", "stats")


@dataclass(frozen=True)
class GatewayConfig:
    """Everything configurable about a :class:`PasGateway`.

    ``cache_size`` bounds the complement LRU (prompt → complement);
    ``embed_cache_size`` bounds the embedding memo tier beneath it (``0``
    disables the tier).  ``failure_rate`` / ``max_retries`` configure the
    per-model :class:`~repro.llm.api.ChatClient`\\ s; ``seed`` salts the
    simulated engines.  ``strict`` picks the default serving mode
    (``False``: every request yields a response; ``True``: failures
    raise).  ``fault_plan`` / ``retry_policy`` are injected into every
    client (and the fault plan into augmentation); ``breaker_threshold``
    consecutive completion failures open a model's circuit, which
    half-opens for a probe after ``breaker_recovery_ticks`` on the
    gateway's logical clock.
    """

    cache_size: int = 1024
    embed_cache_size: int = 1024
    failure_rate: float = 0.0
    max_retries: int = 3
    seed: int = 0
    strict: bool = False
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    breaker_threshold: int = 5
    breaker_recovery_ticks: int = 16


#: The flat ``PasGateway.__init__`` kwargs that pre-date :class:`GatewayConfig`.
_DEPRECATED_KWARGS = ("cache_size", "embed_cache_size", "failure_rate", "max_retries", "seed")


@dataclass
class GatewayStats:
    """Cumulative request accounting.

    ``requests`` counts every request the gateway attempted; ``failures``
    counts the ones that produced **no answer** — completion retries
    exhausted, deadline budget blown, or the model's circuit breaker open
    — so ``requests - failures`` is the number *served* (also available as
    :attr:`served`).  ``degraded`` counts served requests whose
    augmentation failed and fell back to the raw prompt; degraded
    responses are answers, so they are **not** failures.  ``per_model``
    mirrors ``requests`` per target model (attempts, served *and* failed);
    ``failures_per_model`` mirrors ``failures``, so the served count per
    model is their difference.  ``embed_cache_hits`` /
    ``embed_cache_misses`` track the embedding memo tier under the
    complement LRU (a hit means an augmentation skipped re-embedding).
    ``retries`` totals failed completion attempts across all model
    clients, ``backoff_ticks`` the logical-time pauses their retry
    policies inserted; ``breaker_state`` / ``breaker_trips`` snapshot each
    model's circuit (state string, and how often it opened).
    """

    requests: int = 0
    augmented: int = 0
    cache_hits: int = 0
    failures: int = 0
    degraded: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    embed_cache_hits: int = 0
    embed_cache_misses: int = 0
    retries: int = 0
    backoff_ticks: float = 0.0
    per_model: dict[str, int] = field(default_factory=dict)
    failures_per_model: dict[str, int] = field(default_factory=dict)
    breaker_state: dict[str, str] = field(default_factory=dict)
    breaker_trips: dict[str, int] = field(default_factory=dict)

    @property
    def served(self) -> int:
        """Requests that got an answer (``ok`` + ``degraded``)."""
        return self.requests - self.failures

    @property
    def augmentation_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.augmented / self.requests

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (for structured export)."""
        return {
            "requests": self.requests,
            "served": self.served,
            "failures": self.failures,
            "degraded": self.degraded,
            "augmented": self.augmented,
            "augmentation_rate": self.augmentation_rate,
            "cache_hits": self.cache_hits,
            "embed_cache_hits": self.embed_cache_hits,
            "embed_cache_misses": self.embed_cache_misses,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "retries": self.retries,
            "backoff_ticks": self.backoff_ticks,
            "per_model": dict(sorted(self.per_model.items())),
            "failures_per_model": dict(sorted(self.failures_per_model.items())),
            "breaker_state": dict(sorted(self.breaker_state.items())),
            "breaker_trips": dict(sorted(self.breaker_trips.items())),
        }


class _StageClock:
    """Accumulate elapsed wall time into per-stage buckets via ``lap``."""

    __slots__ = ("_timings", "_last")

    def __init__(self, timings: dict[str, float]):
        self._timings = timings
        self._last = time.perf_counter()

    def lap(self, stage: str) -> None:
        now = time.perf_counter()
        self._timings[stage] += now - self._last
        self._last = now


class _NullClock:
    """No-op stand-in when stage timing is disabled."""

    __slots__ = ()

    def lap(self, stage: str) -> None:
        pass


_NULL_CLOCK = _NullClock()

_EMPTY: frozenset[str] = frozenset()


class PasGateway:
    """Serve augmented completions for any registered target model.

    Configure with a :class:`GatewayConfig` (``PasGateway(pas, config=...)``).
    The pre-config flat kwargs (``cache_size``, ``embed_cache_size``,
    ``failure_rate``, ``max_retries``, ``seed``) still work but emit a
    :class:`DeprecationWarning`.

    Both caches are transparent: cached values are bit-identical to
    recomputation.  The serving API is outcome-based — see :meth:`ask`.
    """

    def __init__(
        self,
        pas: PasModel,
        config: GatewayConfig | None = None,
        **deprecated,
    ):
        unknown = set(deprecated) - set(_DEPRECATED_KWARGS)
        if unknown:
            raise TypeError(
                f"PasGateway() got unexpected keyword arguments {sorted(unknown)}"
            )
        if deprecated:
            warnings.warn(
                "PasGateway flat kwargs "
                f"({', '.join(sorted(deprecated))}) are deprecated; pass "
                "PasGateway(pas, config=GatewayConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(config or GatewayConfig(), **deprecated)
        self.config = config or GatewayConfig()
        self.pas = pas
        self.seed = int(self.config.seed)
        self._clock = 0
        self._clients: dict[str, ChatClient] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._complement_cache: LruCache[str, str] = LruCache(
            capacity=self.config.cache_size
        )
        self._embed_cache: LruCache[str, np.ndarray] | None = (
            LruCache(capacity=self.config.embed_cache_size)
            if self.config.embed_cache_size > 0
            else None
        )
        self.stats = GatewayStats()
        self.stage_timings: dict[str, float] | None = None

    @property
    def clock(self) -> int:
        """Logical time: how many requests this gateway has attempted."""
        return self._clock

    def enable_stage_timings(self) -> dict[str, float]:
        """Turn on per-stage wall-clock accounting and return the buckets.

        Every subsequent request accumulates elapsed seconds into
        ``{"augment", "cache", "completion", "stats"}`` — augmentation
        compute, cache bookkeeping (both tiers), target-model
        completions, and stats/response assembly.  Timing never touches
        results; it only reads the clock between stages.
        """
        if self.stage_timings is None:
            self.stage_timings = {stage: 0.0 for stage in STAGES}
        return self.stage_timings

    def _stage_clock(self) -> _StageClock | _NullClock:
        if self.stage_timings is None:
            return _NULL_CLOCK
        return _StageClock(self.stage_timings)

    def client_for(self, model: str) -> ChatClient:
        """The (lazily created) client serving one target model."""
        if model not in self._clients:
            engine = SimulatedLLM(model, seed=self.seed)  # raises for unknown names
            self._clients[model] = ChatClient(
                engine=engine,
                failure_rate=self.config.failure_rate,
                max_retries=self.config.max_retries,
                fault_plan=self.config.fault_plan,
                retry_policy=self.config.retry_policy,
                clock=lambda: self._clock,
            )
        return self._clients[model]

    def breaker_for(self, model: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one target model."""
        if model not in self._breakers:
            self._breakers[model] = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                recovery_ticks=self.config.breaker_recovery_ticks,
            )
        return self._breakers[model]

    def _complement(
        self,
        prompt: str,
        precomputed: dict[str, tuple[str, np.ndarray | None]] | None,
        clock: _StageClock | _NullClock,
        degraded: frozenset[str] | set[str] = _EMPTY,
    ) -> tuple[str, bool]:
        cached = self._complement_cache.get(prompt)
        if cached is not None:
            clock.lap("cache")
            return cached, True
        if prompt in degraded:
            # Replay of a fault the batch planner already detected; the
            # scalar path raises the identical error out of augment().
            clock.lap("cache")
            raise augment_fault(prompt)
        if precomputed is not None and prompt in precomputed:
            complement, embedding = precomputed[prompt]
            if self._embed_cache is not None:
                # Replay the embedding-tier touches the scalar augment()
                # would make: one get, and on a miss a put of the same
                # vector (held from planning, or recomputed for prompts
                # whose complement was held from the LRU peek).
                if self._embed_cache.get(prompt) is None:
                    if embedding is None:
                        embedding = self.pas.embed_prompts([prompt])[0]
                    self._embed_cache.put(prompt, embedding)
            clock.lap("cache")
        else:
            clock.lap("cache")
            complement = self.pas.augment(
                prompt,
                embed_cache=self._embed_cache,
                fault_plan=self.config.fault_plan,
            )
            clock.lap("augment")
        self._complement_cache.put(prompt, complement)
        clock.lap("cache")
        return complement, False

    def ask(self, request: ServeRequest, *, strict: bool | None = None) -> ServeResponse:
        """Serve one request end to end, returning a structured outcome.

        Non-strict (the default, ``config.strict=False``): always returns
        a :class:`~repro.serve.types.ServeResponse` — ``ok`` on the happy
        path, ``degraded`` when augmentation failed and the *raw prompt*
        was completed instead (plug-and-play: the original prompt is
        always a valid input), ``failed`` when no completion could be
        produced (retries exhausted, deadline blown, or circuit open);
        failed responses carry the error string and the attempt count.

        Strict (``strict=True``): preserves the historical contract — the
        underlying :class:`~repro.errors.ReproError` propagates.  Either
        way the request, its model, and a :attr:`GatewayStats.failures`
        tick are recorded before a failure surfaces.

        An unknown model name raises :class:`~repro.errors.UnknownModelError`
        in strict mode and yields a ``failed`` response otherwise.
        """
        return self._serve(request, None, strict=self._strictness(strict))

    def _strictness(self, strict: bool | None) -> bool:
        return self.config.strict if strict is None else strict

    def _record_failure(self, model: str) -> None:
        self.stats.requests += 1
        self.stats.failures += 1
        self.stats.per_model[model] = self.stats.per_model.get(model, 0) + 1
        self.stats.failures_per_model[model] = (
            self.stats.failures_per_model.get(model, 0) + 1
        )
        self._sync_embed_stats()
        self._sync_resilience_stats()

    def _failed_response(
        self, request: ServeRequest, complement: str, was_cached: bool, error: Exception
    ) -> ServeResponse:
        return ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response="",
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=0,
            completion_tokens=0,
            status="failed",
            error=f"{type(error).__name__}: {error}",
            attempts=getattr(error, "attempts", 0),
        )

    def _serve(
        self,
        request: ServeRequest,
        precomputed: dict[str, tuple[str, np.ndarray | None]] | None,
        *,
        strict: bool,
        degraded: frozenset[str] | set[str] = _EMPTY,
    ) -> ServeResponse:
        clock = self._stage_clock()
        self._clock += 1
        try:
            client = self.client_for(request.model)
        except UnknownModelError as error:
            self._record_failure(request.model)
            if strict:
                raise
            return self._failed_response(request, "", False, error)
        breaker = self.breaker_for(request.model)
        clock.lap("completion")

        if not breaker.allow(self._clock):
            self._record_failure(request.model)
            error = CircuitOpenError(
                f"circuit open for model {request.model!r}: "
                f"{breaker.consecutive_failures} consecutive failures, "
                f"probe at tick {(breaker.opened_at or 0) + breaker.recovery_ticks}"
            )
            if strict:
                raise error
            return self._failed_response(request, "", False, error)

        degraded_error: str | None = None
        if request.augment:
            try:
                complement, was_cached = self._complement(
                    request.prompt, precomputed, clock, degraded
                )
            except AugmentationError as error:
                if strict:
                    self._record_failure(request.model)
                    raise
                # The plug-and-play fallback: the raw prompt is always a
                # valid input, so serve it unaugmented.
                complement, was_cached = "", False
                degraded_error = f"{type(error).__name__}: {error}"
        else:
            complement, was_cached = "", False

        try:
            completion = client.complete(build_messages(request.prompt, complement))
        except ReproError as error:
            breaker.record_failure(self._clock)
            self._record_failure(request.model)
            if strict:
                raise
            return self._failed_response(request, complement, was_cached, error)
        breaker.record_success(self._clock)
        clock.lap("completion")

        self.stats.requests += 1
        self.stats.augmented += bool(complement)
        self.stats.cache_hits += was_cached
        self.stats.degraded += degraded_error is not None
        self.stats.prompt_tokens += completion.prompt_tokens
        self.stats.completion_tokens += completion.completion_tokens
        self.stats.per_model[request.model] = (
            self.stats.per_model.get(request.model, 0) + 1
        )
        self._sync_embed_stats()
        self._sync_resilience_stats()
        response = ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response=completion.content,
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=completion.prompt_tokens,
            completion_tokens=completion.completion_tokens,
            status="ok" if degraded_error is None else "degraded",
            error=degraded_error,
            attempts=completion.retries + 1,
        )
        clock.lap("stats")
        return response

    def _sync_embed_stats(self) -> None:
        """Mirror the embedding tier's counters into :class:`GatewayStats`.

        The gateway is the cache's only writer, so assigning the
        cumulative counters after each request equals per-request delta
        accounting — and stays bit-identical between the scalar and
        batched paths, which perform the same cache operations.
        """
        if self._embed_cache is not None:
            self.stats.embed_cache_hits = self._embed_cache.hits
            self.stats.embed_cache_misses = self._embed_cache.misses

    def _sync_resilience_stats(self) -> None:
        """Mirror client retry/backoff totals and breaker snapshots.

        Same idiom as :meth:`_sync_embed_stats`: the gateway is the only
        driver of its clients and breakers, so cumulative mirroring after
        each request equals per-request deltas on every path.
        """
        retries = 0
        backoff = 0.0
        for client in self._clients.values():
            retries += client.usage.failures
            backoff += client.usage.backoff_ticks
        self.stats.retries = retries
        self.stats.backoff_ticks = backoff
        for model, breaker in self._breakers.items():
            self.stats.breaker_state[model] = breaker.state
            if breaker.trips:
                self.stats.breaker_trips[model] = breaker.trips

    def ask_batch(
        self, requests: Sequence[ServeRequest], *, strict: bool | None = None
    ) -> list[ServeResponse]:
        """Serve many requests, augmenting all cache misses in one pass.

        Planning phase: identical prompts are deduplicated, both cache
        tiers are peeked (without touching their accounting), prompts the
        fault plan degrades are set aside, every remaining missing
        embedding is computed in one
        :meth:`~repro.core.pas.PasModel.embed_prompts` pass, and every
        missing complement in one
        :meth:`~repro.core.pas.PasModel.augment_with_embeddings` pass.
        Serving phase: each request then replays the exact scalar
        :meth:`ask` sequence — cache gets/puts on both tiers, breaker
        transitions, completions, and stats happen in the same order with
        the same values, so responses (including ``degraded`` and
        ``failed`` outcomes), ``GatewayStats``, and both caches'
        hit/miss/recency state are all bit-identical to
        ``[self.ask(r) for r in requests]``.

        Non-strict (default): returns one response per request, always.
        Strict: the first failure raises the same exception from the same
        request the scalar loop would (earlier responses are counted but
        not returned).
        """
        strict = self._strictness(strict)
        requests = list(requests)
        if not requests:
            return []
        clock = self._stage_clock()
        plan = self.config.fault_plan
        planned: set[str] = set()
        degraded: set[str] = set()
        precomputed: dict[str, tuple[str, np.ndarray | None]] = {}
        to_augment: list[str] = []
        for request in requests:
            if not request.augment or request.prompt in planned:
                continue
            planned.add(request.prompt)
            cached = self._complement_cache.peek(request.prompt)
            if cached is not None:
                # Hold the value: if the entry is evicted mid-batch, the
                # replay below still serves what augment() would recompute.
                precomputed[request.prompt] = (cached, None)
            elif plan is not None and plan.augment_fails(request.prompt):
                # The scalar augment() would raise for this prompt; keep it
                # out of the batched forward pass (and both cache tiers) so
                # the replay degrades it exactly where the scalar loop would.
                degraded.add(request.prompt)
            else:
                to_augment.append(request.prompt)
        clock.lap("cache")
        if to_augment:
            if self._embed_cache is None:
                complements = self.pas.augment_batch(to_augment)
                vectors: list[np.ndarray | None] = [None] * len(to_augment)
            else:
                held: dict[str, np.ndarray] = {}
                missing: list[str] = []
                for prompt in to_augment:
                    vector = self._embed_cache.peek(prompt)
                    if vector is None:
                        missing.append(prompt)
                    else:
                        held[prompt] = vector
                if missing:
                    for prompt, row in zip(missing, self.pas.embed_prompts(missing)):
                        held[prompt] = row
                vectors = [held[prompt] for prompt in to_augment]
                complements = self.pas.augment_with_embeddings(to_augment, vectors)
            for prompt, complement, vector in zip(to_augment, complements, vectors):
                precomputed[prompt] = (complement, vector)
            clock.lap("augment")
        return [
            self._serve(request, precomputed, strict=strict, degraded=degraded)
            for request in requests
        ]

    def ask_text(self, prompt: str, model: str) -> str:
        """Convenience: prompt in, augmented response text out.

        Uses the configured strictness; a non-strict failure returns the
        empty string (check :meth:`ask` for the structured outcome).
        """
        return self.ask(ServeRequest(prompt=prompt, model=model)).response

    @property
    def cache_hit_rate(self) -> float:
        return self._complement_cache.hit_rate

    @property
    def embed_cache_hit_rate(self) -> float:
        """Hit rate of the embedding memo tier (0.0 when disabled)."""
        if self._embed_cache is None:
            return 0.0
        return self._embed_cache.hit_rate

    @property
    def registered_models(self) -> list[str]:
        return sorted(self._clients)

    @property
    def breaker_states(self) -> dict[str, str]:
        """Current circuit state per model (models seen so far)."""
        return {model: breaker.state for model, breaker in sorted(self._breakers.items())}
