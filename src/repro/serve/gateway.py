"""The PAS gateway: one trained augmenter in front of many target models.

This is the deployment shape the paper's Figure 1(a) draws: user prompts
enter, PAS complements them, the chosen target LLM answers the concatenated
prompt.  The gateway adds what a production front-end needs —

* lazy per-model :class:`~repro.llm.api.ChatClient` construction with a
  shared retry/budget policy,
* two tiers of caching: an LRU complement cache keyed by prompt text, and
  under it an embedding memo cache so complement-cache misses that
  re-augment a prompt skip re-embedding it,
* **outcome-based serving**: :meth:`PasGateway.ask` / :meth:`ask_batch`
  return one :class:`~repro.serve.types.ServeResponse` per request instead
  of raising — augmentation failures *degrade* to completing the raw
  prompt (the plug-and-play fallback: the user always gets an answer) and
  completion failures come back as ``failed`` responses.  ``strict=True``
  restores the raising behaviour for callers that want exceptions,
* per-model **circuit breakers** (closed → open after N consecutive
  completion failures → half-open probe on the logical clock) that fail
  fast while a backend is down,
* **observability**: every request runs inside a ``gateway.ask`` span tree
  (augment → cache/embed → complete → retry[n]) stamped on the logical
  clock, outcome/cache/token counters land in a metrics registry, and
  faults, breaker transitions, evictions, and failed/degraded serves emit
  into an event log.  Pass ``obs=Observability.enabled()`` to collect;
  the default all-null bundle makes instrumentation free.  Cumulative
  :class:`GatewayStats` are a *view* over the registry plus the live
  clients/breakers/caches — one source of truth, same public fields.

Message construction follows the library-wide
:func:`~repro.llm.types.build_messages` convention (prompt as the ``user``
turn, complement as a preceding ``system`` turn).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # the policy layer is optional; never imported at runtime
    from repro.policy.policy import AugmentationPolicy

from repro.core.pas import PasModel
from repro.errors import AugmentationError, CircuitOpenError, ReproError, UnknownModelError
from repro.llm.api import ChatClient, LatencyModel
from repro.llm.engine import SimulatedLLM
from repro.llm.types import build_messages
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy, augment_fault
from repro.serve.cache import LruCache
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.serialize import register
from repro.utils.timing import StageTimer

__all__ = [
    "BatchPlan",
    "GatewayConfig",
    "GatewayStats",
    "PasGateway",
    "build_messages",
    "derive_stage_timings",
]

#: Stage keys reported by :func:`derive_stage_timings`.
STAGES = ("augment", "cache", "completion", "stats")

#: Attempt-count buckets for the per-request ``pas_attempts`` histogram.
_ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

#: Judged-reward buckets for the ``pas_policy_reward`` histogram (0-5 grades).
_REWARD_BUCKETS = (1.0, 2.0, 3.0, 3.5, 4.0, 4.5, 5.0)


@dataclass(frozen=True)
class GatewayConfig:
    """Everything configurable about a :class:`PasGateway`.

    ``cache_size`` bounds the complement LRU (prompt → complement);
    ``embed_cache_size`` bounds the embedding memo tier beneath it (``0``
    disables the tier).  ``failure_rate`` / ``max_retries`` configure the
    per-model :class:`~repro.llm.api.ChatClient`\\ s; ``seed`` salts the
    simulated engines.  ``strict`` picks the default serving mode
    (``False``: every request yields a response; ``True``: failures
    raise).  ``fault_plan`` / ``retry_policy`` are injected into every
    client (and the fault plan into augmentation); ``breaker_threshold``
    consecutive completion failures open a model's circuit, which
    half-opens for a probe after ``breaker_recovery_ticks`` on the
    gateway's logical clock.  ``latency_model`` gives every client a
    seeded per-completion latency distribution (``None`` picks the
    library default) and ``max_inflight`` is the per-model concurrency
    limit the :class:`~repro.serve.engine.ServingEngine` honours — both
    are inert on the synchronous paths, which never consult them.
    """

    cache_size: int = 1024
    embed_cache_size: int = 1024
    failure_rate: float = 0.0
    max_retries: int = 3
    seed: int = 0
    strict: bool = False
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    breaker_threshold: int = 5
    breaker_recovery_ticks: int = 16
    latency_model: LatencyModel | None = None
    max_inflight: int = 1

    def as_dict(self) -> dict:
        """JSON-safe dict: ``GatewayConfig.from_dict(c.as_dict()) == c``."""
        return {
            "cache_size": self.cache_size,
            "embed_cache_size": self.embed_cache_size,
            "failure_rate": self.failure_rate,
            "max_retries": self.max_retries,
            "seed": self.seed,
            "strict": self.strict,
            "fault_plan": None if self.fault_plan is None else self.fault_plan.as_dict(),
            "retry_policy": (
                None if self.retry_policy is None else self.retry_policy.as_dict()
            ),
            "breaker_threshold": self.breaker_threshold,
            "breaker_recovery_ticks": self.breaker_recovery_ticks,
            "latency_model": (
                None if self.latency_model is None else self.latency_model.as_dict()
            ),
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GatewayConfig":
        return cls(
            cache_size=int(data["cache_size"]),
            embed_cache_size=int(data["embed_cache_size"]),
            failure_rate=float(data["failure_rate"]),
            max_retries=int(data["max_retries"]),
            seed=int(data["seed"]),
            strict=bool(data["strict"]),
            fault_plan=(
                None
                if data["fault_plan"] is None
                else FaultPlan.from_dict(data["fault_plan"])
            ),
            retry_policy=(
                None
                if data["retry_policy"] is None
                else RetryPolicy.from_dict(data["retry_policy"])
            ),
            breaker_threshold=int(data["breaker_threshold"]),
            breaker_recovery_ticks=int(data["breaker_recovery_ticks"]),
            latency_model=(
                None
                if data["latency_model"] is None
                else LatencyModel.from_dict(data["latency_model"])
            ),
            max_inflight=int(data["max_inflight"]),
        )


register(GatewayConfig)


#: The flat ``PasGateway.__init__`` kwargs removed with the elastic-fleet
#: API redesign; each now raises a :class:`TypeError` naming the
#: :class:`GatewayConfig` field that replaced it.
_REMOVED_KWARGS = ("cache_size", "embed_cache_size", "failure_rate", "max_retries", "seed")


@dataclass(frozen=True)
class BatchPlan:
    """The augmentation plan for one drained batch of requests.

    Produced by :meth:`PasGateway.plan_batch`: ``precomputed`` maps each
    unique augmentable prompt to its ``(complement, embedding)`` (the
    embedding is ``None`` when the complement was held from the LRU
    peek), ``degraded`` holds the prompts the fault plan will degrade.
    Feed it back through :meth:`PasGateway.serve_planned` — immediately
    (what :meth:`PasGateway.ask_batch` does) or spread over later ticks
    (what the serving engine does while completions overlap).
    """

    precomputed: Mapping[str, tuple[str, np.ndarray | None]]
    degraded: frozenset[str]

    def complement_for(self, request: ServeRequest) -> str:
        """The complement ``serve_planned`` will concatenate (may be "")."""
        if not request.augment or request.prompt in self.degraded:
            return ""
        entry = self.precomputed.get(request.prompt)
        return entry[0] if entry is not None else ""


class GatewayStats:
    """Cumulative request accounting — a live view, not a mutable bag.

    The counters behind these properties live in the gateway's metrics
    registry (``pas_requests_total{model,status}``, ``pas_augmented_total``,
    ``pas_cache_hits_total``, ``pas_tokens_total{kind}``); retry/backoff
    totals, breaker snapshots, and embedding-tier counters are read straight
    off the live clients, breakers, and cache.  The public fields match the
    pre-registry dataclass exactly, so existing callers (and the
    scalar-vs-batch parity tests, via ``==``) are unaffected.

    ``requests`` counts every request the gateway attempted; ``failures``
    counts the ones that produced **no answer** — completion retries
    exhausted, deadline budget blown, or the model's circuit breaker open
    — so ``requests - failures`` is the number *served* (also available as
    :attr:`served`).  ``degraded`` counts served requests whose
    augmentation failed and fell back to the raw prompt; degraded
    responses are answers, so they are **not** failures.  ``per_model``
    mirrors ``requests`` per target model (attempts, served *and* failed);
    ``failures_per_model`` mirrors ``failures``, so the served count per
    model is their difference.  ``embed_cache_hits`` /
    ``embed_cache_misses`` track the embedding memo tier under the
    complement LRU (a hit means an augmentation skipped re-embedding).
    ``retries`` totals failed completion attempts across all model
    clients, ``backoff_ticks`` the logical-time pauses their retry
    policies inserted; ``breaker_state`` / ``breaker_trips`` snapshot each
    model's circuit (state string, and how often it opened).
    """

    __slots__ = ("_gateway",)

    def __init__(self, gateway: "PasGateway"):
        self._gateway = gateway

    # -- registry-backed counters -------------------------------------- #

    @property
    def requests(self) -> int:
        return int(self._gateway._m_requests.total())

    def _status_series(self) -> list[tuple[str, str, int]]:
        """Flat ``(model, status, count)`` rows from the request counter."""
        rows = []
        for key, value in self._gateway._m_requests.series().items():
            labels = dict(key)
            rows.append((labels["model"], labels["status"], int(value)))
        return rows

    @property
    def failures(self) -> int:
        return sum(n for _, status, n in self._status_series() if status == "failed")

    @property
    def degraded(self) -> int:
        return sum(n for _, status, n in self._status_series() if status == "degraded")

    @property
    def per_model(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for model, _, n in self._status_series():
            out[model] = out.get(model, 0) + n
        return out

    @property
    def failures_per_model(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for model, status, n in self._status_series():
            if status == "failed":
                out[model] = out.get(model, 0) + n
        return out

    @property
    def augmented(self) -> int:
        return int(self._gateway._m_augmented.total())

    @property
    def cache_hits(self) -> int:
        return int(self._gateway._m_cache_hits.total())

    @property
    def prompt_tokens(self) -> int:
        return int(self._gateway._m_tokens.value(kind="prompt"))

    @property
    def completion_tokens(self) -> int:
        return int(self._gateway._m_tokens.value(kind="completion"))

    # -- live component reads ------------------------------------------ #

    @property
    def embed_cache_hits(self) -> int:
        cache = self._gateway._embed_cache
        return cache.hits if cache is not None else 0

    @property
    def embed_cache_misses(self) -> int:
        cache = self._gateway._embed_cache
        return cache.misses if cache is not None else 0

    @property
    def retries(self) -> int:
        return sum(c.usage.failures for c in self._gateway._clients.values())

    @property
    def backoff_ticks(self) -> float:
        return sum(c.usage.backoff_ticks for c in self._gateway._clients.values())

    @property
    def breaker_state(self) -> dict[str, str]:
        return {m: b.state for m, b in self._gateway._breakers.items()}

    @property
    def breaker_trips(self) -> dict[str, int]:
        return {m: b.trips for m, b in self._gateway._breakers.items() if b.trips}

    # -- derived ------------------------------------------------------- #

    @property
    def served(self) -> int:
        """Requests that got an answer (``ok`` + ``degraded``)."""
        return self.requests - self.failures

    @property
    def augmentation_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.augmented / self.requests

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (for structured export)."""
        return {
            "requests": self.requests,
            "served": self.served,
            "failures": self.failures,
            "degraded": self.degraded,
            "augmented": self.augmented,
            "augmentation_rate": self.augmentation_rate,
            "cache_hits": self.cache_hits,
            "embed_cache_hits": self.embed_cache_hits,
            "embed_cache_misses": self.embed_cache_misses,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "retries": self.retries,
            "backoff_ticks": self.backoff_ticks,
            "per_model": dict(sorted(self.per_model.items())),
            "failures_per_model": dict(sorted(self.failures_per_model.items())),
            "breaker_state": dict(sorted(self.breaker_state.items())),
            "breaker_trips": dict(sorted(self.breaker_trips.items())),
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GatewayStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        return f"GatewayStats({self.as_dict()!r})"


def derive_stage_timings(tracer) -> dict[str, float]:
    """Per-stage wall-clock buckets from a wall-enabled tracer.

    This is the span-based replacement for the old flat stage clock.  The
    mapping from span names to the legacy :data:`STAGES` buckets:

    * ``augment`` — the augment span's *exclusive* time (the PAS forward
      pass, embedding included when it happens inside ``pas.augment``)
      plus any explicit ``embed`` child spans;
    * ``cache`` — all ``cache`` spans, inclusive (both tiers, scalar gets
      and batch-planning peeks);
    * ``completion`` — all ``complete`` spans, inclusive (retries and
      backoff included);
    * ``stats`` — the *exclusive* remainder of the ``gateway.ask`` and
      ``gateway.plan`` roots: breaker checks, response assembly, batch
      bookkeeping.

    Returns all-zero buckets when the tracer has no wall timer.
    """
    timer: StageTimer | None = getattr(tracer, "timer", None)
    if timer is None:
        return {stage: 0.0 for stage in STAGES}
    inc, exc = timer.inclusive_s, timer.exclusive_s
    return {
        "augment": exc.get("augment", 0.0) + inc.get("embed", 0.0),
        "cache": inc.get("cache", 0.0),
        "completion": inc.get("complete", 0.0),
        "stats": exc.get("gateway.ask", 0.0) + exc.get("gateway.plan", 0.0),
    }


_EMPTY: frozenset[str] = frozenset()


class PasGateway:
    """Serve augmented completions for any registered target model.

    Configure with a :class:`GatewayConfig` (``PasGateway(pas, config=...)``)
    — the single construction path.  The pre-config flat kwargs
    (``cache_size``, ``embed_cache_size``, ``failure_rate``,
    ``max_retries``, ``seed``) were removed with the elastic-fleet API
    redesign and raise a :class:`TypeError` naming the config field.

    ``obs`` takes an :class:`~repro.obs.Observability` bundle; the gateway
    binds its logical clock into it, threads it through every client and
    both caches, and instruments the full request path.  The default
    :data:`~repro.obs.NULL_OBS` keeps everything off.  Observability never
    touches results: responses, stats, and cache state are bit-identical
    with it on or off.

    Both caches are transparent: cached values are bit-identical to
    recomputation.  The serving API is outcome-based — see :meth:`ask`.
    """

    def __init__(
        self,
        pas: PasModel,
        config: GatewayConfig | None = None,
        obs: Observability = NULL_OBS,
        *,
        complement_cache: LruCache | None = None,
        embed_cache: LruCache | None = None,
        policy: "AugmentationPolicy | None" = None,
        **rejected,
    ):
        if rejected:
            flat = sorted(set(rejected) & set(_REMOVED_KWARGS))
            if flat:
                raise TypeError(
                    f"PasGateway() no longer accepts flat kwargs {flat}; "
                    "pass the matching GatewayConfig field instead — "
                    "PasGateway(pas, config=GatewayConfig(...))"
                )
            raise TypeError(
                f"PasGateway() got unexpected keyword arguments {sorted(rejected)}"
            )
        self.config = config or GatewayConfig()
        self.pas = pas
        self.seed = int(self.config.seed)
        self._clock = 0
        self._clients: dict[str, ChatClient] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        # Injected caches let a Router share one two-tier cache across
        # replicas (``cache_scope="shared"``); ``None`` builds private
        # tiers sized by the config, as before.
        self._complement_cache: LruCache[str, str] = (
            complement_cache
            if complement_cache is not None
            else LruCache(capacity=self.config.cache_size)
        )
        if embed_cache is not None:
            self._embed_cache: LruCache[str, np.ndarray] | None = embed_cache
        else:
            self._embed_cache = (
                LruCache(capacity=self.config.embed_cache_size)
                if self.config.embed_cache_size > 0
                else None
            )
        self.obs = obs
        self.obs.bind_clock(lambda: self._clock)
        # The stats source of truth is always a real registry — the user's
        # when they passed a live one (so their snapshots include gateway
        # counters), a private one otherwise.
        self._registry: MetricsRegistry = (
            obs.metrics if obs.metrics.enabled else MetricsRegistry()
        )
        self._m_requests = self._registry.counter(
            "pas_requests_total", help="Requests by model and outcome status."
        )
        self._m_augmented = self._registry.counter(
            "pas_augmented_total", help="Served requests that carried a complement."
        )
        self._m_cache_hits = self._registry.counter(
            "pas_cache_hits_total", help="Complement-cache hits on served requests."
        )
        self._m_tokens = self._registry.counter(
            "pas_tokens_total", help="Tokens by kind (prompt/completion)."
        )
        self._m_attempts = self._registry.histogram(
            "pas_attempts",
            buckets=_ATTEMPT_BUCKETS,
            help="Completion attempts per served request.",
        )
        # Policy instruments exist only when a policy does: a registered-
        # but-empty series would still appear in metrics snapshots and
        # break byte-parity with the unpoliced gateway (the same rule the
        # trivial Router follows).
        self._policy = policy
        if policy is not None:
            self._m_policy_pulls = self._registry.counter(
                "pas_policy_pulls_total",
                help="Policy arm pulls by strategy and context category.",
            )
            self._m_policy_reward = self._registry.histogram(
                "pas_policy_reward",
                buckets=_REWARD_BUCKETS,
                help="Judged reward (0-5) per policy-served request.",
            )
        else:
            self._m_policy_pulls = None
            self._m_policy_reward = None
        if self.obs.active:
            self._complement_cache.observer = self._cache_observer("complement")
            if self._embed_cache is not None:
                self._embed_cache.observer = self._cache_observer("embed")
            if self.config.fault_plan is not None:
                self.config.fault_plan.attach_observer(self._fault_observer)
        self.stats = GatewayStats(self)

    @property
    def clock(self) -> int:
        """Logical time: how many requests this gateway has attempted."""
        return self._clock

    @property
    def policy(self) -> "AugmentationPolicy | None":
        """The adaptive augmentation policy, when one is plugged in.

        With ``policy=None`` (the default) the gateway is byte-identical
        to the pre-policy gateway: no ``policy.select`` spans, no
        ``pas_policy_*`` metric series, no ``strategy`` key in response
        exports.  With a policy, each augmentable ``ok`` serve routes
        through candidate → select → complete → judge → bandit update,
        and the chosen arm lands in :attr:`ServeResponse.strategy
        <repro.serve.types.ServeResponse.strategy>`.
        """
        return self._policy

    # ------------------------------------------------------------------ #
    # observability wiring
    # ------------------------------------------------------------------ #

    def _cache_observer(self, tier: str):
        ops = self.obs.metrics.counter(
            "pas_cache_ops_total", help="Cache operations by tier and op."
        )

        def observe(op: str, key) -> None:
            ops.inc(tier=tier, op=op)
            if op == "evict":
                self.obs.events.emit("cache.evict", tier=tier, key=key)

        return observe

    def _fault_observer(self, stage: str, key: str, detail) -> None:
        self.obs.metrics.counter(
            "pas_faults_total", help="Injected faults by stage."
        ).inc(stage=stage)
        self.obs.events.emit("fault.injected", stage=stage, key=key, detail=detail)

    def _breaker_observer(self, model: str):
        transitions = self.obs.metrics.counter(
            "pas_breaker_transitions_total",
            help="Circuit-breaker transitions by model and new state.",
        )

        def observe(tick: int, state: str) -> None:
            transitions.inc(model=model, state=state)
            self.obs.events.emit("breaker.transition", model=model, state=state)

        return observe

    # ------------------------------------------------------------------ #
    # components
    # ------------------------------------------------------------------ #

    def client_for(self, model: str) -> ChatClient:
        """The (lazily created) client serving one target model."""
        if model not in self._clients:
            engine = SimulatedLLM(model, seed=self.seed)  # raises for unknown names
            self._clients[model] = ChatClient(
                engine=engine,
                failure_rate=self.config.failure_rate,
                max_retries=self.config.max_retries,
                fault_plan=self.config.fault_plan,
                retry_policy=self.config.retry_policy,
                clock=lambda: self._clock,
                latency_model=self.config.latency_model,
                max_inflight=self.config.max_inflight,
                obs=self.obs,
            )
        return self._clients[model]

    def breaker_for(self, model: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one target model."""
        if model not in self._breakers:
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                recovery_ticks=self.config.breaker_recovery_ticks,
            )
            if self.obs.active:
                breaker.observer = self._breaker_observer(model)
            self._breakers[model] = breaker
        return self._breakers[model]

    def _complement(
        self,
        prompt: str,
        precomputed: Mapping[str, tuple[str, np.ndarray | None]] | None,
        degraded: frozenset[str] | set[str] = _EMPTY,
    ) -> tuple[str, bool]:
        tracer = self.obs.tracer
        with tracer.span("cache", tier="complement") as cache_span:
            cached = self._complement_cache.get(prompt)
            cache_span.set(hit=cached is not None)
        if cached is not None:
            return cached, True
        if prompt in degraded:
            # Replay of a fault the batch planner already detected; the
            # scalar path raises the identical error out of augment().
            raise augment_fault(prompt)
        if precomputed is not None and prompt in precomputed:
            complement, embedding = precomputed[prompt]
            if self._embed_cache is not None:
                # Replay the embedding-tier touches the scalar augment()
                # would make: one get, and on a miss a put of the same
                # vector (held from planning, or recomputed for prompts
                # whose complement was held from the LRU peek).
                with tracer.span("cache", tier="embed") as embed_span:
                    hit = self._embed_cache.get(prompt) is not None
                    embed_span.set(hit=hit)
                if not hit:
                    if embedding is None:
                        with tracer.span("embed"):
                            embedding = self.pas.embed_prompts([prompt])[0]
                    self._embed_cache.put(prompt, embedding)
        else:
            complement = self.pas.augment(
                prompt,
                embed_cache=self._embed_cache,
                fault_plan=self.config.fault_plan,
            )
        self._complement_cache.put(prompt, complement)
        return complement, False

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def ask(self, request: ServeRequest, *, strict: bool | None = None) -> ServeResponse:
        """Serve one request end to end, returning a structured outcome.

        Non-strict (the default, ``config.strict=False``): always returns
        a :class:`~repro.serve.types.ServeResponse` — ``ok`` on the happy
        path, ``degraded`` when augmentation failed and the *raw prompt*
        was completed instead (plug-and-play: the original prompt is
        always a valid input), ``failed`` when no completion could be
        produced (retries exhausted, deadline blown, or circuit open);
        failed responses carry the error string and the attempt count.

        Strict (``strict=True``): preserves the historical contract — the
        underlying :class:`~repro.errors.ReproError` propagates.  Either
        way the request, its model, and a :attr:`GatewayStats.failures`
        tick are recorded before a failure surfaces.

        An unknown model name raises :class:`~repro.errors.UnknownModelError`
        in strict mode and yields a ``failed`` response otherwise.
        """
        return self._serve(request, None, strict=self._strictness(strict))

    def _strictness(self, strict: bool | None) -> bool:
        return self.config.strict if strict is None else strict

    def _fail(
        self,
        root,
        request: ServeRequest,
        complement: str,
        was_cached: bool,
        error: Exception,
        strict: bool,
        *,
        stage: str,
    ) -> ServeResponse:
        """Record one no-answer outcome: counters, span, event, response."""
        self._m_requests.inc(model=request.model, status="failed")
        message = f"{type(error).__name__}: {error}"
        attempts = getattr(error, "attempts", 0)
        root.status = "failed"
        root.set(stage=stage, error=message, attempts=attempts)
        self.obs.events.emit(
            "serve.failed",
            model=request.model,
            stage=stage,
            error=message,
            attempts=attempts,
        )
        if strict:
            raise error
        return ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response="",
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=0,
            completion_tokens=0,
            status="failed",
            error=message,
            attempts=attempts,
        )

    def _serve(
        self,
        request: ServeRequest,
        precomputed: Mapping[str, tuple[str, np.ndarray | None]] | None,
        *,
        strict: bool,
        degraded: frozenset[str] | set[str] = _EMPTY,
    ) -> ServeResponse:
        self._clock += 1
        tracer = self.obs.tracer
        with tracer.span("gateway.ask", model=request.model) as root:
            if request.request_id is not None:
                root.set(request_id=request.request_id)
            if request.tenant is not None:
                root.set(tenant=request.tenant)
            try:
                client = self.client_for(request.model)
            except UnknownModelError as error:
                return self._fail(root, request, "", False, error, strict, stage="route")
            breaker = self.breaker_for(request.model)

            if not breaker.allow(self._clock):
                root.set(breaker="open")
                error = CircuitOpenError(
                    f"circuit open for model {request.model!r}: "
                    f"{breaker.consecutive_failures} consecutive failures, "
                    f"probe at tick {(breaker.opened_at or 0) + breaker.recovery_ticks}"
                )
                return self._fail(
                    root, request, "", False, error, strict, stage="breaker"
                )

            degraded_error: str | None = None
            if request.augment:
                try:
                    with tracer.span("augment") as augment_span:
                        complement, was_cached = self._complement(
                            request.prompt, precomputed, degraded
                        )
                        augment_span.set(cached=was_cached)
                except AugmentationError as error:
                    if strict:
                        self._m_requests.inc(model=request.model, status="failed")
                        root.status = "failed"
                        root.set(
                            stage="augment", error=f"{type(error).__name__}: {error}"
                        )
                        raise
                    # The plug-and-play fallback: the raw prompt is always a
                    # valid input, so serve it unaugmented.
                    complement, was_cached = "", False
                    degraded_error = f"{type(error).__name__}: {error}"
                    self.obs.events.emit(
                        "serve.degraded", model=request.model, error=degraded_error
                    )
            else:
                complement, was_cached = "", False

            # The policy decision: pick a strategy arm and swap in its
            # complement.  The static complement was already computed
            # through the cache tiers above — so cache state, hits, and
            # scalar/batch parity are exactly what they are without a
            # policy — and the ``static`` arm serves it verbatim.
            strategy: str | None = None
            policy_context: tuple[str, str] | None = None
            if (
                self._policy is not None
                and request.augment
                and degraded_error is None
            ):
                with tracer.span("policy.select") as policy_span:
                    policy_context = self._policy.context_for(
                        request.prompt, request.tenant
                    )
                    strategy = self._policy.select(policy_context, self._clock)
                    complement = self._policy.complement_for(
                        request.prompt,
                        strategy,
                        static=complement,
                        embed_cache=self._embed_cache,
                    )
                    policy_span.set(
                        strategy=strategy,
                        category=policy_context[0],
                        tenant=policy_context[1],
                    )

            try:
                completion = client.complete(build_messages(request.prompt, complement))
            except ReproError as error:
                breaker.record_failure(self._clock)
                return self._fail(
                    root, request, complement, was_cached, error, strict, stage="complete"
                )
            breaker.record_success(self._clock)

            status = "ok" if degraded_error is None else "degraded"
            self._m_requests.inc(model=request.model, status=status)
            if complement:
                self._m_augmented.inc()
            if was_cached:
                self._m_cache_hits.inc()
            self._m_tokens.inc(completion.prompt_tokens, kind="prompt")
            self._m_tokens.inc(completion.completion_tokens, kind="completion")
            self._m_attempts.observe(completion.retries + 1, model=request.model)
            if strategy is not None:
                # Close the loop: judge the served answer, pay the bandit.
                # Off-corpus prompts yield no reward and no update.
                reward = self._policy.observe(
                    request.prompt,
                    policy_context,
                    strategy,
                    complement,
                    completion.content,
                )
                self._m_policy_pulls.inc(
                    strategy=strategy, category=policy_context[0]
                )
                if reward is not None:
                    self._m_policy_reward.observe(reward, strategy=strategy)
                root.set(strategy=strategy)
            root.status = status
            root.set(
                attempts=completion.retries + 1,
                cached=was_cached,
                breaker=breaker.state,
            )
            if degraded_error is not None:
                root.set(stage="augment", error=degraded_error)
            return ServeResponse(
                request_id=request.request_id,
                model=request.model,
                response=completion.content,
                complement=complement,
                complement_cached=was_cached,
                prompt_tokens=completion.prompt_tokens,
                completion_tokens=completion.completion_tokens,
                status=status,
                error=degraded_error,
                attempts=completion.retries + 1,
                strategy=strategy,
            )

    def ask_batch(
        self, requests: Sequence[ServeRequest], *, strict: bool | None = None
    ) -> list[ServeResponse]:
        """Serve many requests, augmenting all cache misses in one pass.

        Planning phase: identical prompts are deduplicated, both cache
        tiers are peeked (without touching their accounting), prompts the
        fault plan degrades are set aside, every remaining missing
        embedding is computed in one
        :meth:`~repro.core.pas.PasModel.embed_prompts` pass, and every
        missing complement in one
        :meth:`~repro.core.pas.PasModel.augment_with_embeddings` pass.
        Serving phase: each request then replays the exact scalar
        :meth:`ask` sequence — cache gets/puts on both tiers, breaker
        transitions, completions, and stats happen in the same order with
        the same values, so responses (including ``degraded`` and
        ``failed`` outcomes), ``GatewayStats``, and both caches'
        hit/miss/recency state are all bit-identical to
        ``[self.ask(r) for r in requests]``.

        With tracing on, planning runs inside its own ``gateway.plan``
        trace (cache peeks + the batched augment), then each request
        produces the same ``gateway.ask`` trace shape the scalar path
        would.

        Non-strict (default): returns one response per request, always.
        Strict: the first failure raises the same exception from the same
        request the scalar loop would (earlier responses are counted but
        not returned).
        """
        strict = self._strictness(strict)
        requests = list(requests)
        if not requests:
            return []
        plan = self.plan_batch(requests)
        return [
            self._serve(request, plan.precomputed, strict=strict, degraded=plan.degraded)
            for request in requests
        ]

    def plan_batch(self, requests: Sequence[ServeRequest]) -> BatchPlan:
        """The planning phase of :meth:`ask_batch`, as a reusable step.

        Dedupes prompts, peeks both cache tiers, sets fault-degraded
        prompts aside, and runs the batched embed + augment passes —
        exactly the work ``ask_batch`` does before its serving replay,
        inside the same ``gateway.plan`` span.  The returned
        :class:`BatchPlan` can be replayed through :meth:`serve_planned`
        at any later tick; the serving engine plans each drained batch
        once, then finishes its requests as their simulated completions
        land.
        """
        requests = list(requests)
        tracer = self.obs.tracer
        plan = self.config.fault_plan
        planned: set[str] = set()
        degraded: set[str] = set()
        precomputed: dict[str, tuple[str, np.ndarray | None]] = {}
        to_augment: list[str] = []
        with tracer.span("gateway.plan", n_requests=len(requests)) as plan_span:
            with tracer.span("cache", tier="complement"):
                for request in requests:
                    if not request.augment or request.prompt in planned:
                        continue
                    planned.add(request.prompt)
                    cached = self._complement_cache.peek(request.prompt)
                    if cached is not None:
                        # Hold the value: if the entry is evicted mid-batch, the
                        # replay below still serves what augment() would recompute.
                        precomputed[request.prompt] = (cached, None)
                    elif plan is not None and plan.augment_fails(request.prompt):
                        # The scalar augment() would raise for this prompt; keep it
                        # out of the batched forward pass (and both cache tiers) so
                        # the replay degrades it exactly where the scalar loop would.
                        degraded.add(request.prompt)
                    else:
                        to_augment.append(request.prompt)
            if to_augment:
                with tracer.span("augment", n_prompts=len(to_augment)):
                    if self._embed_cache is None:
                        complements = self.pas.augment_batch(to_augment)
                        vectors: list[np.ndarray | None] = [None] * len(to_augment)
                    else:
                        held: dict[str, np.ndarray] = {}
                        missing: list[str] = []
                        for prompt in to_augment:
                            vector = self._embed_cache.peek(prompt)
                            if vector is None:
                                missing.append(prompt)
                            else:
                                held[prompt] = vector
                        if missing:
                            for prompt, row in zip(
                                missing, self.pas.embed_prompts(missing)
                            ):
                                held[prompt] = row
                        vectors = [held[prompt] for prompt in to_augment]
                        complements = self.pas.augment_with_embeddings(
                            to_augment, vectors
                        )
                    for prompt, complement, vector in zip(
                        to_augment, complements, vectors
                    ):
                        precomputed[prompt] = (complement, vector)
            plan_span.set(
                unique=len(planned),
                augmented=len(to_augment),
                degraded=len(degraded),
            )
        return BatchPlan(precomputed=precomputed, degraded=frozenset(degraded))

    def serve_planned(
        self, request: ServeRequest, plan: BatchPlan, *, strict: bool | None = None
    ) -> ServeResponse:
        """Serve one request against a prepared :class:`BatchPlan`.

        Identical to the per-request replay inside :meth:`ask_batch` —
        same cache touches, breaker transitions, counters, and span
        shape — but callable one request at a time, so the serving
        engine can finish planned requests in completion order rather
        than arrival order.
        """
        return self._serve(
            request,
            plan.precomputed,
            strict=self._strictness(strict),
            degraded=plan.degraded,
        )

    def completion_latency(self, request: ServeRequest, plan: BatchPlan | None = None) -> int:
        """Simulated completion cost of ``request``, in logical ticks.

        Builds the exact messages :meth:`serve_planned` would send (the
        planned complement as the system turn) and asks the model's
        client for its seeded latency draw.  Pure — no clocks move, no
        caches are touched — and deterministic per (engine seed, prompt,
        complement), so the serving engine can price a completion at
        dispatch time and the finish event lands where a re-run lands it.
        Raises :class:`~repro.errors.UnknownModelError` for unregistered
        model names (such requests fail at routing with no latency).
        """
        complement = plan.complement_for(request) if plan is not None else ""
        client = self.client_for(request.model)
        return client.completion_latency(build_messages(request.prompt, complement))

    def ask_text(self, prompt: str, model: str) -> str:
        """Convenience: prompt in, augmented response text out.

        Uses the configured strictness; a non-strict failure returns the
        empty string (check :meth:`ask` for the structured outcome).
        """
        return self.ask(ServeRequest(prompt=prompt, model=model)).response

    @property
    def cache_hit_rate(self) -> float:
        return self._complement_cache.hit_rate

    @property
    def embed_cache_hit_rate(self) -> float:
        """Hit rate of the embedding memo tier (0.0 when disabled)."""
        if self._embed_cache is None:
            return 0.0
        return self._embed_cache.hit_rate

    @property
    def registered_models(self) -> list[str]:
        return sorted(self._clients)

    @property
    def breaker_states(self) -> dict[str, str]:
        """Current circuit state per model (models seen so far)."""
        return {model: breaker.state for model, breaker in sorted(self._breakers.items())}
