"""The PAS gateway: one trained augmenter in front of many target models.

This is the deployment shape the paper's Figure 1(a) draws: user prompts
enter, PAS complements them, the chosen target LLM answers the concatenated
prompt.  The gateway adds what a production front-end needs —

* lazy per-model :class:`~repro.llm.api.ChatClient` construction with a
  shared retry/budget policy,
* two tiers of caching: an LRU complement cache keyed by prompt text, and
  under it an embedding memo cache so complement-cache misses that
  re-augment a prompt skip re-embedding it,
* cumulative :class:`GatewayStats` for observability, with optional
  per-stage wall-clock timings (:meth:`PasGateway.enable_stage_timings`).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.pas import PasModel
from repro.errors import UnknownModelError
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM
from repro.llm.types import Message
from repro.serve.cache import LruCache
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["GatewayStats", "PasGateway"]

#: Stage keys reported by :meth:`PasGateway.enable_stage_timings`.
STAGES = ("augment", "cache", "completion", "stats")


@dataclass
class GatewayStats:
    """Cumulative request accounting.

    ``requests`` counts every request the gateway attempted, including the
    ones whose completion ultimately failed; ``failures`` counts just the
    failed ones, so ``requests - failures`` is the number served.
    ``per_model`` mirrors ``requests`` per target model (attempts, served
    *and* failed); ``failures_per_model`` mirrors ``failures``, so the
    served count per model is their difference.  ``embed_cache_hits`` /
    ``embed_cache_misses`` track the embedding memo tier under the
    complement LRU (a hit means an augmentation skipped re-embedding).
    """

    requests: int = 0
    augmented: int = 0
    cache_hits: int = 0
    failures: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    embed_cache_hits: int = 0
    embed_cache_misses: int = 0
    per_model: dict[str, int] = field(default_factory=dict)
    failures_per_model: dict[str, int] = field(default_factory=dict)

    @property
    def augmentation_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.augmented / self.requests


class _StageClock:
    """Accumulate elapsed wall time into per-stage buckets via ``lap``."""

    __slots__ = ("_timings", "_last")

    def __init__(self, timings: dict[str, float]):
        self._timings = timings
        self._last = time.perf_counter()

    def lap(self, stage: str) -> None:
        now = time.perf_counter()
        self._timings[stage] += now - self._last
        self._last = now


class _NullClock:
    """No-op stand-in when stage timing is disabled."""

    __slots__ = ()

    def lap(self, stage: str) -> None:
        pass


_NULL_CLOCK = _NullClock()


class PasGateway:
    """Serve augmented completions for any registered target model.

    ``cache_size`` bounds the complement LRU (prompt → complement);
    ``embed_cache_size`` bounds the embedding memo tier beneath it
    (prompt → embedding vector; ``0`` disables the tier).  Both caches
    are transparent: cached values are bit-identical to recomputation.
    """

    def __init__(
        self,
        pas: PasModel,
        cache_size: int = 1024,
        embed_cache_size: int = 1024,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        seed: int = 0,
    ):
        self.pas = pas
        self.seed = int(seed)
        self._failure_rate = failure_rate
        self._max_retries = max_retries
        self._clients: dict[str, ChatClient] = {}
        self._complement_cache: LruCache[str, str] = LruCache(capacity=cache_size)
        self._embed_cache: LruCache[str, np.ndarray] | None = (
            LruCache(capacity=embed_cache_size) if embed_cache_size > 0 else None
        )
        self.stats = GatewayStats()
        self.stage_timings: dict[str, float] | None = None

    def enable_stage_timings(self) -> dict[str, float]:
        """Turn on per-stage wall-clock accounting and return the buckets.

        Every subsequent request accumulates elapsed seconds into
        ``{"augment", "cache", "completion", "stats"}`` — augmentation
        compute, cache bookkeeping (both tiers), target-model
        completions, and stats/response assembly.  Timing never touches
        results; it only reads the clock between stages.
        """
        if self.stage_timings is None:
            self.stage_timings = {stage: 0.0 for stage in STAGES}
        return self.stage_timings

    def _stage_clock(self) -> _StageClock | _NullClock:
        if self.stage_timings is None:
            return _NULL_CLOCK
        return _StageClock(self.stage_timings)

    def client_for(self, model: str) -> ChatClient:
        """The (lazily created) client serving one target model."""
        if model not in self._clients:
            engine = SimulatedLLM(model, seed=self.seed)  # raises for unknown names
            self._clients[model] = ChatClient(
                engine=engine,
                failure_rate=self._failure_rate,
                max_retries=self._max_retries,
            )
        return self._clients[model]

    def _complement(
        self,
        prompt: str,
        precomputed: dict[str, tuple[str, np.ndarray | None]] | None,
        clock: _StageClock | _NullClock,
    ) -> tuple[str, bool]:
        cached = self._complement_cache.get(prompt)
        if cached is not None:
            clock.lap("cache")
            return cached, True
        if precomputed is not None and prompt in precomputed:
            complement, embedding = precomputed[prompt]
            if self._embed_cache is not None:
                # Replay the embedding-tier touches the scalar augment()
                # would make: one get, and on a miss a put of the same
                # vector (held from planning, or recomputed for prompts
                # whose complement was held from the LRU peek).
                if self._embed_cache.get(prompt) is None:
                    if embedding is None:
                        embedding = self.pas.embed_prompts([prompt])[0]
                    self._embed_cache.put(prompt, embedding)
            clock.lap("cache")
        else:
            clock.lap("cache")
            complement = self.pas.augment(prompt, embed_cache=self._embed_cache)
            clock.lap("augment")
        self._complement_cache.put(prompt, complement)
        clock.lap("cache")
        return complement, False

    def ask(self, request: ServeRequest) -> ServeResponse:
        """Serve one request end to end.

        A completion that exhausts its retries still counts: the request,
        its model, and a :attr:`GatewayStats.failures` tick are recorded
        before the error propagates.
        """
        return self._serve(request, None)

    def _serve(
        self,
        request: ServeRequest,
        precomputed: dict[str, tuple[str, np.ndarray | None]] | None,
    ) -> ServeResponse:
        clock = self._stage_clock()
        client = self.client_for(request.model)
        clock.lap("completion")
        if request.augment:
            complement, was_cached = self._complement(request.prompt, precomputed, clock)
        else:
            complement, was_cached = "", False
        try:
            completion = client.complete(_messages(request.prompt, complement))
        except Exception:
            self.stats.requests += 1
            self.stats.failures += 1
            self.stats.per_model[request.model] = (
                self.stats.per_model.get(request.model, 0) + 1
            )
            self.stats.failures_per_model[request.model] = (
                self.stats.failures_per_model.get(request.model, 0) + 1
            )
            self._sync_embed_stats()
            raise
        clock.lap("completion")

        self.stats.requests += 1
        self.stats.augmented += bool(complement)
        self.stats.cache_hits += was_cached
        self.stats.prompt_tokens += completion.prompt_tokens
        self.stats.completion_tokens += completion.completion_tokens
        self.stats.per_model[request.model] = (
            self.stats.per_model.get(request.model, 0) + 1
        )
        self._sync_embed_stats()
        response = ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response=completion.content,
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=completion.prompt_tokens,
            completion_tokens=completion.completion_tokens,
        )
        clock.lap("stats")
        return response

    def _sync_embed_stats(self) -> None:
        """Mirror the embedding tier's counters into :class:`GatewayStats`.

        The gateway is the cache's only writer, so assigning the
        cumulative counters after each request equals per-request delta
        accounting — and stays bit-identical between the scalar and
        batched paths, which perform the same cache operations.
        """
        if self._embed_cache is not None:
            self.stats.embed_cache_hits = self._embed_cache.hits
            self.stats.embed_cache_misses = self._embed_cache.misses

    def ask_batch(self, requests: Sequence[ServeRequest]) -> list[ServeResponse]:
        """Serve many requests, augmenting all cache misses in one pass.

        Planning phase: identical prompts are deduplicated, both cache
        tiers are peeked (without touching their accounting), every
        missing embedding is computed in one
        :meth:`~repro.core.pas.PasModel.embed_prompts` pass, and every
        missing complement in one
        :meth:`~repro.core.pas.PasModel.augment_with_embeddings` pass.
        Serving phase: each request then replays the exact scalar
        :meth:`ask` sequence — cache gets/puts on both tiers,
        completions, and stats happen in the same order with the same
        values, so responses, ``GatewayStats``, and both caches'
        hit/miss/recency state are all bit-identical to
        ``[self.ask(r) for r in requests]``.  If a completion exhausts
        its retries the same exception propagates from the same request
        (earlier responses are counted but not returned).
        """
        requests = list(requests)
        if not requests:
            return []
        clock = self._stage_clock()
        planned: set[str] = set()
        precomputed: dict[str, tuple[str, np.ndarray | None]] = {}
        to_augment: list[str] = []
        for request in requests:
            if not request.augment or request.prompt in planned:
                continue
            planned.add(request.prompt)
            cached = self._complement_cache.peek(request.prompt)
            if cached is None:
                to_augment.append(request.prompt)
            else:
                # Hold the value: if the entry is evicted mid-batch, the
                # replay below still serves what augment() would recompute.
                precomputed[request.prompt] = (cached, None)
        clock.lap("cache")
        if to_augment:
            if self._embed_cache is None:
                complements = self.pas.augment_batch(to_augment)
                vectors: list[np.ndarray | None] = [None] * len(to_augment)
            else:
                held: dict[str, np.ndarray] = {}
                missing: list[str] = []
                for prompt in to_augment:
                    vector = self._embed_cache.peek(prompt)
                    if vector is None:
                        missing.append(prompt)
                    else:
                        held[prompt] = vector
                if missing:
                    for prompt, row in zip(missing, self.pas.embed_prompts(missing)):
                        held[prompt] = row
                vectors = [held[prompt] for prompt in to_augment]
                complements = self.pas.augment_with_embeddings(to_augment, vectors)
            for prompt, complement, vector in zip(to_augment, complements, vectors):
                precomputed[prompt] = (complement, vector)
            clock.lap("augment")
        return [self._serve(request, precomputed) for request in requests]

    def ask_text(self, prompt: str, model: str) -> str:
        """Convenience: prompt in, augmented response text out."""
        return self.ask(ServeRequest(prompt=prompt, model=model)).response

    @property
    def cache_hit_rate(self) -> float:
        return self._complement_cache.hit_rate

    @property
    def embed_cache_hit_rate(self) -> float:
        """Hit rate of the embedding memo tier (0.0 when disabled)."""
        if self._embed_cache is None:
            return 0.0
        return self._embed_cache.hit_rate

    @property
    def registered_models(self) -> list[str]:
        return sorted(self._clients)


def _messages(prompt: str, complement: str) -> list[Message]:
    messages = [Message("user", prompt)]
    if complement:
        messages.insert(0, Message("system", complement))
    return messages
