"""The PAS gateway: one trained augmenter in front of many target models.

This is the deployment shape the paper's Figure 1(a) draws: user prompts
enter, PAS complements them, the chosen target LLM answers the concatenated
prompt.  The gateway adds what a production front-end needs —

* lazy per-model :class:`~repro.llm.api.ChatClient` construction with a
  shared retry/budget policy,
* an LRU complement cache keyed by prompt text,
* cumulative :class:`GatewayStats` for observability.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.pas import PasModel
from repro.errors import UnknownModelError
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM
from repro.serve.cache import LruCache
from repro.serve.types import ServeRequest, ServeResponse

__all__ = ["GatewayStats", "PasGateway"]


@dataclass
class GatewayStats:
    """Cumulative request accounting.

    ``requests`` counts every request the gateway attempted, including the
    ones whose completion ultimately failed; ``failures`` counts just the
    failed ones, so ``requests - failures`` is the number served.
    """

    requests: int = 0
    augmented: int = 0
    cache_hits: int = 0
    failures: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    per_model: dict[str, int] = field(default_factory=dict)

    @property
    def augmentation_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.augmented / self.requests


class PasGateway:
    """Serve augmented completions for any registered target model."""

    def __init__(
        self,
        pas: PasModel,
        cache_size: int = 1024,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        seed: int = 0,
    ):
        self.pas = pas
        self.seed = int(seed)
        self._failure_rate = failure_rate
        self._max_retries = max_retries
        self._clients: dict[str, ChatClient] = {}
        self._complement_cache: LruCache[str, str] = LruCache(capacity=cache_size)
        self.stats = GatewayStats()

    def client_for(self, model: str) -> ChatClient:
        """The (lazily created) client serving one target model."""
        if model not in self._clients:
            engine = SimulatedLLM(model, seed=self.seed)  # raises for unknown names
            self._clients[model] = ChatClient(
                engine=engine,
                failure_rate=self._failure_rate,
                max_retries=self._max_retries,
            )
        return self._clients[model]

    def _complement(
        self, prompt: str, precomputed: dict[str, str] | None = None
    ) -> tuple[str, bool]:
        cached = self._complement_cache.get(prompt)
        if cached is not None:
            return cached, True
        if precomputed is not None and prompt in precomputed:
            complement = precomputed[prompt]
        else:
            complement = self.pas.augment(prompt)
        self._complement_cache.put(prompt, complement)
        return complement, False

    def ask(self, request: ServeRequest) -> ServeResponse:
        """Serve one request end to end.

        A completion that exhausts its retries still counts: the request,
        its model, and a :attr:`GatewayStats.failures` tick are recorded
        before the error propagates.
        """
        return self._serve(request, None)

    def _serve(
        self, request: ServeRequest, precomputed: dict[str, str] | None
    ) -> ServeResponse:
        client = self.client_for(request.model)
        if request.augment:
            complement, was_cached = self._complement(request.prompt, precomputed)
        else:
            complement, was_cached = "", False
        try:
            completion = client.complete(_messages(request.prompt, complement))
        except Exception:
            self.stats.requests += 1
            self.stats.failures += 1
            self.stats.per_model[request.model] = (
                self.stats.per_model.get(request.model, 0) + 1
            )
            raise

        self.stats.requests += 1
        self.stats.augmented += bool(complement)
        self.stats.cache_hits += was_cached
        self.stats.prompt_tokens += completion.prompt_tokens
        self.stats.completion_tokens += completion.completion_tokens
        self.stats.per_model[request.model] = (
            self.stats.per_model.get(request.model, 0) + 1
        )
        return ServeResponse(
            request_id=request.request_id,
            model=request.model,
            response=completion.content,
            complement=complement,
            complement_cached=was_cached,
            prompt_tokens=completion.prompt_tokens,
            completion_tokens=completion.completion_tokens,
        )

    def ask_batch(self, requests: Sequence[ServeRequest]) -> list[ServeResponse]:
        """Serve many requests, augmenting all cache misses in one pass.

        Planning phase: identical prompts are deduplicated, the complement
        cache is peeked (without touching its accounting), and every
        missing prompt goes through a single
        :meth:`~repro.core.pas.PasModel.augment_batch` forward pass.
        Serving phase: each request then replays the exact scalar
        :meth:`ask` sequence — cache gets/puts, completions, and stats
        happen in the same order with the same values, so responses,
        ``GatewayStats``, and the cache's hit/miss/recency state are all
        bit-identical to ``[self.ask(r) for r in requests]``.  If a
        completion exhausts its retries the same exception propagates from
        the same request (earlier responses are counted but not returned).
        """
        requests = list(requests)
        if not requests:
            return []
        planned: set[str] = set()
        precomputed: dict[str, str] = {}
        to_augment: list[str] = []
        for request in requests:
            if not request.augment or request.prompt in planned:
                continue
            planned.add(request.prompt)
            cached = self._complement_cache.peek(request.prompt)
            if cached is None:
                to_augment.append(request.prompt)
            else:
                # Hold the value: if the entry is evicted mid-batch, the
                # replay below still serves what augment() would recompute.
                precomputed[request.prompt] = cached
        for prompt, complement in zip(to_augment, self.pas.augment_batch(to_augment)):
            precomputed[prompt] = complement
        return [self._serve(request, precomputed) for request in requests]

    def ask_text(self, prompt: str, model: str) -> str:
        """Convenience: prompt in, augmented response text out."""
        return self.ask(ServeRequest(prompt=prompt, model=model)).response

    @property
    def cache_hit_rate(self) -> float:
        return self._complement_cache.hit_rate

    @property
    def registered_models(self) -> list[str]:
        return sorted(self._clients)


def _messages(prompt: str, complement: str):
    from repro.llm.types import Message

    messages = [Message("user", prompt)]
    if complement:
        messages.insert(0, Message("system", complement))
    return messages
