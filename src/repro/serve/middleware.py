"""Request middleware for the PAS gateway.

A middleware wraps request handling: it can reject, annotate, or observe a
request before/after the downstream handler runs.  Three production-shaped
middlewares ship with the gateway:

* :class:`GuardrailMiddleware` — reject junk prompts before they spend
  augmentation and completion tokens (reuses the pipeline's quality
  grader, so serving and data collection share one notion of junk);
* :class:`RateLimitMiddleware` — a logical-clock token bucket per model
  (deterministic: "time" advances one tick per request);
* :class:`LoggingMiddleware` — an in-memory structured request log.

Compose with :class:`MiddlewareChain`::

    chain = MiddlewareChain([GuardrailMiddleware(), LoggingMiddleware()],
                            handler=gateway.ask)
    response = chain(request)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import ReproError
from repro.llm.engine import SimulatedLLM
from repro.pipeline.select import QualityScorer
from repro.serve.types import ServeRequest, ServeResponse

__all__ = [
    "RequestRejected",
    "Middleware",
    "MiddlewareChain",
    "GuardrailMiddleware",
    "RateLimitMiddleware",
    "LoggingMiddleware",
]

Handler = Callable[[ServeRequest], ServeResponse]


class RequestRejected(ReproError):
    """A middleware refused to serve the request."""


class Middleware(Protocol):
    """The middleware contract: take the request and the next handler."""

    def __call__(self, request: ServeRequest, next_handler: Handler) -> ServeResponse:
        ...  # pragma: no cover - protocol definition


class MiddlewareChain:
    """Fold a middleware list around a terminal handler (first = outermost)."""

    def __init__(self, middlewares: list[Middleware], handler: Handler):
        self._handler = handler
        self._middlewares = list(middlewares)

    def __call__(self, request: ServeRequest) -> ServeResponse:
        def run(index: int, req: ServeRequest) -> ServeResponse:
            if index >= len(self._middlewares):
                return self._handler(req)
            return self._middlewares[index](req, lambda r: run(index + 1, r))

        return run(0, request)


class GuardrailMiddleware:
    """Reject degenerate prompts before any tokens are spent."""

    def __init__(self, grader: SimulatedLLM | None = None, threshold: float = 0.55):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self._scorer = QualityScorer(grader=grader or SimulatedLLM("baichuan-13b"))
        self.threshold = threshold
        self.rejected = 0

    def __call__(self, request: ServeRequest, next_handler: Handler) -> ServeResponse:
        score = self._scorer.score(request.prompt)
        if score < self.threshold:
            self.rejected += 1
            raise RequestRejected(
                f"prompt quality {score:.2f} below guardrail {self.threshold:.2f}"
            )
        return next_handler(request)


class RateLimitMiddleware:
    """Token bucket over a logical clock (one tick per request).

    Each model gets ``capacity`` tokens; one request costs one token; every
    tick refills ``refill_per_tick``.  Deterministic, so tests can assert
    exact admission patterns.
    """

    def __init__(self, capacity: int = 10, refill_per_tick: float = 1.0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if refill_per_tick < 0:
            raise ValueError(f"refill_per_tick must be >= 0, got {refill_per_tick}")
        self.capacity = capacity
        self.refill_per_tick = refill_per_tick
        self._tokens: dict[str, float] = {}
        self.throttled = 0

    def __call__(self, request: ServeRequest, next_handler: Handler) -> ServeResponse:
        # Refill every bucket by one tick, then charge the requested model.
        for model in self._tokens:
            self._tokens[model] = min(
                self.capacity, self._tokens[model] + self.refill_per_tick
            )
        tokens = self._tokens.setdefault(request.model, float(self.capacity))
        if tokens < 1.0:
            self.throttled += 1
            raise RequestRejected(f"rate limit exceeded for {request.model}")
        self._tokens[request.model] = tokens - 1.0
        return next_handler(request)


@dataclass
class LoggingMiddleware:
    """Append a structured record per request (in-memory)."""

    records: list[dict] = field(default_factory=list)

    def __call__(self, request: ServeRequest, next_handler: Handler) -> ServeResponse:
        try:
            response = next_handler(request)
        except ReproError as exc:
            self.records.append(
                {
                    "model": request.model,
                    "prompt_tokens": None,
                    "ok": False,
                    "error": type(exc).__name__,
                }
            )
            raise
        self.records.append(
            {
                "model": request.model,
                "prompt_tokens": response.prompt_tokens,
                "completion_tokens": response.completion_tokens,
                "augmented": response.augmented,
                "cached": response.complement_cached,
                "ok": response.ok,
                "status": response.status,
                "error": response.error,
            }
        )
        return response
