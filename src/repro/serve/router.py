"""Horizontal scale-out: a deterministic router over gateway replicas.

One :class:`~repro.serve.gateway.PasGateway` is one process; the paper's
deployment story (Figure 1a: PAS in front of *any* model fleet) implies
many.  :class:`Router` owns N gateway replicas — same trained PAS model,
same :class:`~repro.serve.gateway.GatewayConfig`, so any replica produces
bit-identical completions for the same request — and places each request
by a pluggable policy:

* ``policy="hash"`` — **cache affinity**: consistent hashing over a
  virtual-node ring keyed on the prompt (or tenant), so repeats of a
  prompt always land on the replica whose complement cache already holds
  it.  The ring is a pure function of ``(seed, n_replicas, vnodes)``;
  adding a replica remaps only ~1/N of the key space.
* ``policy="least_loaded"`` — **balance**: argmin over live per-replica
  load (queued + in-flight assignments), lowest index breaking ties.

Layered on top:

* **multi-tenancy** — per-tenant :class:`TenantPolicy` enforced at
  admission: a fixed-window request quota, a token-bucket rate limit,
  and a priority override.  Both limiters run on *arrival ticks*, which
  are a pure function of the traffic seed and independent of any fault
  plan, so admission decisions are invariant across chaos-seed offsets.
* **weighted model pools with failover** — a :class:`ModelPool` names a
  virtual model backed by a weighted set of real models.  The weighted
  draw is a pure function of ``(router seed, pool, arrival tick, request
  key)``; members whose circuit breaker is hard-open on the target
  replica drop out of the draw (a *failover*), and a pool with every
  member open resolves to nothing — the engine sheds it (``reject``) or
  draws over the full pool anyway (``degrade``: the gateway's own
  breaker then fast-fails or admits the recovery probe).
* **cache coherence as explicit policy** — ``cache_scope="replica"``
  (default) gives every replica private cache tiers, which affinity
  routing keeps effective; ``cache_scope="shared"`` threads one
  lock-guarded two-tier cache through every replica.

The fleet is **elastic**: :meth:`Router.add_replica` grows it live
(every existing ring point stays put, so only ~1/N of the key space
remaps onto the newcomer) and :meth:`Router.drain_replica` shrinks it
gracefully — new placements stop immediately (the rid's vnodes leave the
ring, so again only its ~1/N share remaps), in-flight requests finish,
and only then is the gateway retired: its logical-clock ticks accumulate
into the fleet clock, and its replica-scoped caches are discarded with a
``pas_router_cache_evicted_total`` count (shared caches survive any
membership change).  Replica ids are stable — they never renumber — so
per-(replica, model) engine slot accounting and the fleet-shared bandit
policy rebind deterministically across membership changes.

Tail tolerance and fairness are declared through a :class:`FleetPlan`
(the ``fleet`` section of :class:`~repro.serve.config.ServingConfig`):

* **hedged retries** (:class:`HedgePolicy`) — after a seed-pure hedge
  deadline (``after_ticks``, or a latency-percentile trigger over the
  run's own observed latencies) the engine launches the same request on
  a second replica and takes the first completion, cancelling the loser;
  outcomes land in ``pas_router_hedges_total{outcome}`` and
  ``router.hedge`` spans.  Hedging off is bit-identical to the
  pre-hedging stack.
* **weighted fair queueing** (:class:`FairnessPolicy` with
  ``mode="wfq"``) — dispatch orders each drained batch by virtual-time
  finish tags over per-tenant weights, computed in exact
  :class:`~fractions.Fraction` arithmetic (the bandit's trick), so no
  tenant starves under bursty load.  Zero-weight tenants form a
  background class served after every weighted tenant.
* **per-replica latency spikes** (``spike_rate`` / ``spike_ticks``) —
  seed-pure straggler injection priced into one replica's completion
  intervals, so hedging has something to win against.

:meth:`Router.apply` diffs a :class:`FleetPlan` against live state into
the matching ``add_replica`` / ``drain_replica`` calls and installs the
hedge/fairness/spike policy — one declarative JSON-safe plan describes
the whole fleet.

**The trivial router is invisible.**  One replica + hash policy + no
tenant policies + no pools + replica-scoped caches adopts the single
gateway unchanged: no ``router.route`` spans, no ``pas_router_*``
metrics, no extra events — the engine driving it is bit-identical to the
single-gateway engine, exports and all (the parity suite pins this).
Non-trivial routers wrap each serve in a ``router.route`` span that
parents the gateway's span tree and mirror their counters into
``pas_router_routed_total``, ``pas_router_replica_load``,
``pas_router_shed_total``, and ``pas_router_failovers_total``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.core.pas import PasModel
from repro.errors import ConfigError
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.serve.cache import LruCache
from repro.serve.gateway import BatchPlan, GatewayConfig, PasGateway
from repro.serve.traffic import TimedRequest
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.rng import stable_hash
from repro.utils.serialize import register

__all__ = [
    "CACHE_SCOPES",
    "FAIRNESS_MODES",
    "FairnessPolicy",
    "FleetPlan",
    "HASH_KEYS",
    "HedgePolicy",
    "ROUTING_POLICIES",
    "ModelPool",
    "Router",
    "RouterConfig",
    "RouterStats",
    "SharedLruCache",
    "TenantPolicy",
]

#: Placement policies: ``hash`` — consistent-hash on the request key
#: (cache affinity); ``least_loaded`` — argmin over live replica load.
ROUTING_POLICIES = ("hash", "least_loaded")

#: Dispatch-ordering modes: ``priority`` — the historical
#: highest-priority-first sort; ``wfq`` — weighted fair queueing over
#: tenant weights with virtual-time finish tags.
FAIRNESS_MODES = ("priority", "wfq")

#: What the consistent hash keys on: the prompt text (dedupe-friendly —
#: repeats of a prompt share a replica cache) or the tenant id (isolation-
#: friendly — one tenant's traffic stays on one replica).
HASH_KEYS = ("prompt", "tenant")

#: Cache coherence policy across replicas (see the module docstring).
CACHE_SCOPES = ("replica", "shared")

_HASH_SPACE = float(1 << 64)


def _unit_draw(*material: object) -> float:
    """One deterministic U[0, 1) draw keyed by ``material``."""
    return stable_hash("␞".join(str(m) for m in material)) / _HASH_SPACE


class SharedLruCache(LruCache):
    """An :class:`~repro.serve.cache.LruCache` safe to share across replicas.

    ``cache_scope="shared"`` hands one instance of this to every replica;
    the lock makes each get/put atomic.  Replica gateways are driven from
    one event loop today, so the lock is cheap insurance for future
    thread-per-replica execution rather than a hot-path cost.
    """

    def __init__(self, capacity: int = 1024):
        super().__init__(capacity=capacity)
        self._lock = threading.RLock()

    def get(self, key, default=None):
        with self._lock:
            return super().get(key, default)

    def peek(self, key, default=None):
        with self._lock:
            return super().peek(key, default)

    def put(self, key, value) -> None:
        with self._lock:
            super().put(key, value)


@dataclass(frozen=True)
class TenantPolicy:
    """Admission and scheduling policy for one tenant.

    ``quota`` bounds requests per fixed window of ``quota_window_ticks``
    arrival ticks (``None`` — unlimited).  ``rate_tokens_per_tick`` is a
    token bucket refilled on the arrival clock with headroom for
    ``burst`` requests (``None`` — no rate limit).  ``priority``
    overrides the trace's per-request priority at dispatch (``None`` —
    keep the trace's).  Both limiters key on arrival ticks, which no
    fault plan perturbs, so admission is chaos-offset-invariant.
    """

    tenant: str
    quota: int | None = None
    quota_window_ticks: int = 1024
    rate_tokens_per_tick: float | None = None
    burst: int = 8
    priority: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigError("TenantPolicy.tenant must be non-empty")
        if self.quota is not None and self.quota < 1:
            raise ConfigError(f"quota must be >= 1 or None, got {self.quota}")
        if self.quota_window_ticks < 1:
            raise ConfigError(
                f"quota_window_ticks must be >= 1, got {self.quota_window_ticks}"
            )
        if self.rate_tokens_per_tick is not None and self.rate_tokens_per_tick <= 0:
            raise ConfigError(
                "rate_tokens_per_tick must be > 0 or None, "
                f"got {self.rate_tokens_per_tick}"
            )
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``TenantPolicy.from_dict(p.as_dict()) == p``."""
        return {
            "tenant": self.tenant,
            "quota": self.quota,
            "quota_window_ticks": self.quota_window_ticks,
            "rate_tokens_per_tick": self.rate_tokens_per_tick,
            "burst": self.burst,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantPolicy":
        return cls(
            tenant=data["tenant"],
            quota=None if data["quota"] is None else int(data["quota"]),
            quota_window_ticks=int(data["quota_window_ticks"]),
            rate_tokens_per_tick=(
                None
                if data["rate_tokens_per_tick"] is None
                else float(data["rate_tokens_per_tick"])
            ),
            burst=int(data["burst"]),
            priority=None if data["priority"] is None else int(data["priority"]),
        )


@dataclass(frozen=True)
class ModelPool:
    """A virtual model backed by a weighted set of real models.

    Requests addressed to ``name`` resolve to one member per request via
    a deterministic weighted draw; members whose circuit breaker is
    hard-open on the serving replica drop out of the draw (failover).
    """

    name: str
    models: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("ModelPool.name must be non-empty")
        if not isinstance(self.models, tuple):
            object.__setattr__(
                self, "models", tuple((m, float(w)) for m, w in self.models)
            )
        if not self.models:
            raise ConfigError(f"pool {self.name!r} needs at least one model")
        if any(weight <= 0 for _, weight in self.models):
            raise ConfigError(f"pool {self.name!r} model weights must be > 0")
        members = [model for model, _ in self.models]
        if len(set(members)) != len(members):
            raise ConfigError(f"pool {self.name!r} lists a model twice: {members}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``ModelPool.from_dict(p.as_dict()) == p``."""
        return {
            "name": self.name,
            "models": [[model, weight] for model, weight in self.models],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelPool":
        return cls(
            name=data["name"],
            models=tuple((model, float(weight)) for model, weight in data["models"]),
        )


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch a hedged retry for an in-flight request.

    Exactly one trigger must be set.  ``after_ticks`` hedges a fixed
    number of ticks after dispatch; ``percentile`` hedges once the
    request has been in flight longer than that percentile of the run's
    own finished-request latencies, armed only after ``min_samples``
    finishes so early traffic never hedges off noise.  Both triggers are
    pure functions of the logical clock and the run's own history, so
    the hedge schedule replays bit-identically.
    """

    after_ticks: int | None = None
    percentile: float | None = None
    min_samples: int = 16

    def __post_init__(self) -> None:
        if (self.after_ticks is None) == (self.percentile is None):
            raise ConfigError(
                "HedgePolicy needs exactly one trigger: after_ticks or percentile"
            )
        if self.after_ticks is not None and self.after_ticks < 1:
            raise ConfigError(f"after_ticks must be >= 1, got {self.after_ticks}")
        if self.percentile is not None and not (0.0 < self.percentile <= 100.0):
            raise ConfigError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {self.min_samples}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``HedgePolicy.from_dict(p.as_dict()) == p``."""
        return {
            "after_ticks": self.after_ticks,
            "percentile": self.percentile,
            "min_samples": self.min_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HedgePolicy":
        # Omitted keys take the dataclass defaults so hand-authored plan
        # documents only need to spell out the trigger they set.
        after = data.get("after_ticks")
        percentile = data.get("percentile")
        return cls(
            after_ticks=None if after is None else int(after),
            percentile=None if percentile is None else float(percentile),
            min_samples=int(data.get("min_samples", 16)),
        )


@dataclass(frozen=True)
class FairnessPolicy:
    """How dispatch orders each drained batch across tenants.

    ``mode="priority"`` keeps the historical highest-priority-first
    sort.  ``mode="wfq"`` orders by weighted-fair-queueing virtual-time
    finish tags over ``weights`` (tenants not listed get
    ``default_weight``); a tenant with weight 0 forms a background class
    served only after every weighted request in the batch.
    """

    mode: str = "priority"
    weights: tuple[tuple[str, float], ...] = ()
    default_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in FAIRNESS_MODES:
            raise ConfigError(
                f"unknown fairness mode {self.mode!r}; "
                f"expected one of {FAIRNESS_MODES}"
            )
        if not isinstance(self.weights, tuple):
            object.__setattr__(
                self, "weights", tuple((t, float(w)) for t, w in self.weights)
            )
        tenants = [tenant for tenant, _ in self.weights]
        if len(set(tenants)) != len(tenants):
            raise ConfigError(f"duplicate fairness weights: {sorted(tenants)}")
        if any(weight < 0 for _, weight in self.weights):
            raise ConfigError("fairness weights must be >= 0")
        if self.default_weight <= 0:
            raise ConfigError(
                f"default_weight must be > 0, got {self.default_weight}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``FairnessPolicy.from_dict(p.as_dict()) == p``."""
        return {
            "mode": self.mode,
            "weights": [[tenant, weight] for tenant, weight in self.weights],
            "default_weight": self.default_weight,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FairnessPolicy":
        return cls(
            mode=data.get("mode", "priority"),
            weights=tuple(
                (tenant, float(w)) for tenant, w in data.get("weights", ())
            ),
            default_weight=float(data.get("default_weight", 1.0)),
        )


@dataclass(frozen=True)
class FleetPlan:
    """One declarative description of the whole fleet.

    ``replicas`` is the target live-replica count (``None`` — leave
    membership alone); :meth:`Router.apply` diffs it against live state
    into the matching :meth:`Router.add_replica` /
    :meth:`Router.drain_replica` calls.  ``hedge`` and ``fairness``
    select the tail-tolerance and dispatch-ordering policies, and
    ``spike_rate`` / ``spike_ticks`` inject seed-pure per-replica
    latency stragglers (so hedging has something to win against).  The
    plan is JSON-safe and round-trips losslessly as the ``fleet``
    section of :class:`~repro.serve.config.ServingConfig`.
    """

    replicas: int | None = None
    hedge: HedgePolicy | None = None
    fairness: FairnessPolicy = FairnessPolicy()
    spike_rate: float = 0.0
    spike_ticks: int = 0

    def __post_init__(self) -> None:
        if self.replicas is not None and self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1 or None, got {self.replicas}")
        if not (0.0 <= self.spike_rate < 1.0):
            raise ConfigError(
                f"spike_rate must be in [0, 1), got {self.spike_rate}"
            )
        if self.spike_ticks < 0:
            raise ConfigError(f"spike_ticks must be >= 0, got {self.spike_ticks}")
        if self.spike_rate > 0 and self.spike_ticks < 1:
            raise ConfigError("spike_rate > 0 needs spike_ticks >= 1")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``FleetPlan.from_dict(p.as_dict()) == p``."""
        return {
            "replicas": self.replicas,
            "hedge": None if self.hedge is None else self.hedge.as_dict(),
            "fairness": self.fairness.as_dict(),
            "spike_rate": self.spike_rate,
            "spike_ticks": self.spike_ticks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetPlan":
        # Omitted keys take the dataclass defaults: a plan document that
        # only says {"replicas": 4} is a valid scale-out order.
        replicas = data.get("replicas")
        hedge = data.get("hedge")
        fairness = data.get("fairness")
        return cls(
            replicas=None if replicas is None else int(replicas),
            hedge=None if hedge is None else HedgePolicy.from_dict(hedge),
            fairness=(
                FairnessPolicy()
                if fairness is None
                else FairnessPolicy.from_dict(fairness)
            ),
            spike_rate=float(data.get("spike_rate", 0.0)),
            spike_ticks=int(data.get("spike_ticks", 0)),
        )


@dataclass(frozen=True)
class RouterConfig:
    """Everything configurable about a :class:`Router`.

    ``seed`` salts the hash ring and every pool draw; ``vnodes`` is the
    number of ring points per replica (more points → smoother key
    spread).  See the module docstring for ``policy`` / ``hash_key`` /
    ``cache_scope`` semantics.
    """

    n_replicas: int = 1
    policy: str = "hash"
    hash_key: str = "prompt"
    vnodes: int = 64
    cache_scope: str = "replica"
    seed: int = 0
    tenants: tuple[TenantPolicy, ...] = ()
    pools: tuple[ModelPool, ...] = ()

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigError(f"n_replicas must be >= 1, got {self.n_replicas}")
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if self.hash_key not in HASH_KEYS:
            raise ConfigError(
                f"unknown hash_key {self.hash_key!r}; expected one of {HASH_KEYS}"
            )
        if self.vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.cache_scope not in CACHE_SCOPES:
            raise ConfigError(
                f"unknown cache_scope {self.cache_scope!r}; "
                f"expected one of {CACHE_SCOPES}"
            )
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if not isinstance(self.pools, tuple):
            object.__setattr__(self, "pools", tuple(self.pools))
        tenant_names = [policy.tenant for policy in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigError(f"duplicate tenant policies: {sorted(tenant_names)}")
        pool_names = [pool.name for pool in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ConfigError(f"duplicate pool names: {sorted(pool_names)}")
        for pool in self.pools:
            nested = [m for m, _ in pool.models if m in set(pool_names)]
            if nested:
                raise ConfigError(
                    f"pool {pool.name!r} cannot contain other pools: {nested}"
                )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``RouterConfig.from_dict(c.as_dict()) == c``."""
        return {
            "n_replicas": self.n_replicas,
            "policy": self.policy,
            "hash_key": self.hash_key,
            "vnodes": self.vnodes,
            "cache_scope": self.cache_scope,
            "seed": self.seed,
            "tenants": [policy.as_dict() for policy in self.tenants],
            "pools": [pool.as_dict() for pool in self.pools],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RouterConfig":
        return cls(
            n_replicas=int(data["n_replicas"]),
            policy=data["policy"],
            hash_key=data["hash_key"],
            vnodes=int(data["vnodes"]),
            cache_scope=data["cache_scope"],
            seed=int(data["seed"]),
            tenants=tuple(TenantPolicy.from_dict(t) for t in data["tenants"]),
            pools=tuple(ModelPool.from_dict(p) for p in data["pools"]),
        )


for _serializable in (
    TenantPolicy,
    ModelPool,
    HedgePolicy,
    FairnessPolicy,
    FleetPlan,
    RouterConfig,
):
    register(_serializable)
del _serializable


class RouterStats:
    """Live accounting view over one :class:`Router`.

    ``routed`` counts placements per live replica (in stable rid order);
    ``routed_total`` also includes placements on since-retired replicas;
    ``sheds`` counts admission rejections by reason (``quota`` /
    ``ratelimit``); ``failovers`` counts pool draws that excluded at
    least one breaker-open member, per pool; ``load`` is the current
    queued + in-flight assignment count per live replica; ``hedges``
    counts hedged retries by outcome (``win`` / ``loss`` / ``skipped``);
    ``evicted`` counts replica-scope cache entries discarded at
    retirement.
    """

    __slots__ = ("_router",)

    def __init__(self, router: "Router"):
        self._router = router

    @property
    def routed(self) -> list[int]:
        router = self._router
        return [router._routed.get(rid, 0) for rid in sorted(router._fleet)]

    @property
    def routed_total(self) -> int:
        return sum(self._router._routed.values())

    @property
    def sheds(self) -> dict[str, int]:
        return dict(self._router._sheds)

    @property
    def failovers(self) -> dict[str, int]:
        return dict(self._router._failovers)

    @property
    def load(self) -> list[int]:
        router = self._router
        return [router._load.get(rid, 0) for rid in sorted(router._fleet)]

    @property
    def hedges(self) -> dict[str, int]:
        return dict(self._router._hedges)

    @property
    def evicted(self) -> int:
        return self._router._evicted

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order."""
        return {
            "routed": self.routed,
            "routed_total": self.routed_total,
            "sheds": dict(sorted(self.sheds.items())),
            "failovers": dict(sorted(self.failovers.items())),
            "load": self.load,
            "hedges": dict(sorted(self.hedges.items())),
            "evicted": self.evicted,
        }

    def __repr__(self) -> str:
        return f"RouterStats({self.as_dict()!r})"


class Router:
    """Place requests over N gateway replicas; see the module docstring.

    Construct from a trained PAS model (``Router(pas, config)`` — the
    router builds the replicas, each from ``config.gateway`` when given a
    :class:`~repro.serve.config.ServingConfig`, or a default
    :class:`~repro.serve.gateway.GatewayConfig` otherwise) or adopt
    pre-built gateways (``Router(replicas=[gw, ...])`` — what the engine
    does when handed a bare gateway).  The
    :class:`~repro.serve.engine.ServingEngine` is the intended driver:
    it calls :meth:`admit` at arrival, :meth:`route` / :meth:`resolve`
    at dispatch, and :meth:`serve_planned` / :meth:`release` at finish.
    """

    def __init__(
        self,
        pas: PasModel | None = None,
        config: object = None,
        obs: Observability = NULL_OBS,
        *,
        replicas: Sequence[PasGateway] | None = None,
        policy: object = None,
    ):
        if config is None:
            router_cfg, gateway_cfg, fleet_cfg = RouterConfig(), None, None
        elif isinstance(config, RouterConfig):
            router_cfg, gateway_cfg, fleet_cfg = config, None, None
        elif hasattr(config, "router") and hasattr(config, "gateway"):
            router_cfg, gateway_cfg = config.router, config.gateway
            fleet_cfg = getattr(config, "fleet", None)
        else:
            raise TypeError(
                "config must be a RouterConfig or a ServingConfig, "
                f"got {type(config).__name__}"
            )

        # One policy object is shared across every replica: the bandit
        # learns fleet-wide (its contexts key on (category, tenant), not
        # on replicas), exactly like a shared cache tier.  Kept, with the
        # shared caches, so add_replica can build identical newcomers.
        self._policy_obj = policy
        self._shared_complement: LruCache[str, str] | None = None
        self._shared_embed: LruCache[str, np.ndarray] | None = None

        if replicas is not None:
            if pas is not None:
                raise TypeError("pass either pas or replicas, not both")
            if policy is not None:
                raise TypeError(
                    "pass policy= only when the router builds the replicas; "
                    "adopted gateways already own their policies"
                )
            if not replicas:
                raise ConfigError("replicas must be non-empty when given")
            if fleet_cfg is not None and fleet_cfg.replicas not in (
                None,
                len(replicas),
            ):
                raise ConfigError(
                    f"fleet plan names {fleet_cfg.replicas} replicas but "
                    f"{len(replicas)} gateways were given"
                )
            if router_cfg.n_replicas != len(replicas):
                # The default n_replicas=1 means "infer from the gateways";
                # an explicit mismatch is a configuration error.
                if router_cfg.n_replicas == 1:
                    router_cfg = replace(router_cfg, n_replicas=len(replicas))
                else:
                    raise ConfigError(
                        f"config names {router_cfg.n_replicas} replicas but "
                        f"{len(replicas)} gateways were given"
                    )
            self._pas = None
            self._fleet: dict[int, PasGateway] = dict(enumerate(replicas))
            if obs is NULL_OBS:
                obs = replicas[0].obs
            self.gateway_config = replicas[0].config
        else:
            if pas is None:
                raise TypeError("Router() needs a PasModel (or replicas=...)")
            self._pas = pas
            self.gateway_config = gateway_cfg or GatewayConfig()
            if router_cfg.cache_scope == "shared":
                self._shared_complement = SharedLruCache(
                    capacity=self.gateway_config.cache_size
                )
                if self.gateway_config.embed_cache_size > 0:
                    self._shared_embed = SharedLruCache(
                        capacity=self.gateway_config.embed_cache_size
                    )
            # The fleet plan's target count wins over router.n_replicas at
            # construction, exactly as it does in validate() and apply():
            # one ServingConfig is one deployment description.
            n_target = router_cfg.n_replicas
            if fleet_cfg is not None and fleet_cfg.replicas is not None:
                n_target = fleet_cfg.replicas
            self._fleet = {rid: self._new_gateway(obs) for rid in range(n_target)}

        self.config = router_cfg
        self.obs = obs
        #: Replica ids are stable for the router's lifetime: the next id
        #: is never reused, so engine slot keys and metrics labels stay
        #: unambiguous across any add/drain sequence.
        self._next_rid = len(self._fleet)
        self._draining: set[int] = set()
        self._retired_ticks = 0
        n = len(self._fleet)

        #: Trivial mode: the identity router.  It adds no spans, metrics,
        #: or events, so the 1-replica engine stays bit-identical to the
        #: single-gateway engine (the headline parity contract).
        self.trivial = (
            n == 1
            and router_cfg.policy == "hash"
            and not router_cfg.tenants
            and not router_cfg.pools
            and router_cfg.cache_scope == "replica"
        )

        # Each gateway bound the shared obs clock to its own counter at
        # construction (last one wins); rebind to the fleet-wide request
        # count, which collapses to the single gateway's clock at n=1.
        if not self.trivial:
            self._bind_fleet_clock()

        self._policies = {tenant.tenant: tenant for tenant in router_cfg.tenants}
        self._pools = {pool.name: pool for pool in router_cfg.pools}
        self._ring = self._build_ring(router_cfg.seed, n, router_cfg.vnodes)
        self._load = {rid: 0 for rid in self._fleet}
        self._routed = {rid: 0 for rid in self._fleet}
        self._sheds: dict[str, int] = {}
        self._failovers: dict[str, int] = {}
        self._hedges: dict[str, int] = {}
        self._evicted = 0
        # tenant -> (window index, count) / (last refill tick, tokens)
        self._quota: dict[str, tuple[int, int]] = {}
        self._buckets: dict[str, tuple[int, float]] = {}

        self._register_instruments()
        self._install_plan(fleet_cfg if fleet_cfg is not None else FleetPlan())
        self.stats = RouterStats(self)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_ring(seed: int, n: int, vnodes: int) -> list[tuple[int, int]]:
        """The consistent-hash ring: sorted (point, replica) pairs."""
        points = [
            (stable_hash(f"router.ring␞{seed}␞{replica}␞{vnode}"), replica)
            for replica in range(n)
            for vnode in range(vnodes)
        ]
        points.sort()
        return points

    def _ring_points(self, rid: int) -> list[tuple[int, int]]:
        """The ring points one replica owns (a pure function of its rid)."""
        return [
            (stable_hash(f"router.ring␞{self.config.seed}␞{rid}␞{vnode}"), rid)
            for vnode in range(self.config.vnodes)
        ]

    def _new_gateway(self, obs: Observability) -> PasGateway:
        """One more replica, identical to every sibling by construction."""
        return PasGateway(
            self._pas,
            config=self.gateway_config,
            obs=obs,
            complement_cache=self._shared_complement,
            embed_cache=self._shared_embed,
            policy=self._policy_obj,
        )

    def _bind_fleet_clock(self) -> None:
        # Closes over self, not a gateway list, so the binding survives
        # membership changes; retired replicas keep their ticks counted.
        self.obs.bind_clock(
            lambda: self._retired_ticks
            + sum(gateway._clock for gateway in self._fleet.values())
        )

    def _register_instruments(self) -> None:
        # The trivial router must not register instruments: an empty
        # registered series still appears in metrics snapshots, which
        # would break byte-parity with the single-gateway engine.
        if self.trivial:
            self._registry = MetricsRegistry()
        elif self.obs.metrics.enabled:
            self._registry = self.obs.metrics
        else:
            self._registry = MetricsRegistry()
        self._m_routed = self._registry.counter(
            "pas_router_routed_total", help="Requests placed, by replica."
        )
        self._m_load = self._registry.gauge(
            "pas_router_replica_load",
            help="Live queued + in-flight assignments, by replica.",
        )
        self._m_shed = self._registry.counter(
            "pas_router_shed_total",
            help="Requests shed at admission, by reason (quota/ratelimit).",
        )
        self._m_failover = self._registry.counter(
            "pas_router_failovers_total",
            help="Pool draws that excluded a breaker-open member, by pool.",
        )
        self._m_evicted = self._registry.counter(
            "pas_router_cache_evicted_total",
            help="Replica-scope cache entries discarded at retirement, by replica.",
        )
        self._m_hedges = self._registry.counter(
            "pas_router_hedges_total",
            help="Hedged retries, by outcome (win/loss/skipped).",
        )

    # ------------------------------------------------------------------ #
    # elastic membership
    # ------------------------------------------------------------------ #

    @property
    def replicas(self) -> list[PasGateway]:
        """Live gateways in stable rid order (draining ones included
        until their last in-flight request finishes)."""
        return [self._fleet[rid] for rid in sorted(self._fleet)]

    def gateway_for(self, rid: int) -> PasGateway:
        """The gateway behind one stable replica id."""
        return self._fleet[rid]

    @property
    def live_rids(self) -> list[int]:
        """Replica ids accepting new placements, in stable order."""
        return [rid for rid in sorted(self._fleet) if rid not in self._draining]

    def add_replica(self) -> int:
        """Grow the fleet by one replica, live; returns its stable rid.

        The newcomer's vnodes merge into the ring while every existing
        point stays put, so only ~1/N of the hash-key space remaps onto
        it.  Shared cache tiers and the fleet policy are threaded through
        unchanged; a previously-trivial router becomes observable (its
        instruments register now).
        """
        if self._pas is None:
            raise ConfigError(
                "cannot add replicas to a router that adopted pre-built "
                "gateways; construct Router(pas, config) to scale live"
            )
        rid = self._next_rid
        self._next_rid = rid + 1
        self._fleet[rid] = self._new_gateway(self.obs)
        self._load[rid] = 0
        self._routed[rid] = 0
        self._ring = sorted(self._ring + self._ring_points(rid))
        if self.trivial:
            # A grown fleet can no longer stay invisible: register the
            # router's instruments on the real registry from here on.
            self.trivial = False
            self._register_instruments()
        self._bind_fleet_clock()
        self.obs.events.emit(
            "router.scale",
            tick=self.clock,
            action="add",
            replica=rid,
            fleet=len(self.live_rids),
        )
        return rid

    def drain_replica(self, rid: int) -> bool:
        """Begin retiring one replica; returns True if it retired now.

        New placements stop immediately — the rid's vnodes leave the
        ring (remapping only its ~1/N key share) and least-loaded skips
        it — while in-flight requests finish normally.  The gateway is
        retired by the :meth:`release` that returns its last assignment
        (or immediately when idle): its clock ticks accumulate into the
        fleet clock and its replica-scope caches are discarded under
        ``pas_router_cache_evicted_total``.
        """
        if rid not in self._fleet:
            raise ConfigError(
                f"unknown replica {rid}; live rids: {sorted(self._fleet)}"
            )
        if rid in self._draining:
            return False
        if len(self.live_rids) <= 1:
            raise ConfigError("cannot drain the last live replica")
        self._draining.add(rid)
        self._ring = [entry for entry in self._ring if entry[1] != rid]
        self.obs.events.emit(
            "router.scale",
            tick=self.clock,
            action="drain",
            replica=rid,
            inflight=self._load.get(rid, 0),
        )
        if self._load.get(rid, 0) == 0:
            self._retire(rid)
            return True
        return False

    def _retire(self, rid: int) -> None:
        gateway = self._fleet.pop(rid)
        self._draining.discard(rid)
        self._load.pop(rid, None)
        self._retired_ticks += gateway._clock
        evicted = 0
        if self.config.cache_scope == "replica":
            for cache in (gateway._complement_cache, gateway._embed_cache):
                if cache is not None:
                    evicted += len(cache)
                    cache.clear()
        if evicted:
            self._evicted += evicted
            self._m_evicted.inc(evicted, replica=str(rid))
        self._bind_fleet_clock()
        self.obs.events.emit(
            "router.scale",
            tick=self.clock,
            action="retired",
            replica=rid,
            evicted=evicted,
        )

    def apply(self, plan: FleetPlan) -> dict:
        """Reconcile live state with one declarative :class:`FleetPlan`.

        Installs the plan's hedge/fairness/spike policy, then diffs the
        target replica count against live membership into the matching
        :meth:`add_replica` / :meth:`drain_replica` calls (highest rid
        drains first).  Returns ``{"added", "draining", "removed"}`` rid
        lists; draining rids retire on their own as in-flight work ends.
        """
        self._install_plan(plan)
        added: list[int] = []
        draining: list[int] = []
        removed: list[int] = []
        if plan.replicas is not None:
            live = self.live_rids
            while len(live) < plan.replicas:
                rid = self.add_replica()
                live.append(rid)
                added.append(rid)
            while len(live) > plan.replicas:
                rid = live.pop()
                if self.drain_replica(rid):
                    removed.append(rid)
                else:
                    draining.append(rid)
        return {"added": added, "draining": draining, "removed": removed}

    def _install_plan(self, plan: FleetPlan) -> None:
        self.fleet_plan = plan
        self._spike_rate = plan.spike_rate
        self._spike_ticks = plan.spike_ticks
        # Exact Fractions end to end (the bandit's trick): virtual time
        # never accumulates float error, so WFQ order replays exactly.
        self._wfq_weights = {
            tenant: Fraction(weight) for tenant, weight in plan.fairness.weights
        }
        self._wfq_default = Fraction(plan.fairness.default_weight)
        self._wfq_v = Fraction(0)
        self._wfq_finish: dict[str, Fraction] = {}

    @property
    def hedge_policy(self) -> HedgePolicy | None:
        """The installed hedge trigger (``None`` — hedging disabled)."""
        return self.fleet_plan.hedge

    @property
    def fairness_mode(self) -> str:
        """The installed dispatch-ordering mode (see ``FAIRNESS_MODES``)."""
        return self.fleet_plan.fairness.mode

    # ------------------------------------------------------------------ #
    # admission (quotas and rate limits on the arrival clock)
    # ------------------------------------------------------------------ #

    def admit(self, timed: TimedRequest) -> str | None:
        """Admission-check one arrival; returns the shed reason or ``None``.

        Quota first (a tenant over its window quota is not charged bucket
        tokens), then the token bucket.  Both key on ``timed.tick`` — the
        arrival clock — so the decision sequence is identical across
        fault-plan variations of the same trace.
        """
        policy = self._policies.get(timed.tenant)
        if policy is None:
            return None
        if policy.quota is not None:
            window = timed.tick // policy.quota_window_ticks
            seen_window, count = self._quota.get(timed.tenant, (window, 0))
            if seen_window != window:
                count = 0
            if count >= policy.quota:
                self._shed(timed, "quota")
                return "quota"
            self._quota[timed.tenant] = (window, count + 1)
        if policy.rate_tokens_per_tick is not None:
            last, tokens = self._buckets.get(
                timed.tenant, (timed.tick, float(policy.burst))
            )
            tokens = min(
                float(policy.burst),
                tokens + (timed.tick - last) * policy.rate_tokens_per_tick,
            )
            if tokens < 1.0:
                self._buckets[timed.tenant] = (timed.tick, tokens)
                self._shed(timed, "ratelimit")
                return "ratelimit"
            self._buckets[timed.tenant] = (timed.tick, tokens - 1.0)
        return None

    def _shed(self, timed: TimedRequest, reason: str) -> None:
        self._sheds[reason] = self._sheds.get(reason, 0) + 1
        self._m_shed.inc(reason=reason)
        self.obs.events.emit(
            "router.shed", tick=timed.tick, reason=reason, tenant=timed.tenant
        )

    def effective_priority(self, timed: TimedRequest) -> int:
        """The trace priority, unless the tenant's policy overrides it."""
        policy = self._policies.get(timed.tenant)
        if policy is not None and policy.priority is not None:
            return policy.priority
        return timed.priority

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def route(self, request: ServeRequest, timed: TimedRequest) -> int:
        """Pick the replica for one request and take a load assignment.

        Hash mode is a pure function of ``(ring, key)``; least-loaded
        reads the live load vector (argmin, lowest index on ties), which
        is itself deterministic because the event loop is.  Balance the
        assignment with :meth:`release` when the request finishes (or is
        shed after routing).
        """
        if self.trivial:
            return next(iter(self._fleet))
        if self.config.policy == "hash":
            point = stable_hash(f"router.key␞{self._hash_material(request, timed)}")
            # Draining replicas already left the ring, so hash placement
            # skips them for free.  _next_rid exceeds every live rid, so
            # the sentinel sorts after any (point, rid) tie.
            index = bisect_right(self._ring, (point, self._next_rid))
            if index == len(self._ring):
                index = 0
            replica = self._ring[index][1]
        else:
            replica = min(self.live_rids, key=lambda rid: (self._load[rid], rid))
        self._load[replica] += 1
        self._routed[replica] += 1
        self._m_routed.inc(replica=str(replica))
        self._m_load.set(self._load[replica], replica=str(replica))
        return replica

    def _hash_material(self, request: ServeRequest, timed: TimedRequest) -> str:
        if self.config.hash_key == "tenant":
            return timed.tenant if request.tenant is None else request.tenant
        return request.prompt

    def release(self, replica: int) -> None:
        """Return one load assignment (request finished or shed)."""
        if self.trivial:
            return
        self._load[replica] -= 1
        self._m_load.set(self._load[replica], replica=str(replica))
        if replica in self._draining and self._load[replica] == 0:
            self._retire(replica)

    # ------------------------------------------------------------------ #
    # hedged retries (the engine's tail-tolerance surface)
    # ------------------------------------------------------------------ #

    def hedge_candidate(
        self, request: ServeRequest, timed: TimedRequest, primary: int
    ) -> int | None:
        """The deterministic second replica for a hedged retry.

        Hash policy walks the ring clockwise from the request's point to
        the first live replica other than ``primary`` (the natural
        "next owner"); least-loaded takes the argmin excluding
        ``primary``.  Draining replicas never host hedges.  ``None``
        means no candidate exists (single-replica fleet).
        """
        live = [rid for rid in self.live_rids if rid != primary]
        if not live:
            return None
        if self.config.policy == "least_loaded":
            return min(live, key=lambda rid: (self._load[rid], rid))
        point = stable_hash(f"router.key␞{self._hash_material(request, timed)}")
        index = bisect_right(self._ring, (point, self._next_rid))
        eligible = set(live)
        for step in range(len(self._ring)):
            entry = self._ring[(index + step) % len(self._ring)]
            if entry[1] in eligible:
                return entry[1]
        return live[0]

    def take_hedge(self, replica: int) -> None:
        """Take a load assignment for a hedge leg (not a placement)."""
        self._load[replica] += 1
        self._m_load.set(self._load[replica], replica=str(replica))

    def resolve_hedge(
        self,
        outcome: str,
        *,
        tick: int,
        primary: int,
        hedge: int | None = None,
    ) -> None:
        """Record one hedge outcome: ``win`` (the hedge leg finished
        first), ``loss`` (the primary won the race), or ``skipped`` (no
        candidate or no free slot at launch time)."""
        self._hedges[outcome] = self._hedges.get(outcome, 0) + 1
        self._m_hedges.inc(outcome=outcome)
        fields = {"outcome": outcome, "primary": primary}
        if hedge is not None:
            fields["hedge"] = hedge
        self.obs.events.emit("router.hedge", tick=tick, **fields)
        if outcome != "skipped":
            with self.obs.tracer.span("router.hedge", **fields):
                pass

    # ------------------------------------------------------------------ #
    # weighted fair queueing (the engine's dispatch-ordering surface)
    # ------------------------------------------------------------------ #

    def wfq_tags(
        self, batch: Sequence[TimedRequest]
    ) -> list[tuple[int, Fraction]]:
        """Virtual-time finish tags for one drained batch, in batch order.

        Start-time fair queueing over exact Fractions: each request
        starts at ``max(virtual time, its tenant's last finish)`` and
        finishes ``1/weight`` later, so a tenant with twice the weight
        accrues finish tags half as fast and wins twice the slots under
        contention.  Zero-weight tenants tag ``(1, 0)`` — a background
        class sorting after every weighted tag ``(0, finish)``; a stable
        sort keeps arrival order inside each class.
        """
        tags: list[tuple[int, Fraction]] = []
        starts: list[Fraction] = []
        for timed in batch:
            weight = self._wfq_weights.get(timed.tenant, self._wfq_default)
            if weight <= 0:
                tags.append((1, Fraction(0)))
                continue
            start = max(self._wfq_v, self._wfq_finish.get(timed.tenant, Fraction(0)))
            finish = start + Fraction(1) / weight
            self._wfq_finish[timed.tenant] = finish
            starts.append(start)
            tags.append((0, finish))
        if starts:
            self._wfq_v = max(self._wfq_v, min(starts))
        return tags

    # ------------------------------------------------------------------ #
    # pool resolution (failover over circuit breakers)
    # ------------------------------------------------------------------ #

    def resolve(
        self,
        request: ServeRequest,
        timed: TimedRequest,
        replica: int,
        *,
        force: bool = False,
    ) -> ServeRequest | None:
        """Resolve a pool-addressed request to a concrete member model.

        Non-pool models pass through untouched.  The weighted draw is a
        pure function of ``(router seed, pool, arrival tick, request
        key)``; members whose breaker is hard-open on ``replica`` (a
        side-effect-free peek — recovery probes are never consumed here)
        drop out first.  An all-open pool returns ``None`` unless
        ``force=True`` (the engine's ``degrade`` shed policy), which
        draws over the full membership and lets the gateway's breaker
        fast-fail or probe.
        """
        pool = self._pools.get(request.model)
        if pool is None:
            return request
        gateway = self._fleet[replica]
        # The breaker clock is the gateway's request counter; the serve
        # this draw feeds will run at clock + 1 or later, so peek there.
        probe_tick = gateway.clock + 1
        eligible = [
            (model, weight)
            for model, weight in pool.models
            if model not in gateway._breakers
            or gateway._breakers[model].would_allow(probe_tick)
        ]
        if len(eligible) < len(pool.models) and eligible:
            self._failovers[pool.name] = self._failovers.get(pool.name, 0) + 1
            self._m_failover.inc(pool=pool.name)
        if not eligible:
            if not force:
                return None
            eligible = list(pool.models)
        key = request.request_id if request.request_id is not None else request.prompt
        draw = _unit_draw("router.pool", self.config.seed, pool.name, timed.tick, key)
        total = sum(weight for _, weight in eligible)
        threshold = draw * total
        acc = 0.0
        chosen = eligible[-1][0]
        for model, weight in eligible:
            acc += weight
            if threshold < acc:
                chosen = model
                break
        return replace(request, model=chosen)

    # ------------------------------------------------------------------ #
    # serving (the engine's per-replica gateway surface)
    # ------------------------------------------------------------------ #

    def plan_batch(self, replica: int, requests: Sequence[ServeRequest]) -> BatchPlan:
        """Plan one drained batch group on its target replica."""
        return self._fleet[replica].plan_batch(requests)

    def completion_latency(
        self, replica: int, request: ServeRequest, plan: BatchPlan | None = None
    ) -> int:
        """Price one completion on its target replica (pure).

        The installed :class:`FleetPlan`'s ``spike_rate`` adds a
        seed-pure per-(replica, request) straggler penalty on top of the
        gateway's content-keyed latency model — without it every replica
        prices a request identically and a hedge could never win.
        """
        latency = self._fleet[replica].completion_latency(request, plan)
        if self._spike_rate > 0.0:
            key = (
                request.request_id
                if request.request_id is not None
                else request.prompt
            )
            draw = _unit_draw("router.spike", self.config.seed, replica, key)
            if draw < self._spike_rate:
                latency += self._spike_ticks
        return latency

    def serve_planned(
        self, replica: int, request: ServeRequest, plan: BatchPlan
    ) -> ServeResponse:
        """Serve one planned request on its replica.

        Non-trivial routers wrap the serve in a ``router.route`` span, so
        the gateway's ``gateway.ask`` tree hangs off the routing decision
        in trace exports; the trivial router stays invisible.
        """
        gateway = self._fleet[replica]
        if self.trivial:
            return gateway.serve_planned(request, plan)
        with self.obs.tracer.span(
            "router.route", replica=replica, policy=self.config.policy
        ) as span:
            if request.tenant is not None:
                span.set(tenant=request.tenant)
            response = gateway.serve_planned(request, plan)
            span.status = response.status
        return response

    # ------------------------------------------------------------------ #
    # fleet views
    # ------------------------------------------------------------------ #

    @property
    def n_replicas(self) -> int:
        """Fleet size, draining replicas included until they retire."""
        return len(self._fleet)

    @property
    def policy(self) -> object:
        """The fleet's shared augmentation policy (``None`` when unpoliced)."""
        return self.replicas[0].policy

    @property
    def clock(self) -> int:
        """Fleet-wide logical time: requests attempted across replicas,
        including every since-retired replica's ticks."""
        return self._retired_ticks + sum(
            gateway._clock for gateway in self._fleet.values()
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fleet complement-cache hit rate (shared scope: the one cache's)."""
        hits = sum(g._complement_cache.hits for g in self._distinct_caches())
        misses = sum(g._complement_cache.misses for g in self._distinct_caches())
        total = hits + misses
        return hits / total if total else 0.0

    def _distinct_caches(self) -> list[PasGateway]:
        seen: list[PasGateway] = []
        cache_ids: set[int] = set()
        for gateway in self.replicas:
            if id(gateway._complement_cache) not in cache_ids:
                cache_ids.add(id(gateway._complement_cache))
                seen.append(gateway)
        return seen
