"""Horizontal scale-out: a deterministic router over gateway replicas.

One :class:`~repro.serve.gateway.PasGateway` is one process; the paper's
deployment story (Figure 1a: PAS in front of *any* model fleet) implies
many.  :class:`Router` owns N gateway replicas — same trained PAS model,
same :class:`~repro.serve.gateway.GatewayConfig`, so any replica produces
bit-identical completions for the same request — and places each request
by a pluggable policy:

* ``policy="hash"`` — **cache affinity**: consistent hashing over a
  virtual-node ring keyed on the prompt (or tenant), so repeats of a
  prompt always land on the replica whose complement cache already holds
  it.  The ring is a pure function of ``(seed, n_replicas, vnodes)``;
  adding a replica remaps only ~1/N of the key space.
* ``policy="least_loaded"`` — **balance**: argmin over live per-replica
  load (queued + in-flight assignments), lowest index breaking ties.

Layered on top:

* **multi-tenancy** — per-tenant :class:`TenantPolicy` enforced at
  admission: a fixed-window request quota, a token-bucket rate limit,
  and a priority override.  Both limiters run on *arrival ticks*, which
  are a pure function of the traffic seed and independent of any fault
  plan, so admission decisions are invariant across chaos-seed offsets.
* **weighted model pools with failover** — a :class:`ModelPool` names a
  virtual model backed by a weighted set of real models.  The weighted
  draw is a pure function of ``(router seed, pool, arrival tick, request
  key)``; members whose circuit breaker is hard-open on the target
  replica drop out of the draw (a *failover*), and a pool with every
  member open resolves to nothing — the engine sheds it (``reject``) or
  draws over the full pool anyway (``degrade``: the gateway's own
  breaker then fast-fails or admits the recovery probe).
* **cache coherence as explicit policy** — ``cache_scope="replica"``
  (default) gives every replica private cache tiers, which affinity
  routing keeps effective; ``cache_scope="shared"`` threads one
  lock-guarded two-tier cache through every replica.

**The trivial router is invisible.**  One replica + hash policy + no
tenant policies + no pools + replica-scoped caches adopts the single
gateway unchanged: no ``router.route`` spans, no ``pas_router_*``
metrics, no extra events — the engine driving it is bit-identical to the
single-gateway engine, exports and all (the parity suite pins this).
Non-trivial routers wrap each serve in a ``router.route`` span that
parents the gateway's span tree and mirror their counters into
``pas_router_routed_total``, ``pas_router_replica_load``,
``pas_router_shed_total``, and ``pas_router_failovers_total``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.pas import PasModel
from repro.errors import ConfigError
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.serve.cache import LruCache
from repro.serve.gateway import BatchPlan, GatewayConfig, PasGateway
from repro.serve.traffic import TimedRequest
from repro.serve.types import ServeRequest, ServeResponse
from repro.utils.rng import stable_hash

__all__ = [
    "CACHE_SCOPES",
    "HASH_KEYS",
    "ROUTING_POLICIES",
    "ModelPool",
    "Router",
    "RouterConfig",
    "RouterStats",
    "SharedLruCache",
    "TenantPolicy",
]

#: Placement policies: ``hash`` — consistent-hash on the request key
#: (cache affinity); ``least_loaded`` — argmin over live replica load.
ROUTING_POLICIES = ("hash", "least_loaded")

#: What the consistent hash keys on: the prompt text (dedupe-friendly —
#: repeats of a prompt share a replica cache) or the tenant id (isolation-
#: friendly — one tenant's traffic stays on one replica).
HASH_KEYS = ("prompt", "tenant")

#: Cache coherence policy across replicas (see the module docstring).
CACHE_SCOPES = ("replica", "shared")

_HASH_SPACE = float(1 << 64)


def _unit_draw(*material: object) -> float:
    """One deterministic U[0, 1) draw keyed by ``material``."""
    return stable_hash("␞".join(str(m) for m in material)) / _HASH_SPACE


class SharedLruCache(LruCache):
    """An :class:`~repro.serve.cache.LruCache` safe to share across replicas.

    ``cache_scope="shared"`` hands one instance of this to every replica;
    the lock makes each get/put atomic.  Replica gateways are driven from
    one event loop today, so the lock is cheap insurance for future
    thread-per-replica execution rather than a hot-path cost.
    """

    def __init__(self, capacity: int = 1024):
        super().__init__(capacity=capacity)
        self._lock = threading.RLock()

    def get(self, key, default=None):
        with self._lock:
            return super().get(key, default)

    def peek(self, key, default=None):
        with self._lock:
            return super().peek(key, default)

    def put(self, key, value) -> None:
        with self._lock:
            super().put(key, value)


@dataclass(frozen=True)
class TenantPolicy:
    """Admission and scheduling policy for one tenant.

    ``quota`` bounds requests per fixed window of ``quota_window_ticks``
    arrival ticks (``None`` — unlimited).  ``rate_tokens_per_tick`` is a
    token bucket refilled on the arrival clock with headroom for
    ``burst`` requests (``None`` — no rate limit).  ``priority``
    overrides the trace's per-request priority at dispatch (``None`` —
    keep the trace's).  Both limiters key on arrival ticks, which no
    fault plan perturbs, so admission is chaos-offset-invariant.
    """

    tenant: str
    quota: int | None = None
    quota_window_ticks: int = 1024
    rate_tokens_per_tick: float | None = None
    burst: int = 8
    priority: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigError("TenantPolicy.tenant must be non-empty")
        if self.quota is not None and self.quota < 1:
            raise ConfigError(f"quota must be >= 1 or None, got {self.quota}")
        if self.quota_window_ticks < 1:
            raise ConfigError(
                f"quota_window_ticks must be >= 1, got {self.quota_window_ticks}"
            )
        if self.rate_tokens_per_tick is not None and self.rate_tokens_per_tick <= 0:
            raise ConfigError(
                "rate_tokens_per_tick must be > 0 or None, "
                f"got {self.rate_tokens_per_tick}"
            )
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``TenantPolicy.from_dict(p.as_dict()) == p``."""
        return {
            "tenant": self.tenant,
            "quota": self.quota,
            "quota_window_ticks": self.quota_window_ticks,
            "rate_tokens_per_tick": self.rate_tokens_per_tick,
            "burst": self.burst,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantPolicy":
        return cls(
            tenant=data["tenant"],
            quota=None if data["quota"] is None else int(data["quota"]),
            quota_window_ticks=int(data["quota_window_ticks"]),
            rate_tokens_per_tick=(
                None
                if data["rate_tokens_per_tick"] is None
                else float(data["rate_tokens_per_tick"])
            ),
            burst=int(data["burst"]),
            priority=None if data["priority"] is None else int(data["priority"]),
        )


@dataclass(frozen=True)
class ModelPool:
    """A virtual model backed by a weighted set of real models.

    Requests addressed to ``name`` resolve to one member per request via
    a deterministic weighted draw; members whose circuit breaker is
    hard-open on the serving replica drop out of the draw (failover).
    """

    name: str
    models: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("ModelPool.name must be non-empty")
        if not isinstance(self.models, tuple):
            object.__setattr__(
                self, "models", tuple((m, float(w)) for m, w in self.models)
            )
        if not self.models:
            raise ConfigError(f"pool {self.name!r} needs at least one model")
        if any(weight <= 0 for _, weight in self.models):
            raise ConfigError(f"pool {self.name!r} model weights must be > 0")
        members = [model for model, _ in self.models]
        if len(set(members)) != len(members):
            raise ConfigError(f"pool {self.name!r} lists a model twice: {members}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``ModelPool.from_dict(p.as_dict()) == p``."""
        return {
            "name": self.name,
            "models": [[model, weight] for model, weight in self.models],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelPool":
        return cls(
            name=data["name"],
            models=tuple((model, float(weight)) for model, weight in data["models"]),
        )


@dataclass(frozen=True)
class RouterConfig:
    """Everything configurable about a :class:`Router`.

    ``seed`` salts the hash ring and every pool draw; ``vnodes`` is the
    number of ring points per replica (more points → smoother key
    spread).  See the module docstring for ``policy`` / ``hash_key`` /
    ``cache_scope`` semantics.
    """

    n_replicas: int = 1
    policy: str = "hash"
    hash_key: str = "prompt"
    vnodes: int = 64
    cache_scope: str = "replica"
    seed: int = 0
    tenants: tuple[TenantPolicy, ...] = ()
    pools: tuple[ModelPool, ...] = ()

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigError(f"n_replicas must be >= 1, got {self.n_replicas}")
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if self.hash_key not in HASH_KEYS:
            raise ConfigError(
                f"unknown hash_key {self.hash_key!r}; expected one of {HASH_KEYS}"
            )
        if self.vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.cache_scope not in CACHE_SCOPES:
            raise ConfigError(
                f"unknown cache_scope {self.cache_scope!r}; "
                f"expected one of {CACHE_SCOPES}"
            )
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if not isinstance(self.pools, tuple):
            object.__setattr__(self, "pools", tuple(self.pools))
        tenant_names = [policy.tenant for policy in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigError(f"duplicate tenant policies: {sorted(tenant_names)}")
        pool_names = [pool.name for pool in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ConfigError(f"duplicate pool names: {sorted(pool_names)}")
        for pool in self.pools:
            nested = [m for m, _ in pool.models if m in set(pool_names)]
            if nested:
                raise ConfigError(
                    f"pool {pool.name!r} cannot contain other pools: {nested}"
                )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``RouterConfig.from_dict(c.as_dict()) == c``."""
        return {
            "n_replicas": self.n_replicas,
            "policy": self.policy,
            "hash_key": self.hash_key,
            "vnodes": self.vnodes,
            "cache_scope": self.cache_scope,
            "seed": self.seed,
            "tenants": [policy.as_dict() for policy in self.tenants],
            "pools": [pool.as_dict() for pool in self.pools],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RouterConfig":
        return cls(
            n_replicas=int(data["n_replicas"]),
            policy=data["policy"],
            hash_key=data["hash_key"],
            vnodes=int(data["vnodes"]),
            cache_scope=data["cache_scope"],
            seed=int(data["seed"]),
            tenants=tuple(TenantPolicy.from_dict(t) for t in data["tenants"]),
            pools=tuple(ModelPool.from_dict(p) for p in data["pools"]),
        )


class RouterStats:
    """Live accounting view over one :class:`Router`.

    ``routed`` counts placements per replica; ``sheds`` counts admission
    rejections by reason (``quota`` / ``ratelimit``); ``failovers``
    counts pool draws that excluded at least one breaker-open member,
    per pool; ``load`` is the current queued + in-flight assignment count
    per replica.
    """

    __slots__ = ("_router",)

    def __init__(self, router: "Router"):
        self._router = router

    @property
    def routed(self) -> list[int]:
        return list(self._router._routed)

    @property
    def routed_total(self) -> int:
        return sum(self._router._routed)

    @property
    def sheds(self) -> dict[str, int]:
        return dict(self._router._sheds)

    @property
    def failovers(self) -> dict[str, int]:
        return dict(self._router._failovers)

    @property
    def load(self) -> list[int]:
        return list(self._router._load)

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order."""
        return {
            "routed": self.routed,
            "routed_total": self.routed_total,
            "sheds": dict(sorted(self.sheds.items())),
            "failovers": dict(sorted(self.failovers.items())),
            "load": self.load,
        }

    def __repr__(self) -> str:
        return f"RouterStats({self.as_dict()!r})"


class Router:
    """Place requests over N gateway replicas; see the module docstring.

    Construct from a trained PAS model (``Router(pas, config)`` — the
    router builds the replicas, each from ``config.gateway`` when given a
    :class:`~repro.serve.config.ServingConfig`, or a default
    :class:`~repro.serve.gateway.GatewayConfig` otherwise) or adopt
    pre-built gateways (``Router(replicas=[gw, ...])`` — what the engine
    does when handed a bare gateway).  The
    :class:`~repro.serve.engine.ServingEngine` is the intended driver:
    it calls :meth:`admit` at arrival, :meth:`route` / :meth:`resolve`
    at dispatch, and :meth:`serve_planned` / :meth:`release` at finish.
    """

    def __init__(
        self,
        pas: PasModel | None = None,
        config: object = None,
        obs: Observability = NULL_OBS,
        *,
        replicas: Sequence[PasGateway] | None = None,
        policy: object = None,
    ):
        if config is None:
            router_cfg, gateway_cfg = RouterConfig(), None
        elif isinstance(config, RouterConfig):
            router_cfg, gateway_cfg = config, None
        elif hasattr(config, "router") and hasattr(config, "gateway"):
            router_cfg, gateway_cfg = config.router, config.gateway
        else:
            raise TypeError(
                "config must be a RouterConfig or a ServingConfig, "
                f"got {type(config).__name__}"
            )

        if replicas is not None:
            if pas is not None:
                raise TypeError("pass either pas or replicas, not both")
            if policy is not None:
                raise TypeError(
                    "pass policy= only when the router builds the replicas; "
                    "adopted gateways already own their policies"
                )
            if not replicas:
                raise ConfigError("replicas must be non-empty when given")
            if router_cfg.n_replicas != len(replicas):
                # The default n_replicas=1 means "infer from the gateways";
                # an explicit mismatch is a configuration error.
                if router_cfg.n_replicas == 1:
                    router_cfg = replace(router_cfg, n_replicas=len(replicas))
                else:
                    raise ConfigError(
                        f"config names {router_cfg.n_replicas} replicas but "
                        f"{len(replicas)} gateways were given"
                    )
            self.replicas: list[PasGateway] = list(replicas)
            if obs is NULL_OBS:
                obs = self.replicas[0].obs
            self.gateway_config = self.replicas[0].config
        else:
            if pas is None:
                raise TypeError("Router() needs a PasModel (or replicas=...)")
            self.gateway_config = gateway_cfg or GatewayConfig()
            self.replicas = self._build_replicas(pas, router_cfg, obs, policy)

        self.config = router_cfg
        self.obs = obs
        n = len(self.replicas)

        #: Trivial mode: the identity router.  It adds no spans, metrics,
        #: or events, so the 1-replica engine stays bit-identical to the
        #: single-gateway engine (the headline parity contract).
        self.trivial = (
            n == 1
            and router_cfg.policy == "hash"
            and not router_cfg.tenants
            and not router_cfg.pools
            and router_cfg.cache_scope == "replica"
        )

        # Each gateway bound the shared obs clock to its own counter at
        # construction (last one wins); rebind to the fleet-wide request
        # count, which collapses to the single gateway's clock at n=1.
        if not self.trivial:
            gateways = self.replicas
            obs.bind_clock(lambda: sum(g._clock for g in gateways))

        self._policies = {policy.tenant: policy for policy in router_cfg.tenants}
        self._pools = {pool.name: pool for pool in router_cfg.pools}
        self._ring = self._build_ring(router_cfg.seed, n, router_cfg.vnodes)
        self._load = [0] * n
        self._routed = [0] * n
        self._sheds: dict[str, int] = {}
        self._failovers: dict[str, int] = {}
        # tenant -> (window index, count) / (last refill tick, tokens)
        self._quota: dict[str, tuple[int, int]] = {}
        self._buckets: dict[str, tuple[int, float]] = {}

        # The trivial router must not register instruments either: an
        # empty registered series still appears in metrics snapshots,
        # which would break byte-parity with the single-gateway engine.
        if self.trivial:
            self._registry = MetricsRegistry()
        else:
            self._registry = obs.metrics if obs.metrics.enabled else MetricsRegistry()
        self._m_routed = self._registry.counter(
            "pas_router_routed_total", help="Requests placed, by replica."
        )
        self._m_load = self._registry.gauge(
            "pas_router_replica_load",
            help="Live queued + in-flight assignments, by replica.",
        )
        self._m_shed = self._registry.counter(
            "pas_router_shed_total",
            help="Requests shed at admission, by reason (quota/ratelimit).",
        )
        self._m_failover = self._registry.counter(
            "pas_router_failovers_total",
            help="Pool draws that excluded a breaker-open member, by pool.",
        )
        self.stats = RouterStats(self)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_ring(seed: int, n: int, vnodes: int) -> list[tuple[int, int]]:
        """The consistent-hash ring: sorted (point, replica) pairs."""
        points = [
            (stable_hash(f"router.ring␞{seed}␞{replica}␞{vnode}"), replica)
            for replica in range(n)
            for vnode in range(vnodes)
        ]
        points.sort()
        return points

    def _build_replicas(
        self, pas: PasModel, cfg: RouterConfig, obs: Observability, policy: object = None
    ) -> list[PasGateway]:
        gateway_cfg = self.gateway_config
        complement_cache: LruCache[str, str] | None = None
        embed_cache: LruCache[str, np.ndarray] | None = None
        if cfg.cache_scope == "shared":
            complement_cache = SharedLruCache(capacity=gateway_cfg.cache_size)
            if gateway_cfg.embed_cache_size > 0:
                embed_cache = SharedLruCache(capacity=gateway_cfg.embed_cache_size)
        # One policy object is shared across every replica: the bandit
        # learns fleet-wide (its contexts key on (category, tenant), not
        # on replicas), exactly like a shared cache tier.
        return [
            PasGateway(
                pas,
                config=gateway_cfg,
                obs=obs,
                complement_cache=complement_cache,
                embed_cache=embed_cache,
                policy=policy,
            )
            for _ in range(cfg.n_replicas)
        ]

    # ------------------------------------------------------------------ #
    # admission (quotas and rate limits on the arrival clock)
    # ------------------------------------------------------------------ #

    def admit(self, timed: TimedRequest) -> str | None:
        """Admission-check one arrival; returns the shed reason or ``None``.

        Quota first (a tenant over its window quota is not charged bucket
        tokens), then the token bucket.  Both key on ``timed.tick`` — the
        arrival clock — so the decision sequence is identical across
        fault-plan variations of the same trace.
        """
        policy = self._policies.get(timed.tenant)
        if policy is None:
            return None
        if policy.quota is not None:
            window = timed.tick // policy.quota_window_ticks
            seen_window, count = self._quota.get(timed.tenant, (window, 0))
            if seen_window != window:
                count = 0
            if count >= policy.quota:
                self._shed(timed, "quota")
                return "quota"
            self._quota[timed.tenant] = (window, count + 1)
        if policy.rate_tokens_per_tick is not None:
            last, tokens = self._buckets.get(
                timed.tenant, (timed.tick, float(policy.burst))
            )
            tokens = min(
                float(policy.burst),
                tokens + (timed.tick - last) * policy.rate_tokens_per_tick,
            )
            if tokens < 1.0:
                self._buckets[timed.tenant] = (timed.tick, tokens)
                self._shed(timed, "ratelimit")
                return "ratelimit"
            self._buckets[timed.tenant] = (timed.tick, tokens - 1.0)
        return None

    def _shed(self, timed: TimedRequest, reason: str) -> None:
        self._sheds[reason] = self._sheds.get(reason, 0) + 1
        self._m_shed.inc(reason=reason)
        self.obs.events.emit(
            "router.shed", tick=timed.tick, reason=reason, tenant=timed.tenant
        )

    def effective_priority(self, timed: TimedRequest) -> int:
        """The trace priority, unless the tenant's policy overrides it."""
        policy = self._policies.get(timed.tenant)
        if policy is not None and policy.priority is not None:
            return policy.priority
        return timed.priority

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def route(self, request: ServeRequest, timed: TimedRequest) -> int:
        """Pick the replica for one request and take a load assignment.

        Hash mode is a pure function of ``(ring, key)``; least-loaded
        reads the live load vector (argmin, lowest index on ties), which
        is itself deterministic because the event loop is.  Balance the
        assignment with :meth:`release` when the request finishes (or is
        shed after routing).
        """
        if self.trivial:
            return 0
        if self.config.policy == "hash":
            if self.config.hash_key == "tenant":
                key = timed.tenant if request.tenant is None else request.tenant
            else:
                key = request.prompt
            point = stable_hash(f"router.key␞{key}")
            index = bisect_right(self._ring, (point, len(self.replicas)))
            if index == len(self._ring):
                index = 0
            replica = self._ring[index][1]
        else:
            replica = min(range(len(self.replicas)), key=lambda i: (self._load[i], i))
        self._load[replica] += 1
        self._routed[replica] += 1
        self._m_routed.inc(replica=str(replica))
        self._m_load.set(self._load[replica], replica=str(replica))
        return replica

    def release(self, replica: int) -> None:
        """Return one load assignment (request finished or shed)."""
        if self.trivial:
            return
        self._load[replica] -= 1
        self._m_load.set(self._load[replica], replica=str(replica))

    # ------------------------------------------------------------------ #
    # pool resolution (failover over circuit breakers)
    # ------------------------------------------------------------------ #

    def resolve(
        self,
        request: ServeRequest,
        timed: TimedRequest,
        replica: int,
        *,
        force: bool = False,
    ) -> ServeRequest | None:
        """Resolve a pool-addressed request to a concrete member model.

        Non-pool models pass through untouched.  The weighted draw is a
        pure function of ``(router seed, pool, arrival tick, request
        key)``; members whose breaker is hard-open on ``replica`` (a
        side-effect-free peek — recovery probes are never consumed here)
        drop out first.  An all-open pool returns ``None`` unless
        ``force=True`` (the engine's ``degrade`` shed policy), which
        draws over the full membership and lets the gateway's breaker
        fast-fail or probe.
        """
        pool = self._pools.get(request.model)
        if pool is None:
            return request
        gateway = self.replicas[replica]
        # The breaker clock is the gateway's request counter; the serve
        # this draw feeds will run at clock + 1 or later, so peek there.
        probe_tick = gateway.clock + 1
        eligible = [
            (model, weight)
            for model, weight in pool.models
            if model not in gateway._breakers
            or gateway._breakers[model].would_allow(probe_tick)
        ]
        if len(eligible) < len(pool.models) and eligible:
            self._failovers[pool.name] = self._failovers.get(pool.name, 0) + 1
            self._m_failover.inc(pool=pool.name)
        if not eligible:
            if not force:
                return None
            eligible = list(pool.models)
        key = request.request_id if request.request_id is not None else request.prompt
        draw = _unit_draw("router.pool", self.config.seed, pool.name, timed.tick, key)
        total = sum(weight for _, weight in eligible)
        threshold = draw * total
        acc = 0.0
        chosen = eligible[-1][0]
        for model, weight in eligible:
            acc += weight
            if threshold < acc:
                chosen = model
                break
        return replace(request, model=chosen)

    # ------------------------------------------------------------------ #
    # serving (the engine's per-replica gateway surface)
    # ------------------------------------------------------------------ #

    def plan_batch(self, replica: int, requests: Sequence[ServeRequest]) -> BatchPlan:
        """Plan one drained batch group on its target replica."""
        return self.replicas[replica].plan_batch(requests)

    def completion_latency(
        self, replica: int, request: ServeRequest, plan: BatchPlan | None = None
    ) -> int:
        """Price one completion on its target replica (pure)."""
        return self.replicas[replica].completion_latency(request, plan)

    def serve_planned(
        self, replica: int, request: ServeRequest, plan: BatchPlan
    ) -> ServeResponse:
        """Serve one planned request on its replica.

        Non-trivial routers wrap the serve in a ``router.route`` span, so
        the gateway's ``gateway.ask`` tree hangs off the routing decision
        in trace exports; the trivial router stays invisible.
        """
        gateway = self.replicas[replica]
        if self.trivial:
            return gateway.serve_planned(request, plan)
        with self.obs.tracer.span(
            "router.route", replica=replica, policy=self.config.policy
        ) as span:
            if request.tenant is not None:
                span.set(tenant=request.tenant)
            response = gateway.serve_planned(request, plan)
            span.status = response.status
        return response

    # ------------------------------------------------------------------ #
    # fleet views
    # ------------------------------------------------------------------ #

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def policy(self) -> object:
        """The fleet's shared augmentation policy (``None`` when unpoliced)."""
        return self.replicas[0].policy

    @property
    def clock(self) -> int:
        """Fleet-wide logical time: requests attempted across replicas."""
        return sum(gateway._clock for gateway in self.replicas)

    @property
    def cache_hit_rate(self) -> float:
        """Fleet complement-cache hit rate (shared scope: the one cache's)."""
        hits = sum(g._complement_cache.hits for g in self._distinct_caches())
        misses = sum(g._complement_cache.misses for g in self._distinct_caches())
        total = hits + misses
        return hits / total if total else 0.0

    def _distinct_caches(self) -> list[PasGateway]:
        seen: list[PasGateway] = []
        cache_ids: set[int] = set()
        for gateway in self.replicas:
            if id(gateway._complement_cache) not in cache_ids:
                cache_ids.add(id(gateway._complement_cache))
                seen.append(gateway)
        return seen
