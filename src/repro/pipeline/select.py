"""Prompt quality scoring for the collection pipeline (§3.1, step 2).

The paper scores prompts with BaiChuan 13b and drops low-quality entries.
The scorer here blends two signals:

* the simulated grader LLM's 0–10 prompt grade, and
* per-token fluency under an n-gram language model fitted on the corpus
  being filtered (degenerate inputs look unlike the bulk of the corpus).

Both are normalised to [0, 1] and combined with a configurable mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.engine import SimulatedLLM
from repro.text.ngram import NgramLanguageModel

__all__ = ["QualityScorer"]


@dataclass
class QualityScorer:
    """Composite prompt-quality scorer.

    Parameters
    ----------
    grader:
        The LLM doing the grading (the paper uses BaiChuan 13b).
    llm_weight:
        Mix between LLM grade and n-gram fluency.
    """

    grader: SimulatedLLM
    llm_weight: float = 0.75
    _lm: NgramLanguageModel | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.llm_weight <= 1.0:
            raise ValueError(f"llm_weight must be in [0, 1], got {self.llm_weight}")

    def fit(self, corpus_texts: list[str]) -> "QualityScorer":
        """Fit the fluency model on the corpus being filtered."""
        self._lm = NgramLanguageModel(order=3).fit(corpus_texts)
        return self

    def score(self, text: str) -> float:
        """Quality in [0, 1]; higher is better."""
        llm_part = self.grader.grade_prompt_quality(text) / 10.0
        if self._lm is None:
            return llm_part
        fluency_part = self._lm.fluency(text)
        return self.llm_weight * llm_part + (1.0 - self.llm_weight) * fluency_part

    def score_batch(self, texts: list[str]) -> list[float]:
        """Scores for many texts in one call; bit-identical to the loop.

        Grades go through the engine's batched grading entry point;
        each text's score is a pure function of the text (the grader's
        noise is keyed on content, the fluency LM is already fitted), so
        ``score_batch(ts) == [score(t) for t in ts]`` holds exactly.
        """
        llm_parts = [g / 10.0 for g in self.grader.grade_prompt_quality_batch(texts)]
        if self._lm is None:
            return llm_parts
        return [
            self.llm_weight * llm_part + (1.0 - self.llm_weight) * self._lm.fluency(text)
            for llm_part, text in zip(llm_parts, texts, strict=True)
        ]
