"""Training-subset selection strategies (paper §2.3, "Data Selection").

The paper's related work surveys several LLM-era selection recipes; PAS uses
quality-threshold + dedup, but a budgeted deployment must pick *which* k
collected prompts get complementary pairs.  This module implements the
survey's main strategies behind one interface so they can be ablated:

* :class:`RandomSelection` — the control arm.
* :class:`TopQualitySelection` — keep the k highest-scored prompts
  (Alpagasus-style, Chen et al.).
* :class:`ModsSelection` — quality-filter then k-center-greedy for
  diversity (MoDS-style, Du et al.).
* :class:`TagDiversitySelection` — greedy coverage over cue "tags"
  (InsTag-style, Lu et al.): prefer prompts whose visible aspects are
  under-represented in the running selection.

All strategies are deterministic given their seed and return indices into
the input list, ordered by pick.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro.cluster.kcenter import k_center_greedy
from repro.embedding.model import EmbeddingModel
from repro.pipeline.collect import SelectedPrompt
from repro.world.aspects import find_cues

__all__ = [
    "SelectionStrategy",
    "RandomSelection",
    "TopQualitySelection",
    "ModsSelection",
    "TagDiversitySelection",
    "apply_strategy",
]


class SelectionStrategy(ABC):
    """Pick ``k`` of the collected prompts for pair generation."""

    name: str = "abstract"

    @abstractmethod
    def select(self, items: list[SelectedPrompt], k: int) -> list[int]:
        """Return up to ``k`` indices into ``items`` (pick order)."""

    def _validate(self, items: list[SelectedPrompt], k: int) -> int:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return min(k, len(items))


class RandomSelection(SelectionStrategy):
    """Uniform random subset — the ablation control."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def select(self, items: list[SelectedPrompt], k: int) -> list[int]:
        k = self._validate(items, k)
        rng = np.random.default_rng(self.seed)
        return list(rng.permutation(len(items))[:k])


class TopQualitySelection(SelectionStrategy):
    """Highest quality scores first (Alpagasus-style)."""

    name = "top-quality"

    def select(self, items: list[SelectedPrompt], k: int) -> list[int]:
        k = self._validate(items, k)
        order = sorted(range(len(items)), key=lambda i: (-items[i].quality, i))
        return order[:k]


class ModsSelection(SelectionStrategy):
    """Quality pre-filter, then k-center-greedy diversity (MoDS-style).

    Parameters
    ----------
    quality_fraction:
        Fraction of the pool (by quality rank) eligible for the diversity
        stage; MoDS first drops the low-quality tail.
    """

    name = "mods"

    def __init__(self, quality_fraction: float = 0.7, embedder: EmbeddingModel | None = None):
        if not 0.0 < quality_fraction <= 1.0:
            raise ValueError(f"quality_fraction must be in (0, 1], got {quality_fraction}")
        self.quality_fraction = quality_fraction
        self.embedder = embedder or EmbeddingModel()

    def select(self, items: list[SelectedPrompt], k: int) -> list[int]:
        k = self._validate(items, k)
        if k == 0:
            return []
        by_quality = sorted(range(len(items)), key=lambda i: (-items[i].quality, i))
        pool = by_quality[: max(int(len(items) * self.quality_fraction), k)]
        embeddings = self.embedder.embed_batch([items[i].prompt.text for i in pool])
        picked = k_center_greedy(embeddings, k)
        return [pool[i] for i in picked]


class TagDiversitySelection(SelectionStrategy):
    """Greedy coverage of cue tags (InsTag-style).

    Each prompt's "tags" are the aspects visibly cued in its text plus its
    predicted category.  At every step the strategy picks the prompt whose
    tags are currently rarest in the running selection — maximising tag
    coverage per example, which is InsTag's diversity objective.
    """

    name = "tag-diversity"

    def select(self, items: list[SelectedPrompt], k: int) -> list[int]:
        k = self._validate(items, k)
        if k == 0:
            return []
        tags = [
            frozenset(find_cues(item.prompt.text)) | {f"cat:{item.predicted_category}"}
            for item in items
        ]
        counts: Counter[str] = Counter()
        chosen: list[int] = []
        remaining = set(range(len(items)))
        while len(chosen) < k and remaining:
            # Rarity score: sum over tags of 1 / (1 + seen count); higher
            # means the prompt contributes more unseen structure.
            best = min(
                remaining,
                key=lambda i: (-sum(1.0 / (1 + counts[t]) for t in tags[i]), i),
            )
            chosen.append(best)
            remaining.discard(best)
            counts.update(tags[best])
        return chosen


def apply_strategy(
    strategy: SelectionStrategy, items: list[SelectedPrompt], k: int
) -> list[SelectedPrompt]:
    """Convenience: return the selected items themselves, in pick order."""
    return [items[i] for i in strategy.select(items, k)]
