"""The industrial curation pipeline: batched, checkpointed, resumable.

:class:`PipelineRunner` executes the paper's offline data-curation flow
(§3.1–3.2) as five units of work on one logical clock::

    dedup ──▶ quality ──▶ classify ──▶ generate ──▶ dataset

Each stage consumes the *reloaded* JSON payload of its predecessor and
writes a content-hashed checkpoint when it completes, so a run killed
between (or inside) stages resumes bit-identically: the stage math is the
same batched code paths ``PromptCollector`` / ``PairGenerator`` use, and
because every consumer reads the JSON round-trip of its input, an
uninterrupted run and a resumed run see byte-for-byte the same bytes.

Observability rides along deterministically.  Every stage records its
span window, events, and counter increments into its checkpoint; resuming
*replays* them at their original ticks, so the exported trace and event
JSONL of a resumed run is byte-identical to the uninterrupted run's — the
same guarantee the serving path makes for chaos runs at a fixed seed.

Failure containment mirrors the gateway: an optional
:class:`~repro.resilience.FaultPlan` injects deterministic critic outages
and per-attempt failures into the Algorithm-1 regeneration loop, retried
under a :class:`~repro.resilience.RetryPolicy`; when retries exhaust, the
pair is *skipped and logged* (``pipeline.pair_skipped``) instead of
aborting the run — curation degrades, it does not fail.

The deterministic kill switches (``fail_after_stage`` /
``fail_after_pairs`` on :class:`~repro.pipeline.config.RunnerConfig`)
raise :class:`PipelineInterrupted` right after a checkpoint lands,
exactly like a SIGKILL between units of work; resume with the switch
removed (the run key ignores it) to continue.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.classify.model import CategoryClassifier
from repro.cluster.dedup import deduplicate
from repro.cluster.kcenter import k_center_greedy
from repro.core.golden import GoldenData
from repro.embedding.model import EmbeddingModel
from repro.errors import ReproError
from repro.llm.engine import SimulatedLLM
from repro.obs import NULL_OBS, Observability
from repro.pipeline.collect import CollectionResult, SelectedPrompt
from repro.pipeline.config import PIPELINE_STAGES, PipelineConfig
from repro.pipeline.dataset import PromptPair, PromptPairDataset
from repro.pipeline.generate import PairGenerator
from repro.pipeline.select import QualityScorer
from repro.resilience import RetryPolicy
from repro.utils.io import dump_jsonl, load_jsonl, to_jsonable
from repro.utils.rng import stable_hash
from repro.world.prompts import SyntheticPrompt

__all__ = [
    "PipelineInterrupted",
    "CheckpointError",
    "PipelineResult",
    "PipelineRunner",
]


class PipelineInterrupted(ReproError):
    """The run was killed by a deterministic kill switch.

    The checkpoint that triggered the switch is already on disk, so a new
    runner pointed at the same checkpoint directory resumes from it.
    """


class CheckpointError(ReproError):
    """A checkpoint's payload does not match its recorded content hash."""


class _CriticUnavailable(ReproError):
    """Internal: the critic could not be reached within the retry budget."""


@dataclass
class PipelineResult:
    """Outcome of one :meth:`PipelineRunner.run`.

    ``resumed_stages`` lists the stages satisfied from checkpoints rather
    than executed (the ``generate`` stage counts as resumed when it
    continued from a partial checkpoint).  ``skipped_uids`` are prompts
    whose pairs were abandoned because the critic stayed unreachable —
    the degraded-not-aborted outcome.
    """

    dataset: PromptPairDataset
    collection: CollectionResult
    skipped_uids: list[int] = field(default_factory=list)
    resumed_stages: tuple[str, ...] = ()
    run_key: str = ""

    @property
    def n_pairs_skipped(self) -> int:
        return len(self.skipped_uids)


def _payload_hash(payload: dict) -> str:
    """Content hash of a checkpoint payload, stable across the JSON trip."""
    material = json.dumps(to_jsonable(payload), sort_keys=True, ensure_ascii=False)
    return f"{stable_hash(material):016x}"


class PipelineRunner:
    """Runs the five-stage curation pipeline with checkpoints and obs.

    Parameters
    ----------
    config:
        The unified :class:`~repro.pipeline.config.PipelineConfig`
        (defaults throughout when omitted).
    checkpoint_dir:
        Where stage checkpoints live.  ``None`` keeps them in memory —
        same write-then-reload semantics, no resume across processes.
    embedder, grader, classifier, teacher, critic, golden:
        Component overrides, mirroring ``PromptCollector`` and
        ``PairGenerator`` (models default to the ones named in
        ``config.runner``).  Note component overrides are *not* part of
        the run key — resume with the same overrides.
    obs:
        An :class:`~repro.obs.Observability` bundle; the runner binds its
        logical clock into it.  Defaults to all-null.
    """

    STAGES = PIPELINE_STAGES

    def __init__(
        self,
        config: PipelineConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        *,
        embedder: EmbeddingModel | None = None,
        grader: SimulatedLLM | None = None,
        classifier: CategoryClassifier | None = None,
        teacher: SimulatedLLM | None = None,
        critic: SimulatedLLM | None = None,
        golden: GoldenData | None = None,
        obs: Observability = NULL_OBS,
    ):
        self.config = config or PipelineConfig()
        self.config.validate()
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self._memory: dict[str, str] = {}
        self.embedder = embedder or EmbeddingModel()
        self.grader = grader or SimulatedLLM(self.config.runner.grader_model)
        self.classifier = classifier
        self.pair_generator = PairGenerator(
            teacher=teacher or SimulatedLLM(self.config.runner.teacher_model),
            critic=critic or SimulatedLLM(self.config.runner.critic_model, seed=1),
            golden=golden,
            config=self.config.generation,
        )
        self.obs = obs
        self._tick = 0
        self.obs.bind_clock(lambda: self._tick)
        #: The live stage's obs record (events + metric increments); None
        #: outside stage execution.
        self._rec: dict | None = None

    # ------------------------------------------------------------------ #
    # observability plumbing
    # ------------------------------------------------------------------ #

    def _emit(self, kind: str, **attrs: object) -> None:
        """Emit an event now and record it for checkpoint replay."""
        self.obs.events.emit(kind, **attrs)
        if self._rec is not None:
            self._rec["events"].append(
                {"tick": self._tick, "kind": kind, "attrs": attrs}
            )

    def _inc(self, name: str, help: str = "", amount: float = 1, **labels: str) -> None:
        """Bump a counter now and record the increment for replay."""
        self.obs.metrics.counter(name, help=help).inc(amount, **labels)
        if self._rec is not None:
            self._rec["metrics"].append(
                {"name": name, "help": help, "amount": amount, "labels": labels}
            )

    def _fault_observer(self, stage: str, key: str, detail) -> None:
        """Mirror of the gateway's fault observer, checkpoint-recorded."""
        self._inc("pas_faults_total", help="Injected faults by stage.", stage=stage)
        self._emit("fault.injected", stage=stage, key=key, detail=detail)

    def _replay(self, name: str, obs_rec: dict) -> None:
        """Re-emit a completed stage's spans/events/metrics at their ticks."""
        self._tick = int(obs_rec["start_tick"])
        with self.obs.tracer.span(f"pipeline.{name}") as span:
            span.set(**obs_rec["span_attrs"])
            for event in obs_rec["events"]:
                self._tick = int(event["tick"])
                self.obs.events.emit(event["kind"], **event["attrs"])
            for metric in obs_rec["metrics"]:
                self.obs.metrics.counter(metric["name"], help=metric["help"]).inc(
                    metric["amount"], **metric["labels"]
                )
            self._tick = int(obs_rec["end_tick"])

    def export_obs(self, directory: str | Path) -> dict[str, int]:
        """Export the bound obs bundle's events/traces as JSONL files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return {
            "events": self.obs.events.export_jsonl(directory / "events.jsonl"),
            "traces": self.obs.tracer.store.export_jsonl(directory / "traces.jsonl"),
        }

    # ------------------------------------------------------------------ #
    # checkpoint store
    # ------------------------------------------------------------------ #

    def _checkpoint_path(self, name: str) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"{name}.json"

    def _write_checkpoint(self, name: str, run_key: str, payload: dict, obs_rec: dict) -> None:
        record = {
            "run_key": run_key,
            "stage": name,
            "payload_hash": _payload_hash(payload),
            "payload": payload,
            "obs": obs_rec,
        }
        if self.checkpoint_dir is None:
            self._memory[name] = json.dumps(to_jsonable(record), ensure_ascii=False)
        else:
            dump_jsonl([record], self._checkpoint_path(name))

    def _load_checkpoint(self, name: str, run_key: str) -> dict | None:
        """The checkpoint record for ``name``, or None when absent or from
        a different (config, corpus) run.  Corruption raises."""
        if self.checkpoint_dir is None:
            raw = self._memory.get(name)
            if raw is None:
                return None
            record = json.loads(raw)
        else:
            path = self._checkpoint_path(name)
            if not path.exists():
                return None
            record = next(load_jsonl(path), None)
            if record is None:
                return None
        if record.get("run_key") != run_key:
            return None
        if _payload_hash(record["payload"]) != record["payload_hash"]:
            raise CheckpointError(
                f"checkpoint {name!r} failed its content-hash verification"
            )
        return record

    def _drop_checkpoint(self, name: str) -> None:
        if self.checkpoint_dir is None:
            self._memory.pop(name, None)
        else:
            self._checkpoint_path(name).unlink(missing_ok=True)

    def _run_key(self, corpus: list[SyntheticPrompt]) -> str:
        """Content key binding checkpoints to (config, corpus).

        The kill switches and checkpoint cadence are excluded: they shape
        *when* the run stops, never what it computes, and a resumed run
        must keep matching the checkpoints its killed predecessor wrote.
        """
        cfg = self.config.as_dict()
        for transient in ("fail_after_stage", "fail_after_pairs", "checkpoint_every"):
            cfg["runner"].pop(transient)
        cfg_key = stable_hash(json.dumps(cfg, sort_keys=True, ensure_ascii=False))
        corpus_key = stable_hash(
            "␟".join(f"{p.uid}␟{p.text}␟{p.category}" for p in corpus)
        )
        return f"{cfg_key:016x}-{corpus_key:016x}"

    # ------------------------------------------------------------------ #
    # stage driver
    # ------------------------------------------------------------------ #

    def _stage(self, name: str, run_key: str, resume: bool, fn) -> tuple[dict, bool]:
        """Run (or replay) one simple stage; returns its reloaded payload.

        ``fn`` returns ``(payload, span_attrs)``; the payload handed
        downstream always comes back off the checkpoint, so consumers see
        the JSON round trip whether the stage ran or resumed.
        """
        record = self._load_checkpoint(name, run_key) if resume else None
        if record is not None:
            self._replay(name, record["obs"])
            return record["payload"], True
        events: list[dict] = []
        metrics: list[dict] = []
        self._rec = {"events": events, "metrics": metrics}
        start = self._tick
        try:
            with self.obs.tracer.span(f"pipeline.{name}") as span:
                payload, attrs = fn()
                self._emit("pipeline.checkpoint", stage=name)
                self._inc(
                    "pas_pipeline_checkpoints_total",
                    help="Completed stage checkpoints written.",
                    stage=name,
                )
                span.set(**attrs)
                end = self._tick
        finally:
            self._rec = None
        self._write_checkpoint(
            name,
            run_key,
            payload,
            {
                "start_tick": start,
                "end_tick": end,
                "span_attrs": attrs,
                "events": events,
                "metrics": metrics,
            },
        )
        if self.config.runner.fail_after_stage == name:
            raise PipelineInterrupted(f"injected kill after stage {name!r}")
        return self._load_checkpoint(name, run_key)["payload"], False

    # ------------------------------------------------------------------ #
    # the five stages
    # ------------------------------------------------------------------ #

    def _stage_dedup(self, corpus: list[SyntheticPrompt]) -> tuple[dict, dict]:
        cc = self.config.collection
        n_input = len(corpus)
        if n_input == 0 or cc.skip_dedup:
            survivors = list(corpus)
        else:
            embeddings = self.embedder.embed_batch([p.text for p in corpus])
            result = deduplicate(
                embeddings,
                threshold=cc.dedup_threshold,
                k_neighbors=cc.dedup_neighbors,
                keep_per_group=cc.keep_per_group,
                seed=self.config.seed,
                n_shards=cc.dedup_shards,
                backend=cc.dedup_backend,
            )
            survivors = [corpus[i] for i in result.kept]
        kept_uids = {p.uid for p in survivors}
        removed = sorted(p.uid for p in corpus if p.uid not in kept_uids)
        self._tick += n_input
        self._inc(
            "pas_pipeline_items_total",
            help="Items processed per pipeline stage.",
            amount=n_input,
            stage="dedup",
        )
        payload = {
            "n_input": n_input,
            "survivors": [p.as_dict() for p in survivors],
            "removed_uids": removed,
        }
        return payload, {"n_input": n_input, "n_kept": len(survivors)}

    def _stage_quality(self, dedup_payload: dict) -> tuple[dict, dict]:
        cc = self.config.collection
        survivors = [SyntheticPrompt.from_dict(p) for p in dedup_payload["survivors"]]
        if not survivors or cc.skip_quality_filter:
            graded = [(p, 1.0) for p in survivors]
        else:
            texts = [p.text for p in survivors]
            scorer = QualityScorer(grader=self.grader).fit(texts)
            graded = [
                (p, score)
                for p, score in zip(survivors, scorer.score_batch(texts), strict=True)
                if score >= cc.quality_threshold
            ]
        kept_uids = {p.uid for p, _ in graded}
        removed = sorted(p.uid for p in survivors if p.uid not in kept_uids)
        self._tick += len(survivors)
        self._inc(
            "pas_pipeline_items_total",
            help="Items processed per pipeline stage.",
            amount=len(survivors),
            stage="quality",
        )
        payload = {
            "graded": [{"prompt": p.as_dict(), "quality": s} for p, s in graded],
            "removed_uids": removed,
        }
        return payload, {"n_graded": len(survivors), "n_kept": len(graded)}

    def _ensure_classifier(self) -> CategoryClassifier:
        if self.classifier is None:
            self.classifier = CategoryClassifier().fit_synthetic(
                seed=self.config.seed + 17
            )
        return self.classifier

    def _stage_classify(self, dedup_payload: dict, quality_payload: dict) -> tuple[dict, dict]:
        cc = self.config.collection
        n_input = int(dedup_payload["n_input"])
        graded = [
            (SyntheticPrompt.from_dict(g["prompt"]), float(g["quality"]))
            for g in quality_payload["graded"]
        ]
        if n_input == 0:
            collection = CollectionResult([], 0, 0, 0, 0)
        else:
            selected: list[SelectedPrompt] = []
            if graded:
                classifier = self._ensure_classifier()
                categories = classifier.predict_batch([p.text for p, _ in graded])
                selected = [
                    SelectedPrompt(prompt=p, predicted_category=cat, quality=score)
                    for (p, score), cat in zip(graded, categories, strict=True)
                ]
            if cc.target_size is not None and len(selected) > cc.target_size:
                embeddings = self.embedder.embed_batch(
                    [s.prompt.text for s in selected]
                )
                chosen = k_center_greedy(embeddings, cc.target_size)
                selected = [selected[i] for i in sorted(chosen)]
            n_after_dedup = n_input - len(dedup_payload["removed_uids"])
            n_after_quality = n_after_dedup - len(quality_payload["removed_uids"])
            collection = CollectionResult(
                selected=selected,
                n_input=n_input,
                n_after_dedup=n_after_dedup,
                n_after_quality=n_after_quality,
                n_final=len(selected),
                stats={
                    "removed_by_dedup": n_input - n_after_dedup,
                    "removed_by_quality": n_after_dedup - n_after_quality,
                    "dedup_removed_uids": {
                        int(uid) for uid in dedup_payload["removed_uids"]
                    },
                    "quality_removed_uids": {
                        int(uid) for uid in quality_payload["removed_uids"]
                    },
                },
            )
        self._tick += len(graded)
        self._inc(
            "pas_pipeline_items_total",
            help="Items processed per pipeline stage.",
            amount=len(graded),
            stage="classify",
        )
        return {"collection": collection.as_dict()}, {"n_selected": collection.n_final}

    # -- generate: Algorithm 1 under faults, partial checkpoints -------- #

    def _fault_aware_critique(self, uid: int):
        """A critique callable for one pair that routes every critic call
        through the fault plan and retry policy.

        Each critique round is one logical "completion" keyed by
        ``(uid, round)``; attempts against it cost a tick (plus injected
        latency), failures back off per the policy, and exhaustion (or a
        blown per-pair deadline) raises :class:`_CriticUnavailable`, which
        the generate loop turns into a skipped pair.
        """
        plan = self.config.runner.fault_plan
        policy = self.config.runner.retry_policy or RetryPolicy()
        critic_model = self.pair_generator.critic_model.name
        state = {"round": 0, "spent": 0}

        def critique(prompt_text: str, ape_text: str):
            round_index = state["round"]
            state["round"] += 1
            key = f"critic:{uid}:{round_index}"
            attempt = 0
            while True:
                cost = 1 + (plan.latency_ticks(key, attempt) if plan else 0)
                if (
                    policy.deadline_ticks is not None
                    and state["spent"] + cost > policy.deadline_ticks
                ):
                    raise _CriticUnavailable(
                        f"critic deadline exhausted for pair {uid} "
                        f"(round {round_index}, attempt {attempt})"
                    )
                self._tick += cost
                state["spent"] += cost
                failed = plan is not None and (
                    plan.completion_fails(key, attempt)
                    or plan.in_outage(critic_model, self._tick)
                )
                if not failed:
                    return self.pair_generator.critic.critique(prompt_text, ape_text)
                attempt += 1
                if attempt > policy.max_retries:
                    raise _CriticUnavailable(
                        f"critic retries exhausted for pair {uid} "
                        f"(round {round_index}, attempts {attempt})"
                    )
                pause = math.ceil(policy.backoff_ticks(key, attempt - 1))
                self._tick += pause
                state["spent"] += pause

        return critique

    def _write_partial(self, run_key: str, done: list[dict], start: int) -> None:
        """Mid-generate checkpoint.  Obs-silent: no checkpoint event, so
        the event stream stays byte-identical across kill/resume."""
        assert self._rec is not None
        self._write_checkpoint(
            "generate.partial",
            run_key,
            {"done": done},
            {
                "start_tick": start,
                "tick": self._tick,
                "events": list(self._rec["events"]),
                "metrics": list(self._rec["metrics"]),
            },
        )

    def _stage_generate(self, run_key: str, classify_payload: dict, resume: bool) -> tuple[dict, bool]:
        rc = self.config.runner
        record = self._load_checkpoint("generate", run_key) if resume else None
        if record is not None:
            self._replay("generate", record["obs"])
            return record["payload"], True

        collection = CollectionResult.from_dict(classify_payload["collection"])
        partial = self._load_checkpoint("generate.partial", run_key) if resume else None
        done: list[dict] = []
        events: list[dict] = []
        metrics: list[dict] = []
        self._rec = {"events": events, "metrics": metrics}
        if rc.fault_plan is not None:
            rc.fault_plan.attach_observer(self._fault_observer)
        if partial is not None:
            self._tick = int(partial["obs"]["start_tick"])
        start = self._tick
        try:
            with self.obs.tracer.span("pipeline.generate") as span:
                if partial is not None:
                    done = list(partial["payload"]["done"])
                    for event in partial["obs"]["events"]:
                        self._tick = int(event["tick"])
                        self._emit(event["kind"], **event["attrs"])
                    for metric in partial["obs"]["metrics"]:
                        self._inc(
                            metric["name"],
                            help=metric["help"],
                            amount=metric["amount"],
                            **metric["labels"],
                        )
                    self._tick = int(partial["obs"]["tick"])
                total = len(collection.selected)
                for item in collection.selected[len(done):]:
                    self._generate_one(item, done)
                    if (
                        rc.fail_after_pairs is not None
                        and len(done) >= rc.fail_after_pairs
                        and len(done) < total
                    ):
                        self._write_partial(run_key, done, start)
                        raise PipelineInterrupted(
                            f"injected kill after {len(done)} generated pairs"
                        )
                    if len(done) % rc.checkpoint_every == 0 and len(done) < total:
                        self._write_partial(run_key, done, start)
                self._emit("pipeline.checkpoint", stage="generate")
                self._inc(
                    "pas_pipeline_checkpoints_total",
                    help="Completed stage checkpoints written.",
                    stage="generate",
                )
                outcomes = [d["outcome"] for d in done]
                attrs = {
                    "n_items": total,
                    "n_built": outcomes.count("built"),
                    "n_dropped": outcomes.count("dropped"),
                    "n_skipped": outcomes.count("skipped"),
                }
                span.set(**attrs)
                end = self._tick
        finally:
            self._rec = None
            if rc.fault_plan is not None:
                rc.fault_plan.attach_observer(None)
        self._write_checkpoint(
            "generate",
            run_key,
            {"done": done},
            {
                "start_tick": start,
                "end_tick": end,
                "span_attrs": attrs,
                "events": events,
                "metrics": metrics,
            },
        )
        self._drop_checkpoint("generate.partial")
        if rc.fail_after_stage == "generate":
            raise PipelineInterrupted("injected kill after stage 'generate'")
        return (
            self._load_checkpoint("generate", run_key)["payload"],
            partial is not None,
        )

    def _generate_one(self, item: SelectedPrompt, done: list[dict]) -> None:
        """Build one pair under the fault plan and append its outcome."""
        uid = item.prompt.uid
        critique = self._fault_aware_critique(uid)
        try:
            pair = self.pair_generator.build_pair(item, critique=critique)
        except _CriticUnavailable as exc:
            done.append({"uid": uid, "outcome": "skipped", "pair": None})
            self._inc(
                "pas_pipeline_pairs_total",
                help="Generated pairs by outcome.",
                outcome="skipped",
            )
            self._emit("pipeline.pair_skipped", uid=uid, reason=str(exc))
            return
        if pair is None:
            rounds = self.config.generation.max_rounds
            done.append({"uid": uid, "outcome": "dropped", "pair": None})
            self._inc(
                "pas_pipeline_pairs_total",
                help="Generated pairs by outcome.",
                outcome="dropped",
            )
            self._inc(
                "pas_pipeline_regenerations_total",
                help="Critic-driven regeneration rounds.",
                amount=rounds,
            )
            self._emit("pipeline.pair_dropped", uid=uid, rounds=rounds)
            return
        done.append({"uid": uid, "outcome": "built", "pair": pair.as_dict()})
        self._inc(
            "pas_pipeline_pairs_total",
            help="Generated pairs by outcome.",
            outcome="built",
        )
        if pair.regeneration_rounds:
            self._inc(
                "pas_pipeline_regenerations_total",
                help="Critic-driven regeneration rounds.",
                amount=pair.regeneration_rounds,
            )

    def _stage_dataset(self, generate_payload: dict) -> tuple[dict, dict]:
        done = generate_payload["done"]
        pairs = [
            PromptPair.from_dict(d["pair"]) for d in done if d["outcome"] == "built"
        ]
        n_dropped = sum(1 for d in done if d["outcome"] == "dropped")
        skipped = [int(d["uid"]) for d in done if d["outcome"] == "skipped"]
        dataset = PromptPairDataset(
            pairs=pairs, curated=self.config.generation.curate, n_dropped=n_dropped
        )
        self._tick += len(done)
        self._inc(
            "pas_pipeline_items_total",
            help="Items processed per pipeline stage.",
            amount=len(done),
            stage="dataset",
        )
        payload = {"dataset": dataset.as_dict(), "skipped_uids": skipped}
        attrs = {
            "n_pairs": len(pairs),
            "n_dropped": n_dropped,
            "n_skipped": len(skipped),
        }
        return payload, attrs

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self, corpus: list[SyntheticPrompt], resume: bool = True) -> PipelineResult:
        """Execute (or resume) the full pipeline over ``corpus``.

        Checkpoints from a different config or corpus are ignored, not
        reused: the run key is a content hash over both.  With
        ``resume=False`` every stage executes fresh (existing checkpoints
        are overwritten as stages complete).
        """
        run_key = self._run_key(corpus)
        self._tick = 0
        dedup_payload, r_dedup = self._stage(
            "dedup", run_key, resume, lambda: self._stage_dedup(corpus)
        )
        quality_payload, r_quality = self._stage(
            "quality", run_key, resume, lambda: self._stage_quality(dedup_payload)
        )
        classify_payload, r_classify = self._stage(
            "classify",
            run_key,
            resume,
            lambda: self._stage_classify(dedup_payload, quality_payload),
        )
        generate_payload, r_generate = self._stage_generate(
            run_key, classify_payload, resume
        )
        dataset_payload, r_dataset = self._stage(
            "dataset", run_key, resume, lambda: self._stage_dataset(generate_payload)
        )
        resumed = tuple(
            name
            for name, flag in zip(
                self.STAGES,
                (r_dedup, r_quality, r_classify, r_generate, r_dataset),
                strict=True,
            )
            if flag
        )
        return PipelineResult(
            dataset=PromptPairDataset.from_dict(dataset_payload["dataset"]),
            collection=CollectionResult.from_dict(classify_payload["collection"]),
            skipped_uids=[int(uid) for uid in dataset_payload["skipped_uids"]],
            resumed_stages=resumed,
            run_key=run_key,
        )
