"""The unified configuration surface for the offline curation pipeline.

:class:`PipelineConfig` mirrors :class:`~repro.serve.gateway.GatewayConfig`
on the serving side: one frozen dataclass with nested per-stage sections —
``collection`` (:class:`~repro.pipeline.collect.CollectionConfig`),
``generation`` (:class:`~repro.pipeline.generate.GenerationConfig`), and
``runner`` (:class:`RunnerConfig`, the execution knobs that belong to the
*run* rather than to any stage's math) — plus the run ``seed``.  It
round-trips losslessly through :meth:`PipelineConfig.as_dict` /
:meth:`PipelineConfig.from_dict`, fault plans and retry policies included,
so a checkpointed run can re-validate that it resumes under the exact
configuration it started with.

``PromptCollector`` and ``PairGenerator`` both accept a ``PipelineConfig``
directly (they read their own section); that nested surface is the only
construction path — the old flat kwargs raise a :class:`TypeError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.pipeline.collect import CollectionConfig
from repro.pipeline.generate import GenerationConfig
from repro.resilience import FaultPlan, RetryPolicy
from repro.utils.serialize import register

__all__ = ["RunnerConfig", "PipelineConfig"]

#: Stage order of the industrial pipeline; ``fail_after_stage`` must name one.
PIPELINE_STAGES = ("dedup", "quality", "classify", "generate", "dataset")


@dataclass(frozen=True)
class RunnerConfig:
    """Execution knobs for :class:`~repro.pipeline.runner.PipelineRunner`.

    These govern *how* the run executes — checkpoint cadence, which
    simulated models play each role, what faults are injected and how
    they are retried — never *what* the stages compute; stage math lives
    in the ``collection`` / ``generation`` sections of
    :class:`PipelineConfig`.

    ``fail_after_stage`` / ``fail_after_pairs`` are deterministic kill
    switches for the resume tests and the example: the runner raises
    :class:`~repro.pipeline.runner.PipelineInterrupted` right after the
    named stage's checkpoint (or after that many generated pairs) lands
    on disk, exactly like a SIGKILL between two units of work.
    """

    checkpoint_every: int = 64
    teacher_model: str = "teacher-gpt-4"
    critic_model: str = "teacher-gpt-4"
    grader_model: str = "baichuan-13b"
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    fail_after_stage: str | None = None
    fail_after_pairs: int | None = None

    def validate(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1: {self.checkpoint_every}"
            )
        if self.fail_after_stage is not None and self.fail_after_stage not in PIPELINE_STAGES:
            raise ConfigError(
                f"fail_after_stage must be one of {PIPELINE_STAGES}: "
                f"{self.fail_after_stage!r}"
            )
        if self.fail_after_pairs is not None and self.fail_after_pairs < 1:
            raise ConfigError(
                f"fail_after_pairs must be >= 1: {self.fail_after_pairs}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict (fault plan and retry policy flattened)."""
        return {
            "checkpoint_every": self.checkpoint_every,
            "teacher_model": self.teacher_model,
            "critic_model": self.critic_model,
            "grader_model": self.grader_model,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.as_dict()
            ),
            "retry_policy": (
                None if self.retry_policy is None else self.retry_policy.as_dict()
            ),
            "fail_after_stage": self.fail_after_stage,
            "fail_after_pairs": self.fail_after_pairs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunnerConfig":
        """Inverse of :meth:`as_dict`: ``from_dict(c.as_dict()) == c``."""
        return cls(
            checkpoint_every=int(data["checkpoint_every"]),
            teacher_model=data["teacher_model"],
            critic_model=data["critic_model"],
            grader_model=data["grader_model"],
            fault_plan=(
                None
                if data["fault_plan"] is None
                else FaultPlan.from_dict(data["fault_plan"])
            ),
            retry_policy=(
                None
                if data["retry_policy"] is None
                else RetryPolicy.from_dict(data["retry_policy"])
            ),
            fail_after_stage=data["fail_after_stage"],
            fail_after_pairs=data["fail_after_pairs"],
        )


@dataclass(frozen=True)
class PipelineConfig:
    """Every knob of the offline curation pipeline, in one place.

    Mirrors ``GatewayConfig``'s shape: nested frozen sections, a
    ``validate()`` that recurses, and a lossless ``as_dict()`` /
    ``from_dict()`` round-trip.  The ``seed`` is the single source of
    randomness for the whole run (dedup graph, classifier fit salt,
    checkpoint run key).
    """

    collection: CollectionConfig = field(default_factory=CollectionConfig)
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    seed: int = 0

    def validate(self) -> None:
        self.collection.validate()
        self.generation.validate()
        self.runner.validate()

    def as_dict(self) -> dict:
        """JSON-safe nested dict with a stable key order."""
        return {
            "collection": self.collection.as_dict(),
            "generation": self.generation.as_dict(),
            "runner": self.runner.as_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Inverse of :meth:`as_dict`: ``from_dict(c.as_dict()) == c``."""
        return cls(
            collection=CollectionConfig.from_dict(data["collection"]),
            generation=GenerationConfig.from_dict(data["generation"]),
            runner=RunnerConfig.from_dict(data["runner"]),
            seed=int(data["seed"]),
        )


register(PipelineConfig)
