"""Pipeline self-diagnostics against corpus ground truth.

The synthetic corpus annotates its own dirt (``dup_of``, ``is_junk``, true
categories), so every collection stage can be graded like a classifier.
These diagnostics power the pipeline tests and the A1 ablation bench, and
give a downstream user a health report for their own runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.pipeline.collect import CollectionResult
from repro.world.prompts import SyntheticPrompt

__all__ = [
    "StageReport",
    "dedup_report",
    "junk_filter_report",
    "classifier_report",
    "pipeline_health",
]


@dataclass(frozen=True)
class StageReport:
    """Precision/recall of one stage's removal decisions."""

    stage: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _collection(result) -> CollectionResult:
    """Normalise the argument: every report accepts a plain
    :class:`CollectionResult` (from ``PromptCollector`` — monolithic or
    sharded dedup alike) or anything carrying one as ``.collection``
    (e.g. :class:`~repro.pipeline.runner.PipelineResult`)."""
    return result.collection if hasattr(result, "collection") else result


def _removed_uids(
    corpus: list[SyntheticPrompt], result: CollectionResult, stage_key: str
) -> set[int]:
    """Uids removed by one stage; falls back to total removals when the
    collector did not record per-stage sets (older results).  Accepts the
    set either as a set or as the sorted list a JSON round trip yields."""
    per_stage = result.stats.get(stage_key)
    if per_stage is not None:
        return {int(uid) for uid in per_stage}
    surviving = {s.prompt.uid for s in result.selected}
    return {p.uid for p in corpus} - surviving


def dedup_report(corpus: list[SyntheticPrompt], result: CollectionResult) -> StageReport:
    """Grade duplicate handling.

    Deduplication keeps one representative per group and cannot know which
    member was "the original", so a generated duplicate counts as *handled*
    (true positive) when either it or its base was removed — i.e. the pair
    was collapsed.  A false positive is a removed prompt that was neither a
    duplicate, a duplicate's base, nor junk.
    """
    result = _collection(result)
    removed = _removed_uids(corpus, result, "dedup_removed_uids")
    duplicates = [p for p in corpus if p.dup_of is not None]
    base_uids = {p.dup_of for p in duplicates}
    handled = sum(1 for p in duplicates if p.uid in removed or p.dup_of in removed)
    innocent = {
        p.uid
        for p in corpus
        if p.dup_of is None and not p.is_junk and p.uid not in base_uids
    }
    return StageReport(
        stage="dedup",
        true_positives=handled,
        false_positives=len(removed & innocent),
        false_negatives=len(duplicates) - handled,
    )


def junk_filter_report(
    corpus: list[SyntheticPrompt], result: CollectionResult
) -> StageReport:
    """Grade junk removal against the ``is_junk`` ground truth.

    Junk may fall to either stage (identical junk strings collapse in
    dedup; the rest falls to the quality filter), so the grade is over the
    union of removals.
    """
    result = _collection(result)
    removed = _removed_uids(corpus, result, "dedup_removed_uids") | _removed_uids(
        corpus, result, "quality_removed_uids"
    )
    junk = {p.uid for p in corpus if p.is_junk}
    clean = {p.uid for p in corpus if not p.is_junk and p.dup_of is None}
    return StageReport(
        stage="junk-filter",
        true_positives=len(removed & junk),
        false_positives=len(removed & clean),
        false_negatives=len(junk - removed),
    )


def classifier_report(result: CollectionResult) -> dict[str, float]:
    """Accuracy and per-category error mass of the category stage."""
    result = _collection(result)
    if not result.selected:
        return {"accuracy": 0.0, "n": 0}
    hits = sum(
        1 for s in result.selected if s.predicted_category == s.prompt.category
    )
    confusion: Counter[tuple[str, str]] = Counter(
        (s.prompt.category, s.predicted_category)
        for s in result.selected
        if s.predicted_category != s.prompt.category
    )
    worst = confusion.most_common(1)
    return {
        "accuracy": hits / len(result.selected),
        "n": len(result.selected),
        "worst_confusion": worst[0][0] if worst else None,
        "worst_confusion_count": worst[0][1] if worst else 0,
    }


def pipeline_health(
    corpus: list[SyntheticPrompt], result: CollectionResult
) -> dict[str, object]:
    """One-call health report over all stages."""
    result = _collection(result)
    dedup = dedup_report(corpus, result)
    junk = junk_filter_report(corpus, result)
    return {
        "dedup": dedup,
        "junk_filter": junk,
        "classifier": classifier_report(result),
        "junk_leak_rate": result.junk_leak_rate,
        "survival_rate": result.n_final / max(result.n_input, 1),
    }
