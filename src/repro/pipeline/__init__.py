"""The PAS data pipeline: collection (§3.1) and generation (§3.2)."""

from repro.pipeline.collect import CollectionConfig, CollectionResult, PromptCollector
from repro.pipeline.dataset import PromptPair, PromptPairDataset
from repro.pipeline.diagnostics import pipeline_health
from repro.pipeline.generate import GenerationConfig, PairCritic, PairGenerator
from repro.pipeline.select import QualityScorer
from repro.pipeline.strategies import (
    ModsSelection,
    RandomSelection,
    SelectionStrategy,
    TagDiversitySelection,
    TopQualitySelection,
    apply_strategy,
)

__all__ = [
    "CollectionConfig",
    "CollectionResult",
    "PromptCollector",
    "PromptPair",
    "PromptPairDataset",
    "GenerationConfig",
    "PairCritic",
    "PairGenerator",
    "QualityScorer",
    "pipeline_health",
    "SelectionStrategy",
    "RandomSelection",
    "TopQualitySelection",
    "ModsSelection",
    "TagDiversitySelection",
    "apply_strategy",
]
