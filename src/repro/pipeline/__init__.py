"""The PAS data pipeline: collection (§3.1) and generation (§3.2).

Interactive use goes through :class:`PromptCollector` /
:class:`PairGenerator`; production runs go through
:class:`PipelineRunner`, which executes the same stages batched,
checkpointed, and observable under one :class:`PipelineConfig`.
"""

from repro.pipeline.collect import (
    CollectionConfig,
    CollectionResult,
    PromptCollector,
    SelectedPrompt,
)
from repro.pipeline.config import PipelineConfig, RunnerConfig
from repro.pipeline.dataset import PromptPair, PromptPairDataset
from repro.pipeline.diagnostics import (
    StageReport,
    classifier_report,
    dedup_report,
    junk_filter_report,
    pipeline_health,
)
from repro.pipeline.generate import (
    CritiqueResult,
    FewShotGenerator,
    GenerationConfig,
    PairCritic,
    PairGenerator,
)
from repro.pipeline.runner import (
    CheckpointError,
    PipelineInterrupted,
    PipelineResult,
    PipelineRunner,
)
from repro.pipeline.select import QualityScorer
from repro.pipeline.strategies import (
    ModsSelection,
    RandomSelection,
    SelectionStrategy,
    TagDiversitySelection,
    TopQualitySelection,
    apply_strategy,
)

__all__ = [
    "CollectionConfig",
    "CollectionResult",
    "SelectedPrompt",
    "PromptCollector",
    "PipelineConfig",
    "RunnerConfig",
    "PipelineRunner",
    "PipelineResult",
    "PipelineInterrupted",
    "CheckpointError",
    "PromptPair",
    "PromptPairDataset",
    "GenerationConfig",
    "FewShotGenerator",
    "CritiqueResult",
    "PairCritic",
    "PairGenerator",
    "QualityScorer",
    "StageReport",
    "dedup_report",
    "junk_filter_report",
    "classifier_report",
    "pipeline_health",
    "SelectionStrategy",
    "RandomSelection",
    "TopQualitySelection",
    "ModsSelection",
    "TagDiversitySelection",
    "apply_strategy",
]
